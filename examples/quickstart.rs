//! Quickstart: a two-activity expense workflow under the basic operational
//! model — no engine anywhere, the document protects itself.
//!
//! Run with: `cargo run --example quickstart`

use dra4wfms::prelude::*;

fn main() -> WfResult<()> {
    // 1. Actors: each owns a signing keypair (Ed25519) and an encryption
    //    keypair (X25519). The directory is the deployment's PKI.
    let designer = Credentials::from_seed("designer", "quickstart-designer");
    let alice = Credentials::from_seed("alice", "quickstart-alice");
    let bob = Credentials::from_seed("bob", "quickstart-bob");
    let directory = Directory::from_credentials([&designer, &alice, &bob]);

    // 2. The workflow definition: alice submits an expense, bob approves.
    let def = WorkflowDefinition::builder("expense-approval", "designer")
        .simple_activity("submit", "alice", &["amount", "reason"])
        .activity(Activity {
            id: "approve".into(),
            participant: "bob".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("submit", "amount"), FieldRef::new("submit", "reason")],
            responses: vec!["decision".into()],
        })
        .flow("submit", "approve")
        .flow_end("approve")
        .build()?;

    // 3. The security policy: the amount is element-wise encrypted so only
    //    bob (and alice, its author) can read it; the reason stays public.
    let policy = SecurityPolicy::builder().restrict("submit", "amount", &["bob"]).build();

    // 4. The designer signs the secured initial document.
    let initial = DraDocument::new_initial(&def, &policy, &designer)?;
    println!("initial document: {} bytes", initial.size_bytes());

    // 5. Alice's AEA: verify, execute, encrypt, sign, route.
    let aea_alice = Aea::new(alice, directory.clone());
    let received = aea_alice.receive(initial.to_xml_string(), "submit")?;
    println!(
        "alice opens 'submit' (verified {} signature(s))",
        received.report.signatures_verified
    );
    let done = aea_alice.complete(
        &received,
        &[("amount".into(), "120.50".into()), ("reason".into(), "team offsite".into())],
    )?;
    println!(
        "alice completed 'submit' -> route to {:?}, document now {} bytes",
        done.route.targets,
        done.document.size_bytes()
    );

    // 6. Bob's AEA: the cascade (designer + alice) verifies, the encrypted
    //    amount decrypts with bob's key.
    let aea_bob = Aea::new(bob, directory.clone());
    let received = aea_bob.receive(done.document.to_xml_string(), "approve")?;
    println!(
        "bob opens 'approve' (verified {} signatures), sees:",
        received.report.signatures_verified
    );
    for (field, value) in &received.visible {
        println!("  {}.{} = {}", field.activity, field.field, value);
    }
    let done = aea_bob.complete(&received, &[("decision".into(), "approved".into())])?;
    assert!(done.route.ends);

    // 7. Anyone can audit the finished document.
    let report = Verifier::new(&directory).run(&done.document)?.report;
    println!(
        "final audit: {} CER(s), {} signatures verified, {} bytes",
        report.cers.len(),
        report.signatures_verified,
        done.document.size_bytes()
    );

    // 8. Nonrepudiation: bob's CER covers alice's — neither can deny.
    let scope = nonrepudiation_scope(&done.document, &PredRef::Cer(CerKey::new("approve", 0)))?;
    println!("nonrepudiation scope of approve#0: {scope:?}");
    assert!(scope.contains(&PredRef::Cer(CerKey::new("submit", 0))));
    assert!(scope.contains(&PredRef::Def));
    println!("ok: bob cannot deny having seen alice's submission and the definition");
    Ok(())
}
