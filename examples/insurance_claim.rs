//! A cross-enterprise insurance claim authored in the workflow DSL, with
//! **group audiences**: the claim amount is readable by the whole
//! `adjusters` group (any member can pick up the review), while medical
//! details stay restricted to the medical examiner alone.
//!
//! Run with: `cargo run --example insurance_claim`

use dra4wfms::core::dsl::parse_workflow;
use dra4wfms::prelude::*;

const WORKFLOW: &str = r#"
# claim intake -> parallel adjustment + medical review -> settlement
workflow "insurance-claim" designer "designer"

activity intake by claimant {
    respond amount, medical-details
}
activity adjust by adjuster-1 {
    request intake.amount
    respond assessment
}
activity medical by examiner {
    request intake.medical-details
    respond med-report
}
activity settle by settlement-office join all {
    request adjust.assessment, medical.med-report
    respond payout
}

flow intake -> adjust
flow intake -> medical
flow adjust -> settle
flow medical -> settle
flow settle -> end
"#;

fn main() -> WfResult<()> {
    // the workflow definition comes from the DSL, not hand-built structs
    let def = parse_workflow(WORKFLOW)?;
    println!("parsed workflow '{}' with {} activities", def.name, def.activities.len());

    let names =
        ["designer", "claimant", "adjuster-1", "adjuster-2", "examiner", "settlement-office"];
    let creds: Vec<Credentials> =
        names.iter().map(|n| Credentials::from_seed(*n, &format!("ins-{n}"))).collect();
    let mut directory = Directory::from_credentials(&creds);
    // the adjusters group: either adjuster can read group-addressed fields
    directory.register_group("adjusters", &["adjuster-1", "adjuster-2"])?;

    let policy = SecurityPolicy::builder()
        .restrict("intake", "amount", &["adjusters", "settlement-office"])
        .restrict("intake", "medical-details", &["examiner"])
        .restrict("medical", "med-report", &["settlement-office"])
        .build();

    let designer = &creds[0];
    let initial = DraDocument::new_initial(&def, &policy, designer)?;

    let aea = |name: &str| {
        let c = creds.iter().find(|c| c.name == name).unwrap().clone();
        Aea::new(c, directory.clone())
    };

    // intake
    let received = aea("claimant").receive(initial.to_xml_string(), "intake")?;
    let done = aea("claimant").complete(
        &received,
        &[
            ("amount".into(), "18,400 EUR".into()),
            ("medical-details".into(), "fractured wrist, 6 weeks".into()),
        ],
    )?;
    println!("intake routed to {:?}", done.route.targets);

    // parallel branches
    let received = aea("adjuster-1").receive(done.document.to_xml_string(), "adjust")?;
    println!(
        "adjuster-1 (via the 'adjusters' group) sees: {:?}",
        received.visible.iter().map(|(f, v)| format!("{}={v}", f.field)).collect::<Vec<_>>()
    );
    assert!(received.visible.iter().any(|(f, _)| f.field == "amount"));
    let adjust_done =
        aea("adjuster-1").complete(&received, &[("assessment".into(), "plausible".into())])?;

    let received = aea("examiner").receive(done.document.to_xml_string(), "medical")?;
    // the examiner reads the medical details but NOT the amount
    assert!(received.visible.iter().any(|(f, _)| f.field == "medical-details"));
    let medical_done =
        aea("examiner").complete(&received, &[("med-report".into(), "consistent".into())])?;

    // AND-join at settlement
    let received = aea("settlement-office").receive_merged(
        &[&adjust_done.document.to_xml_string(), &medical_done.document.to_xml_string()],
        "settle",
    )?;
    println!(
        "settlement sees both branches: {:?}",
        received.visible.iter().map(|(f, _)| f.field.clone()).collect::<Vec<_>>()
    );
    let done =
        aea("settlement-office").complete(&received, &[("payout".into(), "17,900 EUR".into())])?;
    assert!(done.route.ends);

    let report = Verifier::new(&directory).run(&done.document)?.report;
    println!(
        "claim settled: {} CERs, {} signatures verified, {} bytes",
        report.cers.len(),
        report.signatures_verified,
        done.document.size_bytes()
    );

    // confidentiality check: adjuster-2 (group member) could read the
    // amount; the claimant cannot read the examiner's report
    let cer = done.document.find_cer(&CerKey::new("intake", 0))?.unwrap();
    let enc = cer
        .result()
        .unwrap()
        .child_elements()
        .find(|e| e.get_attr("field") == Some("amount"))
        .unwrap();
    let readers = dra4wfms::xml::enc::recipients_of(enc);
    println!("recipients of intake.amount: {readers:?}");
    assert!(readers.contains(&"adjuster-1") && readers.contains(&"adjuster-2"));
    Ok(())
}
