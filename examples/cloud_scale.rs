//! Cloud-scale demo: many concurrent process instances flowing through the
//! portal servers into the document pool, then MapReduce statistics over the
//! pool — the deployment shape of the paper's Fig. 7 and §4.2.
//!
//! Run with: `cargo run --release --example cloud_scale [instances] [threads]`

use dra4wfms::cloud::{CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn definition() -> WfResult<WorkflowDefinition> {
    WorkflowDefinition::builder("ticket", "designer")
        .simple_activity("open", "alice", &["title", "severity"])
        .activity(Activity {
            id: "triage".into(),
            participant: "bob".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("open", "severity")],
            responses: vec!["assignee".into()],
        })
        .simple_activity("resolve", "carol", &["fix"])
        .flow("open", "triage")
        .flow("triage", "resolve")
        .flow_end("resolve")
        .build()
}

fn main() -> WfResult<()> {
    let args: Vec<String> = std::env::args().collect();
    let instances: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    let names = ["designer", "alice", "bob", "carol"];
    let creds: Vec<Credentials> =
        names.iter().map(|n| Credentials::from_seed(*n, &format!("cs-{n}"))).collect();
    let directory = Directory::from_credentials(&creds);
    let def = definition()?;
    let policy = SecurityPolicy::builder().restrict("open", "severity", &["bob", "carol"]).build();

    let system = Arc::new(CloudSystem::new(directory.clone(), 4, Arc::new(NetworkSim::lan())));
    let agents: Arc<HashMap<String, Arc<Aea>>> = Arc::new(
        creds
            .iter()
            .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), directory.clone()))))
            .collect(),
    );

    let respond = |received: &ReceivedActivity| -> Vec<(String, String)> {
        match received.activity.as_str() {
            "open" => {
                vec![("title".into(), "printer on fire".into()), ("severity".into(), "high".into())]
            }
            "triage" => vec![("assignee".into(), "carol".into())],
            "resolve" => vec![("fix".into(), "extinguished".into())],
            _ => vec![],
        }
    };

    println!("running {instances} instances across {threads} worker threads…");
    let started = Instant::now();
    let designer = creds[0].clone();
    crossbeam::thread::scope(|s| {
        for w in 0..threads {
            let system = Arc::clone(&system);
            let agents = Arc::clone(&agents);
            let def = def.clone();
            let policy = policy.clone();
            let designer = designer.clone();
            s.spawn(move |_| {
                for i in (w..instances).step_by(threads) {
                    let initial = DraDocument::new_initial_with_pid(
                        &def,
                        &policy,
                        &designer,
                        &format!("ticket-{i:05}"),
                    )
                    .expect("initial");
                    InstanceRun::new(&system, &initial)
                        .agents(&agents)
                        .respond(&respond)
                        .max_steps(50)
                        .run()
                        .expect("instance run");
                }
            });
        }
    })
    .expect("scope");
    let wall = started.elapsed();

    let pool_stats = system.pool.stats();
    println!(
        "completed {} instances ({} activity executions) in {:.2?} — {:.1} exec/s",
        instances,
        instances * 3,
        wall,
        (instances * 3) as f64 / wall.as_secs_f64()
    );
    println!(
        "pool: {} rows in {} regions ({} splits), {} ops served",
        pool_stats.rows, pool_stats.regions, pool_stats.splits, pool_stats.ops
    );
    println!(
        "network: {} messages, {:.1} MB",
        system.network.messages(),
        system.network.bytes() as f64 / 1e6
    );

    // MapReduce statistics across every stored process (paper §4.2)
    let t = Instant::now();
    let by_status = system.statistics_by_status(threads);
    let steps = system.steps_per_workflow(threads);
    println!(
        "mapreduce over the pool in {:.2?}: status={by_status:?}, steps-per-workflow={steps:?}",
        t.elapsed()
    );

    // spot-check one instance end to end
    let status = system.process_status("ticket-00000")?.expect("stored");
    println!("sample instance audit:\n{}", status.audit_trail());
    Ok(())
}
