//! The paper's experimental workflow (Fig. 9) as a cross-enterprise purchase
//! order, executed under the **advanced operational model** (Fig. 9B): every
//! hop passes through the TFC server, which timestamps and re-encrypts.
//!
//! The process: a supplier submits an order package (A), two reviewers at
//! the buyer check it in parallel (AND-split B1/B2), a purchasing officer
//! consolidates (AND-join C) and either loops back ("attachment is
//! insufficient") or accepts, after which fulfilment acknowledges (D).
//!
//! Run with: `cargo run --example purchase_order`

use dra4wfms::cloud::{CloudSystem, InstanceRun, NetworkSim};
use dra4wfms::core::monitor::ProcessStatus;
use dra4wfms::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fig9_definition() -> WfResult<WorkflowDefinition> {
    WorkflowDefinition::builder("purchase-order", "designer")
        .simple_activity("A", "supplier", &["attachment", "total"])
        .activity(Activity {
            id: "B1".into(),
            participant: "reviewer-finance".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("A", "total")],
            responses: vec!["finance-check".into()],
        })
        .activity(Activity {
            id: "B2".into(),
            participant: "reviewer-legal".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("A", "attachment")],
            responses: vec!["legal-check".into()],
        })
        .activity(Activity {
            id: "C".into(),
            participant: "purchasing".into(),
            join: JoinKind::All, // AND-join of B1 and B2
            requests: vec![
                FieldRef::new("B1", "finance-check"),
                FieldRef::new("B2", "legal-check"),
            ],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "fulfilment", &["ack"])
        .flow("A", "B1") // AND-split
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D")
        .with_tfc("TFC")
        .build()
}

fn main() -> WfResult<()> {
    let names = [
        "designer",
        "supplier",
        "reviewer-finance",
        "reviewer-legal",
        "purchasing",
        "fulfilment",
        "TFC",
    ];
    let creds: Vec<Credentials> =
        names.iter().map(|n| Credentials::from_seed(*n, &format!("po-{n}"))).collect();
    let directory = Directory::from_credentials(&creds);

    let def = fig9_definition()?;
    // the total is commercially sensitive: only finance + purchasing read it
    let policy = SecurityPolicy::builder()
        .restrict("A", "total", &["reviewer-finance", "purchasing"])
        .build()
        .with_tfc_access("TFC", &def);

    let designer = &creds[0];
    let initial = DraDocument::new_initial(&def, &policy, designer)?;
    println!("process id: {}", initial.process_id()?);

    // the cloud deployment: 3 portal servers over the document pool
    let system = CloudSystem::new(directory.clone(), 3, Arc::new(NetworkSim::wan()));
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = TfcServer::new(tfc_creds, directory.clone());

    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), directory.clone()))))
        .collect();

    // scripted participants: C rejects once (the Fig. 9 "attachment is
    // insufficient" loop), then accepts
    let respond = |received: &ReceivedActivity| -> Vec<(String, String)> {
        println!(
            "  [{}] {} executes {}#{} ({} visible field(s))",
            received.def.name,
            received.def.activity(&received.activity).unwrap().participant,
            received.activity,
            received.iter,
            received.visible.len()
        );
        match received.activity.as_str() {
            "A" => vec![
                ("attachment".into(), format!("contract-rev{}.pdf", received.iter)),
                ("total".into(), "48,000 USD".into()),
            ],
            "B1" => vec![("finance-check".into(), "within budget".into())],
            "B2" => vec![("legal-check".into(), "clauses ok".into())],
            "C" => vec![(
                "decision".into(),
                if received.iter == 0 { "insufficient" } else { "accept" }.into(),
            )],
            "D" => vec![("ack".into(), "scheduled".into())],
            _ => vec![],
        }
    };

    let out = InstanceRun::new(&system, &initial)
        .agents(&agents)
        .tfc(&tfc)
        .respond(&respond)
        .max_steps(100)
        .run()?;
    println!("\nprocess completed in {} activity executions", out.steps);

    // monitoring (works on the document alone — no engine owns the state)
    let status = ProcessStatus::from_document(&out.document)?;
    print!("{}", status.audit_trail());
    println!("elapsed between first/last TFC timestamps: {:?} ms", status.elapsed_millis());

    // the stored document verifies fully
    let report = Verifier::new(&directory).run(&out.document)?.report;
    println!(
        "final verification: {} signatures over {} CERs, document {} bytes",
        report.signatures_verified,
        report.cers.len(),
        out.document.size_bytes()
    );

    // MapReduce statistics over the pool (paper §4.2)
    println!("pool statistics by status: {:?}", system.statistics_by_status(4));
    println!(
        "network: {} messages, {} bytes, virtual time {} ms",
        system.network.messages(),
        system.network.bytes(),
        system.network.virtual_time_us() / 1000
    );
    Ok(())
}
