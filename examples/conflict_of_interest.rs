//! The paper's Fig. 4 scenario: flow concealment / conflict of interest.
//!
//! Peter inputs `X` (confidential — only Amy may read it). Tony inputs `Y`,
//! whose audience depends on `Func(X)`: John if true, Mary otherwise. After
//! Tony there is an OR-split on `Func(X)` — which Tony must not see.
//!
//! * Under the **basic model**, Tony's AEA cannot resolve Y's audience nor
//!   evaluate the split: the run fails exactly as the paper argues.
//! * Under the **advanced model**, Tony seals his result to the TFC; the TFC
//!   (a notary that *can* read X) re-encrypts Y for the right recipient and
//!   routes the document — Tony learns nothing.
//!
//! Run with: `cargo run --example conflict_of_interest`

use dra4wfms::prelude::*;

struct Cast {
    designer: Credentials,
    peter: Credentials,
    tony: Credentials,
    tfc: Credentials,
    directory: Directory,
}

fn cast() -> Cast {
    let designer = Credentials::from_seed("designer", "coi-designer");
    let peter = Credentials::from_seed("peter", "coi-peter");
    let tony = Credentials::from_seed("tony", "coi-tony");
    let amy = Credentials::from_seed("amy", "coi-amy");
    let john = Credentials::from_seed("john", "coi-john");
    let mary = Credentials::from_seed("mary", "coi-mary");
    let tfc = Credentials::from_seed("TFC", "coi-tfc");
    let directory =
        Directory::from_credentials([&designer, &peter, &tony, &amy, &john, &mary, &tfc]);
    Cast { designer, peter, tony, tfc, directory }
}

fn definition(advanced: bool) -> WfResult<WorkflowDefinition> {
    let b = WorkflowDefinition::builder("fig4", "designer")
        .simple_activity("A1", "peter", &["X"])
        .simple_activity("A3", "tony", &["Y"])
        .simple_activity("A4", "john", &["j"])
        .simple_activity("A5", "mary", &["m"])
        .flow("A1", "A3")
        .flow_if("A3", "A4", Condition::field_equals("A1", "X", "true"))
        .flow_if("A3", "A5", Condition::field_not_equals("A1", "X", "true"))
        .flow_end("A4")
        .flow_end("A5");
    if advanced { b.with_tfc("TFC") } else { b }.build()
}

fn policy(def: &WorkflowDefinition, advanced: bool) -> SecurityPolicy {
    let p = SecurityPolicy::builder()
        .restrict("A1", "X", &["amy"]) // Tony must NOT read X
        .restrict_conditional(
            "A3",
            "Y",
            Condition::field_equals("A1", "X", "true"),
            &["john"],
            &["mary"],
        )
        .build();
    if advanced {
        p.with_tfc_access("TFC", def)
    } else {
        p
    }
}

fn main() -> WfResult<()> {
    let c = cast();

    println!("=== basic model: Tony's AEA hits the wall ===");
    let def = definition(false)?;
    let initial = DraDocument::new_initial(&def, &policy(&def, false), &c.designer)?;
    let aea_peter = Aea::new(c.peter.clone(), c.directory.clone());
    let received = aea_peter.receive(initial.to_xml_string(), "A1")?;
    let done = aea_peter.complete(&received, &[("X".into(), "true".into())])?;
    let aea_tony = Aea::new(c.tony.clone(), c.directory.clone());
    let received = aea_tony.receive(done.document.to_xml_string(), "A3")?;
    match aea_tony.complete(&received, &[("Y".into(), "the payload".into())]) {
        Err(e) => println!("as the paper predicts, Tony cannot proceed:\n  {e}\n"),
        Ok(_) => unreachable!("basic model must fail on Fig. 4"),
    }

    println!("=== advanced model: the TFC resolves it ===");
    let def = definition(true)?;
    let initial = DraDocument::new_initial(&def, &policy(&def, true), &c.designer)?;
    let tfc = TfcServer::new(c.tfc.clone(), c.directory.clone());

    let received = aea_peter.receive(initial.to_xml_string(), "A1")?;
    let inter = aea_peter.complete_via_tfc(&received, &[("X".into(), "true".into())])?;
    let done = tfc.process(inter.document.to_xml_string())?;
    println!("A1 finalized by TFC at t={} -> route {:?}", done.timestamp, done.route.targets);

    let received = aea_tony.receive(done.document.to_xml_string(), "A3")?;
    println!(
        "Tony opens A3; hidden fields (cannot decrypt): {:?}",
        received.hidden.iter().map(|f| format!("{}.{}", f.activity, f.field)).collect::<Vec<_>>()
    );
    let inter = aea_tony.complete_via_tfc(&received, &[("Y".into(), "the payload".into())])?;
    let done = tfc.process(inter.document.to_xml_string())?;
    println!(
        "A3 finalized by TFC -> route {:?} (Func(X) evaluated by the notary)",
        done.route.targets
    );
    assert_eq!(done.route.targets, vec!["A4"], "X=true routes to John");

    // Y is encrypted for John, not Mary — inspect the stored CER
    let cer = done.document.find_cer(&CerKey::new("A3", 0))?.unwrap();
    let enc = cer
        .result()
        .unwrap()
        .child_elements()
        .find(|e| e.get_attr("field") == Some("Y"))
        .expect("Y stored encrypted");
    println!(
        "recipients of Y in the stored document: {:?}",
        dra4wfms::xml::enc::recipients_of(enc)
    );

    let report = Verifier::new(&c.directory).run(&done.document)?.report;
    println!(
        "document verifies: {} signatures (participants + TFC attestations)",
        report.signatures_verified
    );
    Ok(())
}
