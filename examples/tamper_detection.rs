//! The paper's central security claim, demonstrated head to head:
//!
//! 1. In an **engine-based WfMS**, a database superuser rewrites a stored
//!    execution result and the audit log. The stored instance looks
//!    perfectly genuine — nonrepudiation is impossible (paper §1).
//! 2. In **DRA4WfMS**, the same rewrite on the routed document breaks the
//!    signature cascade and is detected by the next verifier; Algorithm 1
//!    then tells us exactly which participants are bound by which results.
//!
//! Run with: `cargo run --example tamper_detection`

use dra4wfms::engine::WorkflowEngine;
use dra4wfms::prelude::*;

fn definition() -> WfResult<WorkflowDefinition> {
    WorkflowDefinition::builder("wire-transfer", "designer")
        .simple_activity("request", "alice", &["amount"])
        .activity(Activity {
            id: "sign-off".into(),
            participant: "bob".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("request", "amount")],
            responses: vec!["approval".into()],
        })
        .flow("request", "sign-off")
        .flow_end("sign-off")
        .build()
}

fn main() -> WfResult<()> {
    let def = definition()?;

    // ------------------------------------------------------------------
    println!("=== 1. engine-based WfMS: superuser tampering is undetectable ===");
    let engine = WorkflowEngine::new("corp-engine");
    let pid = engine.start_process(&def).expect("start");
    engine
        .execute_activity(pid, "request", "alice", &[("amount".into(), "100".into())])
        .expect("alice executes");
    engine
        .execute_activity(pid, "sign-off", "bob", &[("approval".into(), "granted".into())])
        .expect("bob executes");

    println!(
        "stored amount before tamper: {:?}",
        engine.get_instance(pid).unwrap().field("request", "amount")
    );

    // the DBA rewrites the amount and forges a clean log
    let su = engine.superuser();
    su.alter_result(pid, "request", "amount", "1000000").unwrap();
    su.rewrite_log(
        pid,
        vec![
            "process started on engine corp-engine".into(),
            "request#0 executed by alice".into(),
            "sign-off#0 executed by bob".into(),
        ],
    )
    .unwrap();

    let inst = engine.get_instance(pid).unwrap();
    println!("stored amount after tamper:  {:?}", inst.field("request", "amount"));
    println!("audit log after tamper:      {:?}", inst.log);
    println!("-> nothing in the instance reveals the rewrite; alice can repudiate the");
    println!("   1,000,000 and the company cannot prove either version. QED §1.\n");

    // ------------------------------------------------------------------
    println!("=== 2. DRA4WfMS: the same rewrite breaks the cascade ===");
    let designer = Credentials::from_seed("designer", "td-designer");
    let alice = Credentials::from_seed("alice", "td-alice");
    let bob = Credentials::from_seed("bob", "td-bob");
    let directory = Directory::from_credentials([&designer, &alice, &bob]);

    let initial = DraDocument::new_initial(&def, &SecurityPolicy::public(), &designer)?;
    let aea_alice = Aea::new(alice, directory.clone());
    let received = aea_alice.receive(initial.to_xml_string(), "request")?;
    let done = aea_alice.complete(&received, &[("amount".into(), "100".into())])?;
    let aea_bob = Aea::new(bob, directory.clone());
    let received = aea_bob.receive(done.document.to_xml_string(), "sign-off")?;
    let done = aea_bob.complete(&received, &[("approval".into(), "granted".into())])?;

    // a "superuser" holding the stored document rewrites alice's 100
    let tampered_xml = done.document.to_xml_string().replace(">100<", ">1000000<");
    assert_ne!(tampered_xml, done.document.to_xml_string(), "tamper applied");
    let tampered = DraDocument::parse(&tampered_xml)?;

    match Verifier::new(&directory).run(&tampered) {
        Err(e) => println!("verification of tampered document FAILED as required:\n  {e}"),
        Ok(_) => unreachable!("tampering must be detected"),
    }

    // the genuine document still verifies, and Algorithm 1 binds everyone
    let report = Verifier::new(&directory).run(&done.document)?.report;
    println!(
        "\ngenuine document verifies: {} signatures over {} CERs",
        report.signatures_verified,
        report.cers.len()
    );
    for key in &report.cers {
        let scope = nonrepudiation_scope(&done.document, &PredRef::Cer(key.clone()))?;
        println!("nonrepudiation scope of {key}: {} node(s)", scope.len());
    }
    println!("-> bob's signature covers alice's CER and the definition: neither party");
    println!("   can repudiate, and no storage administrator can rewrite history.");
    Ok(())
}
