//! Dynamic flow control (§1 feature list): amending a *running* process —
//! no engine to reconfigure, no redeployment. The designer appends a signed
//! amendment CER; every later signature covers it, so the rule change is as
//! nonrepudiable as the executions themselves.
//!
//! Scenario: a two-step contract workflow is running when a new compliance
//! rule lands — every contract now needs a compliance review, and the
//! review's notes must be readable only by the original submitter.
//!
//! Run with: `cargo run --example dynamic_amendment`

use dra4wfms::prelude::*;

fn main() -> WfResult<()> {
    let designer = Credentials::from_seed("designer", "dyn-designer");
    let alice = Credentials::from_seed("alice", "dyn-alice");
    let bob = Credentials::from_seed("bob", "dyn-bob");
    let compliance = Credentials::from_seed("compliance", "dyn-compliance");
    let directory = Directory::from_credentials([&designer, &alice, &bob, &compliance]);

    let def = WorkflowDefinition::builder("contract", "designer")
        .simple_activity("draft", "alice", &["text"])
        .simple_activity("sign", "bob", &["signature-ref"])
        .flow("draft", "sign")
        .flow_end("sign")
        .build()?;
    let initial = DraDocument::new_initial(&def, &SecurityPolicy::public(), &designer)?;

    // alice drafts the contract — the process is now in flight
    let aea_alice = Aea::new(alice, directory.clone());
    let received = aea_alice.receive(initial.to_xml_string(), "draft")?;
    let done = aea_alice.complete(&received, &[("text".into(), "the contract".into())])?;
    println!("draft executed; route = {:?}", done.route.targets);

    // the compliance rule lands: the designer amends the running process
    let delta = DefinitionDelta {
        add_activities: vec![Activity {
            id: "compliance-review".into(),
            participant: "compliance".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("draft", "text")],
            responses: vec!["notes".into()],
        }],
        add_transitions: vec![
            Transition {
                from: "sign".into(),
                to: Target::Activity("compliance-review".into()),
                condition: None,
            },
            Transition { from: "compliance-review".into(), to: Target::End, condition: None },
        ],
        retire_transitions: vec![("sign".into(), Target::End)],
        add_policy_rules: vec![FieldRule {
            activity: "compliance-review".into(),
            field: "notes".into(),
            readers: Readers::Only(vec!["alice".into()]),
        }],
    };
    let amended = amend_document(&done.document, &designer, &delta)?;
    println!(
        "amendment embedded as CER __amend#0; document verifies: {}",
        Verifier::new(&directory).run(&amended).is_ok()
    );

    // bob signs — and is routed to the NEW activity, not End
    let aea_bob = Aea::new(bob, directory.clone());
    let received = aea_bob.receive(amended.to_xml_string(), "sign")?;
    let done = aea_bob.complete(&received, &[("signature-ref".into(), "sig-0042".into())])?;
    println!("sign executed; route = {:?} (dynamically added)", done.route.targets);
    assert_eq!(done.route.targets, vec!["compliance-review"]);

    // compliance reviews; the dynamic policy encrypts notes for alice
    let aea_comp = Aea::new(compliance, directory.clone());
    let received = aea_comp.receive(done.document.to_xml_string(), "compliance-review")?;
    println!(
        "compliance sees the draft text: {:?}",
        received.visible.iter().map(|(f, v)| format!("{}={v}", f.field)).collect::<Vec<_>>()
    );
    let done = aea_comp.complete(&received, &[("notes".into(), "clause 4 is risky".into())])?;
    assert!(done.route.ends);

    let report = Verifier::new(&directory).run(&done.document)?.report;
    println!(
        "final document: {} CERs (incl. the amendment), {} signatures verified",
        report.cers.len(),
        report.signatures_verified
    );

    // nonrepudiation of the rule change: bob's signature covers the
    // amendment — he cannot claim he signed under the old rules
    let scope = nonrepudiation_scope(&done.document, &PredRef::Cer(CerKey::new("sign", 0)))?;
    assert!(scope.contains(&PredRef::Cer(CerKey::new("__amend", 0))));
    println!("bob's nonrepudiation scope covers the amendment: rule change is binding");
    Ok(())
}
