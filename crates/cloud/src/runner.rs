//! End-to-end scenario driver: pushes whole process instances through the
//! Fig. 7 loop — portal → AEA → (TFC →) portal → notify — handling
//! AND-split branching, AND-join merging and loops.
//!
//! Participants are scripted: a [`Responder`] maps each opened activity to
//! its response fields, standing in for the humans behind the GUIs (the
//! experiments measure AEA/TFC processing, not think time).
//!
//! Runs are configured with the [`InstanceRun`] builder:
//!
//! ```ignore
//! let outcome = InstanceRun::new(&system, &initial)
//!     .agents(&agents)
//!     .tfc(&tfc)                // advanced model only
//!     .respond(&responder)
//!     .max_steps(100)
//!     .network(&delivery)       // optional: hops cross a faulty channel
//!     .supervisor(SupervisorPolicy::default()) // crash takeover tuning
//!     .run()?;
//! ```
//!
//! ## Lease-based hop takeover
//!
//! Every dispatched hop implicitly carries a virtual-time lease. When a
//! crash fault kills the executing agent (or the TFC, or the portal on the
//! direct path), the runner — acting as supervisor — waits out the lease,
//! restarts the portals (journal replay), re-fetches the hop's input
//! documents from the pool (*document-anchored recovery*: the pool copy,
//! not the dead agent's memory, is the truth) and re-dispatches the hop to
//! a recovered agent. Deterministic signing + sealing make the re-executed
//! result byte-identical, so if the dead agent's send did land, the
//! portal's wire-digest idempotency suppresses the duplicate.

use crate::delivery::{Delivery, DeliveryStats};
use crate::monitor::HealthMonitor;
use crate::portal::CloudSystem;
use dra4wfms_core::flow::merge_documents;
use dra4wfms_core::prelude::*;
use dra_obs::{stage, MetricsRegistry, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Scripted participant behaviour: given the opened activity (with its
/// visible fields), produce the response fields.
pub type Responder = dyn Fn(&ReceivedActivity) -> Vec<(String, String)> + Sync;

/// Crash-takeover tuning of the runner's supervisor role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Virtual-time lease granted to each dispatched hop; on a crash the
    /// supervisor charges this much waiting for the lease to expire before
    /// taking the hop over.
    pub lease_us: u64,
    /// How many takeovers the supervisor will perform per hop before
    /// giving up and surfacing the crash.
    pub max_takeovers: usize,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy { lease_us: 20_000, max_takeovers: 4 }
    }
}

/// The result of driving one process instance to completion.
#[derive(Debug)]
pub struct RunOutcome {
    /// The final document (sealed, with the last hop's trust mark).
    pub document: SealedDocument,
    /// Total activity executions performed.
    pub steps: usize,
    /// The process id.
    pub process_id: String,
    /// Individual signature checks the AEAs/TFC spent across the run —
    /// with trust-marked hand-offs this grows O(n) in the number of steps
    /// instead of the O(n²) of re-verifying every cascade from scratch.
    pub signature_checks: usize,
    /// Delivery accounting when the run crossed a fault-injecting channel
    /// ([`InstanceRun::network`]); `None` on the direct path.
    pub delivery: Option<DeliveryStats>,
}

/// Builder for driving one process instance end to end.
///
/// Required: [`InstanceRun::agents`] and [`InstanceRun::respond`] — the run
/// fails with [`WfError::Config`] without them. Everything else has
/// defaults: no TFC (basic model), 1 000 step bound, direct (lossless)
/// hand-offs.
#[must_use = "the builder does nothing until .run()"]
pub struct InstanceRun<'a> {
    pub(crate) system: &'a CloudSystem,
    pub(crate) initial: &'a DraDocument,
    pub(crate) agents: Option<&'a HashMap<String, Arc<Aea>>>,
    pub(crate) tfc: Option<&'a TfcServer>,
    pub(crate) respond: Option<&'a Responder>,
    pub(crate) max_steps: usize,
    pub(crate) delivery: Option<&'a Delivery>,
    pub(crate) supervisor: SupervisorPolicy,
    pub(crate) tracer: Tracer,
    pub(crate) metrics: Option<&'a MetricsRegistry>,
    pub(crate) monitor: Option<Arc<HealthMonitor>>,
    pub(crate) slo_us: Option<u64>,
}

impl<'a> InstanceRun<'a> {
    /// Start configuring a run of `initial` on `system`.
    pub fn new(system: &'a CloudSystem, initial: &'a DraDocument) -> InstanceRun<'a> {
        InstanceRun {
            system,
            initial,
            agents: None,
            tfc: None,
            respond: None,
            max_steps: 1_000,
            delivery: None,
            supervisor: SupervisorPolicy::default(),
            tracer: Tracer::disabled(),
            metrics: None,
            monitor: None,
            slo_us: None,
        }
    }

    /// One AEA per participant name (required).
    pub fn agents(mut self, agents: &'a HashMap<String, Arc<Aea>>) -> InstanceRun<'a> {
        self.agents = Some(agents);
        self
    }

    /// The TFC server, when the definition uses the advanced model.
    pub fn tfc(mut self, tfc: &'a TfcServer) -> InstanceRun<'a> {
        self.tfc = Some(tfc);
        self
    }

    /// Scripted participant behaviour (required).
    pub fn respond(mut self, respond: &'a Responder) -> InstanceRun<'a> {
        self.respond = Some(respond);
        self
    }

    /// Safety bound against runaway loops (default 1 000).
    pub fn max_steps(mut self, max_steps: usize) -> InstanceRun<'a> {
        self.max_steps = max_steps;
        self
    }

    /// Route every document hand-off (AEA → portal, AEA → TFC) through a
    /// fault-injecting [`Delivery`] channel instead of the direct path. The
    /// outcome's [`RunOutcome::delivery`] then carries the per-run stats.
    pub fn network(mut self, delivery: &'a Delivery) -> InstanceRun<'a> {
        self.delivery = Some(delivery);
        self
    }

    /// Tune the crash-takeover supervisor (lease length, takeover budget).
    pub fn supervisor(mut self, policy: SupervisorPolicy) -> InstanceRun<'a> {
        self.supervisor = policy;
        self
    }

    /// Record a structured trace of the run: one `hop` span per dispatch
    /// attempt (outcome `crash` when the supervisor takes the hop over)
    /// plus an `execute` span around each scripted response. The same
    /// tracer should be installed on the AEAs / TFC / system so the stage
    /// spans interleave on one timeline.
    pub fn tracer(mut self, tracer: Tracer) -> InstanceRun<'a> {
        self.tracer = tracer;
        self
    }

    /// Watch the run with an online [`HealthMonitor`] and let the
    /// supervisor act on its observations: a crashed hop is taken over as
    /// soon as the monitor declares the instance stuck
    /// (`progress_deadline_us`) instead of pessimistically waiting out the
    /// full lease. The runner registers the monitor as a sink on its
    /// tracer (`add_sink` is idempotent, so sharing one monitor across
    /// many runs of a deployment is fine).
    pub fn monitor(mut self, monitor: &Arc<HealthMonitor>) -> InstanceRun<'a> {
        self.monitor = Some(Arc::clone(monitor));
        self
    }

    /// Declare an end-to-end SLO (virtual µs) for this instance: when a
    /// [`HealthMonitor`] is installed and the run takes longer, it raises
    /// an `SloBreach` alert.
    pub fn slo_us(mut self, slo_us: u64) -> InstanceRun<'a> {
        self.slo_us = Some(slo_us);
        self
    }

    /// Export end-of-run counters into `metrics`: `run.steps`, the
    /// `delivery.*` family, the portal / trust-cache / journal family via
    /// [`CloudSystem::export_metrics`], `tfc.redo_reuses` (advanced model)
    /// and a `hop.duration_us` histogram in virtual time.
    pub fn metrics(mut self, metrics: &'a MetricsRegistry) -> InstanceRun<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// Store a document through the configured channel: direct (charging
    /// the network once) or via retry/backoff delivery over the faulty one.
    pub(crate) fn store(
        &self,
        portal: usize,
        sealed: &SealedDocument,
        route: &Route,
    ) -> WfResult<()> {
        match self.delivery {
            Some(d) => d.deliver(self.system, portal, sealed, route).map(|_| ()),
            None => self.system.store_sealed(portal, sealed, route).map(|_| ()),
        }
    }

    /// Drive the instance to completion.
    ///
    /// Since the event-driven core landed this is a thin facade over
    /// [`crate::sched::Scheduler`]: the instance is admitted (which stores
    /// the initial document and emits the boot activation), and the
    /// deployment's activation bus is drained to completion. Same builder
    /// API, byte-identical outcomes — the parity suite pins
    /// [`InstanceRun::run_legacy`] against this path.
    pub fn run(self) -> WfResult<RunOutcome> {
        let system = self.system;
        let mut sched = crate::sched::Scheduler::new(system);
        let pid = sched.admit_instance(self)?;
        let results = sched.run_to_completion();
        results.into_iter().find_map(|(p, r)| (p == pid).then_some(r)).unwrap_or_else(|| {
            Err(WfError::Flow(format!("scheduler lost track of instance '{pid}'")))
        })
    }

    /// The original single-instance driver loop, frozen as the reference
    /// implementation for the scheduler parity suite: an in-memory
    /// queue/inbox walk that single-steps exactly one instance. Byte-for-
    /// byte equivalent to [`InstanceRun::run`] on pool contents and
    /// `run.*`/`portal.*` metrics — only the `sched.*` dispatch accounting
    /// differs (this path never pops the bus; it drains its own wake-ups
    /// at the end instead).
    pub fn run_legacy(self) -> WfResult<RunOutcome> {
        let system = self.system;
        let initial = self.initial;
        let agents =
            self.agents.ok_or_else(|| WfError::Config("InstanceRun needs .agents(..)".into()))?;
        let respond =
            self.respond.ok_or_else(|| WfError::Config("InstanceRun needs .respond(..)".into()))?;

        let (def, _) = dra4wfms_core::amendment::effective_definition(initial)?;
        def.validate()?;
        let pid = initial.process_id()?;
        if def.tfc.is_some() && self.tfc.is_none() {
            return Err(WfError::Policy(
                "definition uses the advanced model but no TFC server was provided".into(),
            ));
        }
        if let Some(mon) = &self.monitor {
            self.tracer.add_sink(Arc::clone(mon) as Arc<dyn dra_obs::TraceSink>);
            mon.instance_started(&pid, self.slo_us, self.tracer.now_us());
        }

        // the initial document enters the pool; the start activity is
        // notified
        let sealed_initial = SealedDocument::new(initial.clone());
        self.store(
            system.portal_for(&pid, 0),
            &sealed_initial,
            &Route { targets: vec![def.start.clone()], ends: false },
        )?;

        // inbox: per-activity branch documents awaiting execution/merge.
        // Hops hand off the sealed form — bytes plus trust mark — so a
        // single-branch arrival is verified incrementally instead of
        // re-parsed from XML.
        let mut inbox: HashMap<String, Vec<SealedDocument>> = HashMap::new();
        inbox.entry(def.start.clone()).or_default().push(sealed_initial.clone());
        let mut queue: VecDeque<String> = VecDeque::from([def.start.clone()]);

        let mut steps = 0usize;
        let mut signature_checks = 0usize;
        let mut last_doc = sealed_initial;
        let mut leases_expired = 0u64;
        let mut crashes_supervised = 0u64;
        let mut early_takeovers = 0u64;
        let replays_at_start = system.journal_replays();

        while let Some(activity) = queue.pop_front() {
            let Some(arrived) = inbox.remove(&activity) else { continue };
            if steps >= self.max_steps {
                return Err(WfError::Flow(format!(
                    "run exceeded {} steps (runaway loop?)",
                    self.max_steps
                )));
            }

            let mut inputs = arrived;
            let mut merged = Self::merge_inputs(&inputs)?;

            // re-fold amendments: a designer may have amended the definition
            // mid-run, and routing must follow the rules now in force
            let (def_now, _) = dra4wfms_core::amendment::effective_definition(&merged)?;
            let act = def_now.activity(&activity)?.clone();
            let aea = agents
                .get(&act.participant)
                .ok_or_else(|| WfError::UnknownIdentity(act.participant.clone()))?;

            // AND-join: wait for the remaining branches
            if act.join == JoinKind::All && !join_ready(&merged, &def_now, &activity)? {
                inbox.entry(activity.clone()).or_default().push(merged);
                continue;
            }

            // dispatch the hop under a virtual-time lease; a crash fault
            // surfaces here as WfError::Crash, and the supervisor takes the
            // hop over instead of failing the run
            let use_tfc = def_now.tfc.is_some();
            let mut takeovers_left = self.supervisor.max_takeovers;
            let (document, route, hop_checks, _hop_iter) = loop {
                let hop_start = self.tracer.now_us();
                let mut hop_span =
                    self.tracer.span(stage::HOP).actor(&act.participant).process(&pid);
                let portal = system.portal_for(&pid, steps + 1);
                match self.execute_hop(aea, &activity, &merged, respond, use_tfc, portal) {
                    Ok(done) => {
                        hop_span.set_activity(&activity, done.3);
                        hop_span.attr("signature_checks", done.2);
                        hop_span.end();
                        if let Some(m) = self.metrics {
                            m.observe(
                                "hop.duration_us",
                                self.tracer.now_us().saturating_sub(hop_start),
                            );
                        }
                        break done;
                    }
                    Err(WfError::Crash(site)) if takeovers_left > 0 => {
                        hop_span.set_activity(&activity, 0);
                        hop_span.attr("site", &site);
                        hop_span.end_with(dra_obs::OUTCOME_CRASH);
                        takeovers_left -= 1;
                        leases_expired += 1;
                        crashes_supervised += 1;
                        // the dead agent's lease runs out in virtual time —
                        // unless a monitor is watching, in which case the
                        // supervisor moves the moment the instance is
                        // *observed* stuck (observability driving
                        // robustness: act earlier, never differently)
                        let wait_us = match &self.monitor {
                            Some(mon) => {
                                let until_stuck = mon.time_until_stuck(&pid, self.tracer.now_us());
                                until_stuck.min(self.supervisor.lease_us)
                            }
                            None => self.supervisor.lease_us,
                        };
                        system.network.advance(wait_us);
                        if let Some(mon) = &self.monitor {
                            mon.tick(self.tracer.now_us());
                            if wait_us < self.supervisor.lease_us {
                                early_takeovers += 1;
                            }
                        }
                        // ... crashed portals restart (journal replay
                        // completes any half-done admission) ...
                        system.recover_portals();
                        // ... and the hop is re-anchored on the documents in
                        // the pool, not the dead agent's memory
                        inputs = self.refetch(&pid, inputs);
                        merged = Self::merge_inputs(&inputs)?;
                    }
                    Err(e) => return Err(e),
                }
            };
            steps += 1;
            signature_checks += hop_checks;
            system.consume_todo(&act.participant, &pid, &activity);

            for target in &route.targets {
                inbox.entry(target.clone()).or_default().push(document.clone());
                if !queue.contains(target) {
                    queue.push_back(target.clone());
                }
            }
            last_doc = document;
        }

        // late reordered copies are ingested before stats are read, so the
        // same seed + profile always reports the same numbers
        let mut delivery = self.delivery.map(|d| {
            d.flush(system);
            d.stats()
        });
        // this path never pops the bus — drop the wake-ups the admissions
        // emitted so they cannot leak into a later scheduler on the same
        // deployment (and so `sched.bus_depth` reads honestly at export)
        system.activation_bus().drain_process(&pid);
        // fold in crash/recovery accounting: the delivery layer counted the
        // crashes it absorbed on its own paths, the supervisor counted the
        // ones that reached the takeover loop — disjoint events
        let replays = system.journal_replays() - replays_at_start;
        if delivery.is_none() && (crashes_supervised > 0 || replays > 0) {
            delivery = Some(DeliveryStats::default());
        }
        if let Some(stats) = delivery.as_mut() {
            stats.crashes_injected += crashes_supervised;
            stats.leases_expired = leases_expired;
            stats.journal_replays = replays;
        }

        if let Some(mon) = &self.monitor {
            mon.instance_finished(&pid, self.tracer.now_us());
        }

        if let Some(m) = self.metrics {
            if let Some(stats) = delivery.as_ref() {
                stats.export_metrics(m);
            }
            system.export_metrics(m);
            // additive, not overwriting: bench cells run many instances
            // against one shared registry (and one shared monitor), and the
            // alert-accounting invariants compare *cumulative* alert counts
            // against these — so they must accumulate too
            m.incr("run.steps", steps as u64);
            m.incr("run.signature_checks", signature_checks as u64);
            m.incr("run.takeovers", crashes_supervised);
            m.incr("run.timeouts", leases_expired);
            m.incr("run.early_takeovers", early_takeovers);
            if let Some(tfc) = self.tfc {
                m.set_counter("tfc.redo_reuses", tfc.redo_reuses());
            }
            if let Some(mon) = &self.monitor {
                mon.export_metrics(m);
            }
        }

        Ok(RunOutcome { document: last_doc, steps, process_id: pid, signature_checks, delivery })
    }

    /// Merge branch documents: a single arrival keeps its seal and trust
    /// mark; a true merge builds a new document that needs a full
    /// verification.
    pub(crate) fn merge_inputs(inputs: &[SealedDocument]) -> WfResult<SealedDocument> {
        if inputs.len() == 1 {
            return Ok(inputs[0].clone());
        }
        let docs: Vec<DraDocument> = inputs.iter().map(|s| s.document().clone()).collect();
        Ok(SealedDocument::new(merge_documents(&docs)?))
    }

    /// Execute one hop end to end: open the activity, respond, complete
    /// (via the TFC on the advanced model), store and notify. Returns the
    /// resulting document, its route, the signature checks spent and the
    /// activity iteration executed — or the [`WfError::Crash`] of whichever
    /// component died.
    pub(crate) fn execute_hop(
        &self,
        aea: &Aea,
        activity: &str,
        merged: &SealedDocument,
        respond: &Responder,
        use_tfc: bool,
        portal: usize,
    ) -> WfResult<(SealedDocument, Route, usize, u32)> {
        let system = self.system;
        let received = aea.receive(merged.clone(), activity)?;
        let mut checks = received.report.signatures_verified;
        let iter = received.iter;
        let mut span_exec = self
            .tracer
            .span(stage::EXECUTE)
            .actor(&aea.creds.name)
            .process(&received.report.process_id)
            .activity(activity, iter);
        let responses = respond(&received);
        span_exec.attr("responses", responses.len());
        span_exec.end();

        // basic vs advanced model
        let (document, route) = match self.tfc {
            Some(server) if use_tfc => {
                let inter = aea.complete_via_tfc(&received, &responses)?;
                let processed = match self.delivery {
                    // the AEA → TFC hop crosses the same faulty channel
                    Some(d) => d.transfer(&inter.document, |s| server.receive(s))?,
                    None => {
                        system.network.transfer(inter.document.size_bytes());
                        server.receive(inter.document)?
                    }
                };
                checks += processed.report.signatures_verified;
                let finalized = server.finalize(&processed)?;
                (finalized.document, finalized.route)
            }
            _ => {
                let done = aea.complete(&received, &responses)?;
                (done.document, done.route)
            }
        };

        // store + notify (portal chosen by hash of (process, step))
        self.store(portal, &document, &route)?;
        Ok((document, route, checks, iter))
    }

    /// Document-anchored recovery: swap each input for the copy the pool
    /// holds for these exact bytes (found via the wire-digest row), with
    /// the deployment's trust mark re-attached. An input the pool has no
    /// completed admission for is kept as-is — the runner stored every
    /// input before dispatching the hop, so this only happens when replay
    /// has not repaired a torn admission yet.
    pub(crate) fn refetch(&self, pid: &str, inputs: Vec<SealedDocument>) -> Vec<SealedDocument> {
        inputs
            .into_iter()
            .map(|sealed| {
                let Some(seq) = self.system.stored_seq_for(&sealed.wire()) else {
                    return sealed;
                };
                let Some(xml) = self.system.retrieve_version(pid, seq) else {
                    return sealed;
                };
                let Ok(mut fresh) = SealedDocument::from_wire(&xml) else {
                    return sealed;
                };
                if let Some(mark) = self.system.trust_cache.get(&dra_crypto::sha256(xml.as_bytes()))
                {
                    fresh.set_trust(mark);
                }
                fresh
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultProfile;
    use crate::netsim::NetworkSim;
    use dra4wfms_core::monitor::ProcessStatus;
    use dra4wfms_core::verify::Verifier;

    /// The Fig. 9A workflow: A → AND-split(B1,B2) → AND-join C → (loop to A
    /// on "insufficient" | D on accept) → end.
    pub fn fig9a() -> WorkflowDefinition {
        WorkflowDefinition::builder("fig9a", "designer")
            .simple_activity("A", "p_a", &["attachment"])
            .simple_activity("B1", "p_b1", &["review1"])
            .simple_activity("B2", "p_b2", &["review2"])
            .activity(Activity {
                id: "C".into(),
                participant: "p_c".into(),
                join: JoinKind::All,
                requests: vec![],
                responses: vec!["decision".into()],
            })
            .simple_activity("D", "p_d", &["ack"])
            .flow("A", "B1")
            .flow("A", "B2")
            .flow("B1", "C")
            .flow("B2", "C")
            .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
            .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
            .flow_end("D")
            .build()
            .unwrap()
    }

    fn people() -> Vec<Credentials> {
        ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d", "TFC"]
            .iter()
            .map(|n| Credentials::from_seed(*n, &format!("seed-{n}")))
            .collect()
    }

    fn agents(creds: &[Credentials], dir: &Directory) -> HashMap<String, Arc<Aea>> {
        creds.iter().map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone())))).collect()
    }

    /// Fig. 9A with the loop taken once: C rejects on its first pass
    /// ("attachment is insufficient"), then accepts.
    fn fig9a_responder() -> impl Fn(&ReceivedActivity) -> Vec<(String, String)> + Sync {
        |received: &ReceivedActivity| match received.activity.as_str() {
            "A" => vec![("attachment".into(), format!("files-v{}", received.iter))],
            "B1" => vec![("review1".into(), "looks-good".into())],
            "B2" => vec![("review2".into(), "fine".into())],
            "C" => {
                let decision = if received.iter == 0 { "insufficient" } else { "accept" };
                vec![("decision".into(), decision.into())]
            }
            "D" => vec![("ack".into(), "done".into())],
            other => panic!("unexpected activity {other}"),
        }
    }

    #[test]
    fn fig9a_basic_model_full_run() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let sys = CloudSystem::new(dir.clone(), 3, Arc::new(NetworkSim::lan()));
        let def = fig9a();
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public(),
            &creds[0],
            "fig9a-run",
        )
        .unwrap();
        let responder = fig9a_responder();
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents(&creds, &dir))
            .respond(&responder)
            .max_steps(100)
            .run()
            .unwrap();
        // Loop taken once: A,B1,B2,C (reject) + A,B1,B2,C (accept) + D = 9
        assert_eq!(out.steps, 9);
        assert!(out.delivery.is_none(), "no delivery channel configured");
        let cers = out.document.cers().unwrap();
        assert_eq!(cers.len(), 9);
        let status = ProcessStatus::from_document(&out.document).unwrap();
        assert_eq!(status.counts_per_activity()["A"], 2);
        assert_eq!(status.counts_per_activity()["C"], 2);
        assert_eq!(status.counts_per_activity()["D"], 1);
        // the final document verifies end-to-end
        let report = Verifier::new(&dir).run(&out.document).unwrap().report;
        assert_eq!(report.signatures_verified, 10, "designer + 9 CERs");
        // and the pool has every intermediate version
        assert_eq!(sys.pool.scan_prefix("doc/fig9a-run/").len(), 10);
    }

    #[test]
    fn fig9b_advanced_model_full_run() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let sys = CloudSystem::new(dir.clone(), 3, Arc::new(NetworkSim::lan()));
        let def = {
            // same process, routed through the TFC (Fig. 9B)
            let mut d = fig9a();
            d.tfc = Some("TFC".into());
            d
        };
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
        let t = 1_000u64;
        let tfc = TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(move || t));
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public().with_tfc_access("TFC", &def),
            &creds[0],
            "fig9b-run",
        )
        .unwrap();
        let responder = fig9a_responder();
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents(&creds, &dir))
            .tfc(&tfc)
            .respond(&responder)
            .max_steps(100)
            .run()
            .unwrap();
        assert_eq!(out.steps, 9);
        // every CER carries a TFC timestamp
        let status = ProcessStatus::from_document(&out.document).unwrap();
        assert!(status.executed.iter().all(|e| e.timestamp == Some(1_000)));
        // designer + 9 participant sigs + 9 TFC sigs
        let report = Verifier::new(&dir).run(&out.document).unwrap().report;
        assert_eq!(report.signatures_verified, 19);
    }

    #[test]
    fn missing_tfc_is_an_error() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
        let mut def = fig9a();
        def.tfc = Some("TFC".into());
        let initial =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "x")
                .unwrap();
        let responder = fig9a_responder();
        assert!(matches!(
            InstanceRun::new(&sys, &initial)
                .agents(&agents(&creds, &dir))
                .respond(&responder)
                .max_steps(10)
                .run(),
            Err(WfError::Policy(_))
        ));
    }

    #[test]
    fn builder_requires_agents_and_responder() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
        let initial = DraDocument::new_initial_with_pid(
            &fig9a(),
            &SecurityPolicy::public(),
            &creds[0],
            "cfg",
        )
        .unwrap();
        assert!(matches!(InstanceRun::new(&sys, &initial).run(), Err(WfError::Config(_))));
        let ags = agents(&creds, &dir);
        assert!(matches!(
            InstanceRun::new(&sys, &initial).agents(&ags).run(),
            Err(WfError::Config(_))
        ));
    }

    #[test]
    fn aea_crash_recovered_by_lease_takeover() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let plan = crate::crash::CrashPlan::once(crate::crash::CrashPoint::AeaBeforeSign, 3);
        let network = Arc::new(NetworkSim::lan());
        let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
            .with_crash_plan(Arc::clone(&plan));
        let initial = DraDocument::new_initial_with_pid(
            &fig9a(),
            &SecurityPolicy::public(),
            &creds[0],
            "crash-run",
        )
        .unwrap();
        // every AEA shares the crash schedule; exactly one dies, once
        let ags: HashMap<String, Arc<Aea>> = creds
            .iter()
            .map(|c| {
                let aea = Aea::new(c.clone(), dir.clone()).with_crash_hook(plan.hook());
                (c.name.clone(), Arc::new(aea))
            })
            .collect();
        let responder = fig9a_responder();
        let t0 = network.virtual_time_us();
        let out = InstanceRun::new(&sys, &initial)
            .agents(&ags)
            .respond(&responder)
            .max_steps(100)
            .run()
            .unwrap();
        assert_eq!(out.steps, 9, "the run completes despite the crash");
        let stats = out.delivery.expect("crash accounting surfaces stats");
        assert_eq!(stats.crashes_injected, 1);
        assert_eq!(stats.leases_expired, 1);
        assert!(
            network.virtual_time_us() - t0 >= SupervisorPolicy::default().lease_us,
            "the takeover waited out the lease"
        );
        // no version lost, none duplicated
        assert_eq!(sys.pool.scan_prefix("doc/crash-run/").len(), 10);
        Verifier::new(&dir).run(&out.document).unwrap();
    }

    #[test]
    fn fig9a_completes_over_a_lossy_channel() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let network = Arc::new(NetworkSim::lan());
        let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network));
        let initial = DraDocument::new_initial_with_pid(
            &fig9a(),
            &SecurityPolicy::public(),
            &creds[0],
            "faulty-run",
        )
        .unwrap();
        let delivery = Delivery::new(
            Arc::clone(&network),
            FaultProfile::lossy(0.2),
            crate::delivery::DeliveryPolicy::default(),
            7,
        )
        .unwrap();
        let responder = fig9a_responder();
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents(&creds, &dir))
            .respond(&responder)
            .max_steps(100)
            .network(&delivery)
            .run()
            .unwrap();
        assert_eq!(out.steps, 9);
        let stats = out.delivery.expect("delivery stats requested");
        assert_eq!(stats.sends, 10, "initial + 9 stores");
        assert!(stats.attempts >= stats.sends);
        // the pool holds exactly the 10 versions despite duplicated copies
        assert_eq!(sys.pool.scan_prefix("doc/faulty-run/").len(), 10);
        // the final document still verifies end to end
        Verifier::new(&dir).run(&out.document).unwrap();
    }

    #[test]
    fn runaway_loop_bounded() {
        let creds = people();
        let dir = Directory::from_credentials(&creds);
        let sys = CloudSystem::new(dir.clone(), 1, Arc::new(NetworkSim::lan()));
        let def = fig9a();
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public(),
            &creds[0],
            "loop-forever",
        )
        .unwrap();
        // C always rejects → infinite loop → bounded by max_steps
        let always_reject = |received: &ReceivedActivity| match received.activity.as_str() {
            "A" => vec![("attachment".into(), "f".into())],
            "B1" => vec![("review1".into(), "r".into())],
            "B2" => vec![("review2".into(), "r".into())],
            "C" => vec![("decision".into(), "insufficient".into())],
            "D" => vec![("ack".into(), "d".into())],
            _ => vec![],
        };
        assert!(matches!(
            InstanceRun::new(&sys, &initial)
                .agents(&agents(&creds, &dir))
                .respond(&always_reject)
                .max_steps(20)
                .run(),
            Err(WfError::Flow(_))
        ));
    }
}
