//! An LRU cache of [`TrustMark`]s keyed by document wire digest.
//!
//! Portals are stateless in the paper's sense — all durable state lives in
//! the document pool — but nothing stops a portal from remembering *which
//! documents it already verified*. The cache maps the SHA-256 of a
//! document's wire bytes to the trust mark its verification produced. When
//! the same bytes come back (a re-store, a retrieve-then-store round trip,
//! a monitoring read), the mark turns the full O(n) signature pass into an
//! O(1) digest comparison; when a successor version comes back, the mark
//! handed to [`dra4wfms_core::verify::Verifier::with_mark`] limits the work
//! to the newly appended CERs.
//!
//! Losing the cache (restart, eviction) costs performance, never safety:
//! a miss simply falls back to full verification.

use dra4wfms_core::sealed::TrustMark;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SHA-256 of a document's wire bytes — the cache key.
pub type WireDigest = [u8; 32];

/// A bounded least-recently-used map `wire digest → trust mark`.
pub struct TrustCache {
    capacity: usize,
    inner: Mutex<Lru>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

struct Lru {
    map: HashMap<WireDigest, TrustMark>,
    /// Recency order, least-recent first. Entries are unique.
    order: VecDeque<WireDigest>,
}

impl TrustCache {
    /// Create a cache holding at most `capacity` marks (minimum 1).
    pub fn new(capacity: usize) -> TrustCache {
        TrustCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Lru { map: HashMap::new(), order: VecDeque::new() }),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Look up the mark for a wire digest, refreshing its recency.
    pub fn get(&self, digest: &WireDigest) -> Option<TrustMark> {
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let hit = lru.map.get(digest).cloned();
        match hit {
            Some(mark) => {
                lru.touch(digest);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(mark)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a mark, evicting the least-recently-used entry
    /// when full.
    pub fn put(&self, digest: WireDigest, mark: TrustMark) {
        let mut lru = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if lru.map.insert(digest, mark).is_some() {
            lru.touch(&digest);
            return;
        }
        lru.order.push_back(digest);
        if lru.map.len() > self.capacity {
            if let Some(evicted) = lru.order.pop_front() {
                lru.map.remove(&evicted);
            }
        }
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a mark.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Lru {
    fn touch(&mut self, digest: &WireDigest) {
        if let Some(pos) = self.order.iter().position(|d| d == digest) {
            self.order.remove(pos);
            self.order.push_back(*digest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(n: usize) -> TrustMark {
        TrustMark {
            process_id: format!("p{n}"),
            verified_cers: n,
            prefix_digest: [n as u8; 32],
            signatures_verified: n,
        }
    }

    #[test]
    fn get_put_roundtrip() {
        let cache = TrustCache::new(4);
        assert!(cache.get(&[1; 32]).is_none());
        cache.put([1; 32], mark(1));
        assert_eq!(cache.get(&[1; 32]).unwrap().verified_cers, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = TrustCache::new(2);
        cache.put([1; 32], mark(1));
        cache.put([2; 32], mark(2));
        // touch 1 so 2 becomes the eviction candidate
        assert!(cache.get(&[1; 32]).is_some());
        cache.put([3; 32], mark(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&[2; 32]).is_none(), "LRU entry evicted");
        assert!(cache.get(&[1; 32]).is_some());
        assert!(cache.get(&[3; 32]).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = TrustCache::new(2);
        cache.put([1; 32], mark(1));
        cache.put([1; 32], mark(9));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&[1; 32]).unwrap().verified_cers, 9);
    }
}
