//! # dra-cloud — DRA4WfMS in the cloud (paper §3, Fig. 7)
//!
//! "A user connects to one of the portal servers to access the DRA4WfMS
//! cloud system … the portal server just simply sends a copy of the
//! DRA4WfMS document to the user. The user employs an AEA to execute the
//! activity … and then sends it back to the portal server. When an AEA sends
//! the resulting document to the portal server, the portal server verifies
//! it and … stores it in the pool of DRA4WfMS documents. By checking this
//! document, the DRA4WfMS cloud system can inform the subsequent
//! participant(s)."
//!
//! * [`netsim`] — a simulated network that accounts for message count and
//!   bytes so routing costs can be compared analytically (virtual time),
//! * [`faults`] — a seeded, deterministic lossy channel over the simulated
//!   network: drop / duplicate / reorder / delay / bit-corrupt per
//!   configurable [`FaultProfile`],
//! * [`crash`] — seeded crash-fault schedules ([`CrashPlan`]) that kill an
//!   AEA, the TFC or a portal at named injection points; recovery is
//!   journal replay + lease-based hop takeover, and the recovered run's
//!   pool is byte-identical to the crash-free one,
//! * [`delivery`] — retry with exponential backoff + jitter in virtual
//!   time, bounded redelivery, and per-run [`DeliveryStats`]: runs complete
//!   *through* the faulty channel, and a fault can cost time but never
//!   safety,
//! * [`portal`] — portal servers over the [`dra_docpool`] pool: store /
//!   retrieve / search (TO-DO lists) / notify / monitor / MapReduce
//!   statistics; idempotent by wire digest, so duplicated copies never grow
//!   the pool,
//! * [`runner`] — an end-to-end scenario driver ([`InstanceRun`]) that
//!   pushes whole process instances through AEAs, the TFC and the portals
//!   (including AND-split branching and AND-join merging), optionally over
//!   a fault-injecting delivery channel,
//! * [`monitor`] — an online [`HealthMonitor`] sink over the live span
//!   stream: typed deterministic alerts (stuck instance, retry storm,
//!   crash loop, SLO breach) in virtual time, fed back into the runner so
//!   the supervisor can act on observation instead of only lease expiry,
//! * [`sched`] — the event-driven execution core: portal admissions emit
//!   typed [`Activation`]s onto a deployment-wide [`ActivationBus`], and a
//!   [`Scheduler`] drains them in deterministic virtual-time order to
//!   dispatch hops — so `notify` wakes the next participant at O(1), and
//!   whole fleets of instances interleave over shared portals, delivery,
//!   leases and the monitor ([`InstanceRun`] is a single-instance facade
//!   over it),
//! * [`federation`] — multi-cloud deployments: a [`Topology`] groups
//!   portals into named clouds with replicated pools/journals, and a
//!   [`FederationController`] consumes [`HealthMonitor`] alerts (including
//!   the typed `portal_tampered` integrity alert) to quarantine portals
//!   and fail admissions over to a healthy cloud — a bad cloud costs time,
//!   never safety,
//! * [`audit`] — a continuous nonrepudiation auditor: a [`PoolAuditor`]
//!   samples stored rows through the scan API in virtual time, spot-checks
//!   them with the batched verifier, and raises a typed `audit_divergence`
//!   alert the federation pump turns into quarantine — forged rows are
//!   caught even when nobody ever serves them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod crash;
pub mod delivery;
pub mod faults;
pub mod federation;
pub mod monitor;
pub mod netsim;
pub mod obs;
pub mod portal;
pub mod runner;
pub mod sched;
pub mod trustcache;

pub use audit::{AuditConfig, PoolAuditor};
pub use crash::{CrashPlan, CrashPoint};
pub use delivery::{Delivery, DeliveryPolicy, DeliveryStats};
pub use faults::{FaultCounts, FaultProfile, FaultyNetwork};
pub use federation::{
    CloudSpec, FederationController, FederationPolicy, FederationStats, OutagePlan, TamperPlan,
    Topology,
};
pub use monitor::{alerts_to_jsonl, Alert, AlertKind, HealthMonitor, MonitorConfig};
pub use netsim::NetworkSim;
pub use obs::{check_metric_invariants, tracer_for};
pub use portal::{CloudSystem, PortalStats, StoreAck, TodoEntry};
pub use runner::{InstanceRun, Responder, RunOutcome, SupervisorPolicy};
pub use sched::{Activation, ActivationBus, SchedStats, Scheduler};
pub use trustcache::TrustCache;
