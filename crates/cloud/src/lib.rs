//! # dra-cloud — DRA4WfMS in the cloud (paper §3, Fig. 7)
//!
//! "A user connects to one of the portal servers to access the DRA4WfMS
//! cloud system … the portal server just simply sends a copy of the
//! DRA4WfMS document to the user. The user employs an AEA to execute the
//! activity … and then sends it back to the portal server. When an AEA sends
//! the resulting document to the portal server, the portal server verifies
//! it and … stores it in the pool of DRA4WfMS documents. By checking this
//! document, the DRA4WfMS cloud system can inform the subsequent
//! participant(s)."
//!
//! * [`netsim`] — a simulated network that accounts for message count and
//!   bytes so routing costs can be compared analytically (virtual time),
//! * [`portal`] — portal servers over the [`dra_docpool`] pool: store /
//!   retrieve / search (TO-DO lists) / notify / monitor / MapReduce
//!   statistics,
//! * [`runner`] — an end-to-end scenario driver that pushes whole process
//!   instances through AEAs, the TFC and the portals (including AND-split
//!   branching and AND-join merging).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netsim;
pub mod portal;
pub mod runner;
pub mod trustcache;

pub use netsim::NetworkSim;
pub use portal::{CloudSystem, PortalStats, TodoEntry};
pub use runner::{run_instance, Responder, RunOutcome};
pub use trustcache::TrustCache;
