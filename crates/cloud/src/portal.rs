//! Portal servers and the DRA4WfMS cloud system (§3, §4.2).
//!
//! Portals are stateless front doors: they authenticate users, verify
//! incoming documents, store them in the pool, maintain TO-DO indexes and
//! notify subsequent participants. All persistent state lives in the
//! document pool — which is why any number of portals can serve the same
//! deployment (the scalability story of the paper).

use crate::crash::{CrashPlan, CrashPoint};
use crate::federation::{
    tamper_bytes, FedReplica, Federation, FederationController, FederationPolicy, Topology,
};
use crate::netsim::NetworkSim;
use crate::sched::{Activation, ActivationBus};
use crate::trustcache::TrustCache;
use dra4wfms_core::monitor::ProcessStatus;
use dra4wfms_core::prelude::*;
use dra_docpool::{map_reduce_scan, FleetViews, HTable, Journal, PutOp, Scan, TableConfig};
use dra_obs::{stage, MetricsRegistry, Tracer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Column family / qualifier layout of the pool.
pub(crate) const FAM_DOC: &str = "doc";
pub(crate) const QUAL_XML: &str = "xml";
pub(crate) const FAM_META: &str = "meta";

/// A portal's acknowledgement of a store request.
///
/// Idempotency receipt: when the same wire bytes are presented twice (a
/// duplicated or retransmitted copy on a faulty network), the portal
/// recognises them by digest and returns the original sequence number with
/// `duplicate = true` instead of growing the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreAck {
    /// Sequence number the document is stored under.
    pub seq: usize,
    /// `true` when these exact bytes were already stored and the request
    /// was suppressed rather than re-executed.
    pub duplicate: bool,
}

/// A pending work item for a participant (the TO-DO list of §4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TodoEntry {
    /// Process instance id.
    pub process_id: String,
    /// The activity awaiting execution.
    pub activity: String,
}

/// Counters of one portal server.
#[derive(Debug, Default)]
pub struct PortalStats {
    /// Documents stored through this portal.
    pub stored: AtomicUsize,
    /// Documents served to users.
    pub retrieved: AtomicUsize,
    /// Verification passes performed (full or incremental).
    pub verifications: AtomicUsize,
    /// Individual signature checks executed across those passes — the cost
    /// the trust cache exists to shrink.
    pub signature_checks: AtomicUsize,
    /// Verification passes that reused a verified prefix instead of
    /// re-checking every CER.
    pub incremental_verifications: AtomicUsize,
    /// Store requests recognised by wire digest as already stored and
    /// suppressed (duplicate copies on a faulty network).
    pub duplicates_suppressed: AtomicUsize,
    /// TO-DO notifications published as typed [`Activation`]s: one per
    /// routed target on admission, plus replay re-emissions and duplicate
    /// re-notifications. Must equal the bus's emission count
    /// (`sched.activations == portal.notifications`).
    pub notifications: AtomicUsize,
}

/// The DRA4WfMS cloud system: a pool of documents behind `n` portal servers.
pub struct CloudSystem {
    /// The pool of DRA4WfMS documents (HBase in the paper).
    pub pool: Arc<HTable>,
    /// Deployment PKI.
    pub directory: Directory,
    /// Per-portal statistics, index = portal id.
    pub portals: Vec<PortalStats>,
    /// Simulated network accounting for user↔portal transfers.
    pub network: Arc<NetworkSim>,
    /// LRU cache `wire digest → trust mark` shared by the portals: a
    /// document whose exact bytes (or byte-identical prefix) were already
    /// verified here is not re-verified from scratch.
    pub trust_cache: TrustCache,
    /// Write-ahead journal shared by the portals: every admission appends
    /// its full put batch before touching the pool, so a portal crash
    /// between two rows is repaired by [`CloudSystem::recover_portals`].
    pub journal: Arc<Journal>,
    /// Typed notification bus: every TO-DO row written by admission (or
    /// repaired by journal replay) also publishes an [`Activation`] here,
    /// which a [`crate::sched::Scheduler`] drains to dispatch the next hop
    /// — `notify` as an O(1) wake-up instead of an inert index row.
    bus: Arc<ActivationBus>,
    /// The crash schedule portals consult mid-admission.
    crash_plan: Arc<CrashPlan>,
    /// Digests of canonical definition XML already proven sound, shared by
    /// the portals: the reachability analysis runs once per *definition*,
    /// not once per admitted document version.
    sound_defs: std::sync::Mutex<std::collections::BTreeSet<[u8; 32]>>,
    /// Span recorder for portal admissions; disabled (free) unless
    /// [`CloudSystem::with_tracer`] is used.
    tracer: Tracer,
    /// Multi-cloud half, present only on deployments built with
    /// [`CloudSystem::federated`]: one storage replica per member cloud
    /// plus the controller that owns quarantine/failover state. When
    /// absent (`CloudSystem::new`), every path below behaves exactly as a
    /// single-cloud deployment — `pool`/`journal` above then *are* the
    /// deployment.
    federation: Option<Federation>,
    /// Incrementally maintained fleet views, fed by the journal-commit and
    /// activation-bus hooks below. Dashboards read these in O(view size);
    /// the differential check [`CloudSystem::views_match_scan`] proves them
    /// equivalent to a fresh scan recompute.
    views: Arc<FleetViews>,
}

impl CloudSystem {
    /// Create a deployment with `portals` portal servers.
    pub fn new(directory: Directory, portals: usize, network: Arc<NetworkSim>) -> CloudSystem {
        CloudSystem {
            pool: Arc::new(HTable::new(TableConfig { max_versions: 4, max_region_rows: 1024 })),
            directory,
            portals: (0..portals.max(1)).map(|_| PortalStats::default()).collect(),
            network,
            trust_cache: TrustCache::new(256),
            journal: Arc::new(Journal::new()),
            bus: Arc::new(ActivationBus::new()),
            crash_plan: CrashPlan::none(),
            sound_defs: Default::default(),
            tracer: Tracer::disabled(),
            federation: None,
            views: Arc::new(FleetViews::new()),
        }
    }

    /// Create a **federated** deployment from a [`Topology`]: one pool +
    /// write-ahead journal per named cloud, portal indices spread across
    /// the clouds in declaration order, default [`FederationPolicy`]
    /// thresholds. Cloud 0 starts active; its pool/journal double as the
    /// system's `pool`/`journal` fields for single-cloud-shaped callers.
    pub fn federated(
        directory: Directory,
        topology: Topology,
        network: Arc<NetworkSim>,
    ) -> WfResult<CloudSystem> {
        Self::federated_with(directory, topology, FederationPolicy::default(), network)
    }

    /// [`CloudSystem::federated`] with explicit controller thresholds.
    pub fn federated_with(
        directory: Directory,
        topology: Topology,
        policy: FederationPolicy,
        network: Arc<NetworkSim>,
    ) -> WfResult<CloudSystem> {
        topology.validate()?;
        let replicas: Vec<FedReplica> = topology
            .clouds
            .iter()
            .map(|c| FedReplica {
                name: c.name.clone(),
                pool: Arc::new(HTable::new(TableConfig { max_versions: 4, max_region_rows: 1024 })),
                journal: Arc::new(Journal::new()),
            })
            .collect();
        let total = topology.total_portals();
        let controller = Arc::new(FederationController::new(topology, policy));
        Ok(CloudSystem {
            pool: Arc::clone(&replicas[0].pool),
            directory,
            portals: (0..total).map(|_| PortalStats::default()).collect(),
            network,
            trust_cache: TrustCache::new(256),
            journal: Arc::clone(&replicas[0].journal),
            bus: Arc::new(ActivationBus::new()),
            crash_plan: CrashPlan::none(),
            sound_defs: Default::default(),
            tracer: Tracer::disabled(),
            federation: Some(Federation { controller, replicas }),
            views: Arc::new(FleetViews::new()),
        })
    }

    /// The federation's control plane, when this deployment is federated.
    pub fn federation_controller(&self) -> Option<&Arc<FederationController>> {
        self.federation.as_ref().map(|f| &f.controller)
    }

    /// Give the federation controller a chance to consume fresh health
    /// alerts (retry storms quarantine their portal at the policy
    /// threshold). No-op on single-cloud deployments; the scheduler calls
    /// this between dispatches.
    pub fn federation_poll(&self) {
        if let Some(fed) = &self.federation {
            fed.controller.pump();
        }
    }

    /// Remap a requested portal to an eligible one — skip quarantined
    /// portals and down clouds — without counters or errors (the admission
    /// itself re-resolves authoritatively). Identity on single-cloud
    /// deployments, so the legacy/scheduler parity goldens are untouched.
    pub fn route_portal(&self, requested: usize) -> usize {
        match &self.federation {
            Some(fed) => fed.controller.route(requested),
            None => requested,
        }
    }

    /// The pool serving reads right now: the active cloud's replica on a
    /// federated deployment, `self.pool` otherwise.
    pub fn active_pool(&self) -> &Arc<HTable> {
        self.active_store().0
    }

    /// The active cloud's (pool, journal) — the primary an admission
    /// journals/commits on before replicating to peers.
    fn active_store(&self) -> (&Arc<HTable>, &Arc<Journal>) {
        match &self.federation {
            Some(fed) => {
                let active = fed.controller.active_cloud();
                (&fed.replicas[active].pool, &fed.replicas[active].journal)
            }
            None => (&self.pool, &self.journal),
        }
    }

    /// The deployment's activation bus (portals publish, schedulers drain).
    pub fn activation_bus(&self) -> &Arc<ActivationBus> {
        &self.bus
    }

    /// Deterministic portal choice for `(process_id, step)`: an inline
    /// FNV-1a hash — deliberately not the std hasher, whose random seed
    /// would break byte-determinism — so a fleet of instances spreads
    /// across every portal instead of melting portal 0 with its initial
    /// documents and round-robining hops in lock-step.
    pub fn portal_for(&self, process_id: &str, step: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in process_id.as_bytes().iter().chain((step as u64).to_le_bytes().iter()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.portals.len() as u64) as usize
    }

    /// Publish one TO-DO notification on the bus, counting it against
    /// portal `portal_idx` so `portal.notifications` and the bus's
    /// emission counter move in lock-step.
    fn notify(
        &self,
        portal_idx: usize,
        participant: &str,
        process_id: &str,
        activity: &str,
        seq: usize,
    ) {
        self.portals[portal_idx % self.portals.len()].notifications.fetch_add(1, Ordering::Relaxed);
        // activation-bus hook: the notification view moves with the counter
        self.views.record_notification((portal_idx % self.portals.len()) as u64);
        self.bus.emit(Activation {
            participant: participant.to_string(),
            process_id: process_id.to_string(),
            activity: activity.to_string(),
            seq,
            at_us: self.network.virtual_time_us(),
        });
    }

    /// Arm a crash schedule: portals will consult `plan` at their injection
    /// point during admission.
    pub fn with_crash_plan(mut self, plan: Arc<CrashPlan>) -> CloudSystem {
        self.crash_plan = plan;
        self
    }

    /// Record `portal:admit` spans (and the journal's commit/replay spans)
    /// into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> CloudSystem {
        self.journal.set_tracer(tracer.clone());
        if let Some(fed) = &self.federation {
            // replica journals share the primary's tracer (replicas[0] is
            // self.journal, already set — set_tracer is idempotent)
            for replica in &fed.replicas {
                replica.journal.set_tracer(tracer.clone());
            }
        }
        self.tracer = tracer;
        self
    }

    /// Fold the deployment's counters — portal stats, trust-cache hit/miss,
    /// journal replays — into one [`MetricsRegistry`] under stable names.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        let sum = |f: fn(&PortalStats) -> &AtomicUsize| -> u64 {
            self.portals.iter().map(|p| f(p).load(Ordering::Relaxed) as u64).sum()
        };
        metrics.set_counter("portal.stored", sum(|p| &p.stored));
        metrics.set_counter("portal.retrieved", sum(|p| &p.retrieved));
        metrics.set_counter("portal.verifications", sum(|p| &p.verifications));
        metrics.set_counter("portal.signature_checks", sum(|p| &p.signature_checks));
        metrics
            .set_counter("portal.incremental_verifications", sum(|p| &p.incremental_verifications));
        metrics.set_counter("portal.duplicates_suppressed", sum(|p| &p.duplicates_suppressed));
        metrics.set_counter("portal.notifications", sum(|p| &p.notifications));
        metrics.set_counter("sched.activations", self.bus.emitted());
        metrics.set_gauge("sched.bus_depth", self.bus.len() as i64);
        metrics.set_counter("trust_cache.hits", self.trust_cache.hits() as u64);
        metrics.set_counter("trust_cache.misses", self.trust_cache.misses() as u64);
        match &self.federation {
            None => {
                metrics.set_counter("journal.records", self.journal.len() as u64);
                metrics.set_counter("journal.replayed_records", self.journal.replayed_records());
            }
            Some(fed) => {
                // journals exist per cloud: export deployment-wide sums
                let records: u64 = fed.replicas.iter().map(|r| r.journal.len() as u64).sum();
                let replayed: u64 = fed.replicas.iter().map(|r| r.journal.replayed_records()).sum();
                metrics.set_counter("journal.records", records);
                metrics.set_counter("journal.replayed_records", replayed);
                let stats = fed.controller.stats();
                metrics.set_counter("federation.replicas_acked", stats.replicas_acked);
                metrics.set_counter("federation.quarantines", stats.quarantines);
                metrics.set_counter("federation.failovers", stats.failovers);
                metrics.set_counter("federation.outages", stats.outages);
                metrics.set_counter("federation.reroutes", stats.reroutes);
                metrics.set_counter("federation.tampered_serves", stats.tampered_serves);
                metrics.set_gauge("federation.active_cloud", stats.active_cloud as i64);
                metrics.set_gauge("federation.clouds", fed.replicas.len() as i64);
            }
        }
        // pool inventory and scan-API accounting: how many rows the
        // deployment holds vs how many monitoring queries actually touched
        let (rows, scanned_rows, scanned_regions) = match &self.federation {
            None => {
                let (sr, sg) = self.pool.scan_counters();
                (self.pool.row_count(), sr, sg)
            }
            Some(fed) => fed.replicas.iter().fold((0, 0, 0), |(rows, sr, sg), r| {
                let (a, b) = r.pool.scan_counters();
                (rows + r.pool.row_count(), sr + a, sg + b)
            }),
        };
        metrics.set_counter("pool.rows", rows as u64);
        metrics.set_counter("pool.scanned_rows", scanned_rows as u64);
        metrics.set_counter("pool.scanned_regions", scanned_regions as u64);
        metrics.set_gauge("trust_cache.entries", self.trust_cache.len() as i64);
    }

    /// Portal restart: replay every journaled-but-uncommitted admission
    /// batch into the pool, re-emitting an [`Activation`] for every
    /// repaired TO-DO row (the dying portal crashed before it could
    /// notify). Returns how many records were replayed (0 when no portal
    /// died mid-admission).
    pub fn recover_portals(&self) -> usize {
        let observer = |op: &PutOp| {
            // journal-replay hook: recovery feeds the views through the same
            // per-op parser live admissions use, so a torn admission leaves
            // the views exactly as consistent as the pool it repaired
            self.apply_op_to_views(op);
            let Some(rest) = op.key.strip_prefix("todo/") else { return };
            let Some((participant, rest)) = rest.split_once('/') else { return };
            let Some((pid, activity)) = rest.rsplit_once('/') else { return };
            let seq = std::str::from_utf8(&op.value)
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(0);
            self.notify(0, participant, pid, activity, seq);
        };
        match &self.federation {
            None => {
                let replayed = self.journal.replay_into_with(&self.pool, observer);
                self.views.record_commit("cloud0", self.journal.len() as u64);
                replayed
            }
            // every cloud replays its own journal into its own pool: a
            // replica torn between journal-append and commit is repaired
            // exactly like a torn primary. Re-emitted activations that turn
            // out to be duplicates are skipped harmlessly by the scheduler.
            Some(fed) => fed
                .replicas
                .iter()
                .map(|r| {
                    let replayed = r.journal.replay_into_with(&r.pool, observer);
                    self.views.record_commit(&r.name, r.journal.len() as u64);
                    replayed
                })
                .sum(),
        }
    }

    /// Total journal records replayed by portal recoveries so far (summed
    /// across clouds on a federated deployment).
    pub fn journal_replays(&self) -> u64 {
        match &self.federation {
            None => self.journal.replayed_records(),
            Some(fed) => fed.replicas.iter().map(|r| r.journal.replayed_records()).sum(),
        }
    }

    /// Look up the sequence number some exact wire bytes were stored under
    /// (via the same digest row duplicate suppression uses). `None` when
    /// these bytes never completed admission.
    pub fn stored_seq_for(&self, wire: &str) -> Option<usize> {
        let digest = dra_crypto::sha256(wire.as_bytes());
        self.active_pool()
            .get_str(&Self::seen_key(&digest), FAM_META, "seq")
            .and_then(|s| s.parse().ok())
    }

    fn doc_key(process_id: &str, seq: usize) -> String {
        format!("doc/{process_id}/{seq:06}")
    }

    fn todo_key(participant: &str, process_id: &str, activity: &str) -> String {
        format!("todo/{participant}/{process_id}/{activity}")
    }

    fn meta_key(process_id: &str) -> String {
        format!("meta/{process_id}")
    }

    fn seen_key(digest: &[u8; 32]) -> String {
        format!("seen/{}", dra_crypto::hex::encode(digest))
    }

    /// Store a verified document through portal `portal`, then notify the
    /// participants of `route`'s target activities (steps 4–6 of Fig. 7).
    ///
    /// Returns the sequence number the document was stored under.
    pub fn store_document(&self, portal: usize, xml: &str, route: &Route) -> WfResult<usize> {
        self.store_sealed(portal, &SealedDocument::from_wire(xml)?, route)
    }

    /// Sealed-form variant of [`CloudSystem::store_document`] — the
    /// zero-copy fast path. The received wire bytes are stored as-is (no
    /// re-serialization), and verification is incremental whenever the
    /// document carries a [`TrustMark`] or the portal's trust cache
    /// remembers these exact bytes.
    ///
    /// Idempotent: re-presenting bytes already stored returns the original
    /// sequence number without growing the pool.
    pub fn store_sealed(
        &self,
        portal: usize,
        sealed: &SealedDocument,
        route: &Route,
    ) -> WfResult<usize> {
        self.network.transfer(sealed.size_bytes());
        Ok(self.admit(portal, sealed, route)?.seq)
    }

    /// Ingest wire bytes as they arrived off the network, **without**
    /// charging the network simulation — the delivery layer already charged
    /// every physical copy it put on the channel, including dropped and
    /// duplicated ones ([`crate::faults::FaultyNetwork::send`]).
    ///
    /// `trust` is the mark the *sender* holds for the bytes it transmitted.
    /// Attaching it to whatever arrived is safe because the mark pins a
    /// prefix digest: a corrupted copy no longer digest-matches, so
    /// verification falls back to the full signature pass and rejects it —
    /// corrupted bytes can never ride the original's trust into the pool.
    pub fn ingest_wire(
        &self,
        portal: usize,
        wire: &str,
        route: &Route,
        trust: Option<&TrustMark>,
    ) -> WfResult<StoreAck> {
        let mut sealed = SealedDocument::from_wire(wire)?;
        if let Some(mark) = trust {
            sealed.set_trust(mark.clone());
        }
        self.admit(portal, &sealed, route)
    }

    /// The portal's admission pipeline: duplicate suppression by wire
    /// digest, verification (incremental when trusted), storage, TO-DO
    /// notification. Shared by the direct path ([`CloudSystem::store_sealed`],
    /// which also charges the network) and the delivery path
    /// ([`CloudSystem::ingest_wire`], which does not).
    fn admit(&self, portal: usize, sealed: &SealedDocument, route: &Route) -> WfResult<StoreAck> {
        // On a federated deployment the controller owns the final portal
        // choice: it runs the outage dance for the target cloud (touches of
        // an unconfirmed-dead cloud surface as retriable crashes), then
        // re-routes past quarantined portals and down clouds. Single-cloud:
        // plain modulo, as ever.
        let portal_idx = match &self.federation {
            Some(fed) => {
                fed.controller.resolve_admission(portal, self.network.virtual_time_us())?
            }
            None => portal % self.portals.len(),
        };
        let (pool, journal) = self.active_store();
        let stats = &self.portals[portal_idx];
        let mut span = self.tracer.span(stage::PORTAL_ADMIT).actor(&format!("portal:{portal_idx}"));
        if span.enabled() {
            if let Ok(pid) = sealed.document().process_id() {
                span.set_process(&pid);
            }
        }
        let wire = sealed.wire();
        let digest = dra_crypto::sha256(wire.as_bytes());

        // idempotency: bytes we have already stored are acked, not
        // re-stored — a duplicated or retransmitted copy costs nothing but
        // the transfer. Keyed by the same digest the trust cache uses.
        if let Some(seq) = pool
            .get_str(&Self::seen_key(&digest), FAM_META, "seq")
            .and_then(|s| s.parse::<usize>().ok())
        {
            stats.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
            // re-notify: the retransmitted copy proves the sender believes
            // the hand-off is still pending. For every routed target whose
            // TO-DO row is still unconsumed, publish a fresh activation —
            // a duplicate wake-up is skipped harmlessly by the scheduler,
            // a lost one would strand the instance.
            let (def, _) = dra4wfms_core::amendment::effective_definition(sealed)?;
            if let Ok(pid) = sealed.document().process_id() {
                for target in &route.targets {
                    let Ok(act) = def.activity(target) else { continue };
                    let participant = act.participant.clone();
                    if pool
                        .get_str(&Self::todo_key(&participant, &pid, target), FAM_META, "seq")
                        .is_some()
                    {
                        self.notify(portal_idx, &participant, &pid, target, seq);
                    }
                }
            }
            span.attr("seq", seq);
            span.attr("duplicate", true);
            span.end();
            return Ok(StoreAck { seq, duplicate: true });
        }

        // the portal verifies before storing — a malformed or tampered
        // document never enters the pool. A trust mark only ever *narrows*
        // the work: its prefix digest must match byte-identically, and any
        // mismatch falls back to the full signature pass.
        let mark = match sealed.trust() {
            Some(m) => Some(m.clone()),
            None => self.trust_cache.get(&digest),
        };
        let outcome = Verifier::new(&self.directory).with_mark(mark.as_ref()).run(sealed)?;
        stats.verifications.fetch_add(1, Ordering::Relaxed);
        stats.signature_checks.fetch_add(outcome.report.signatures_verified, Ordering::Relaxed);
        if outcome.reused_cers > 0 {
            stats.incremental_verifications.fetch_add(1, Ordering::Relaxed);
        }
        self.trust_cache.put(digest, outcome.mark.expect("incremental mode issues a mark"));
        let report = outcome.report;

        let pid = report.process_id.clone();
        // storage sequence = number of versions already stored for this
        // process (parallel AND-split branches have equal CER counts, so the
        // CER count alone would collide); counted without cloning snapshots
        let seq = pool.query_count(&Scan::prefix(&format!("doc/{pid}/")));
        let (def, _) = dra4wfms_core::amendment::effective_definition(sealed)?;
        // design-time soundness gate: a definition that can deadlock, starve
        // an activity or orphan a join is rejected *here*, before any row is
        // written — the designer gets the diagnostic while the fix is still
        // a document edit, not a stranded instance. Amendments re-enter the
        // gate because the folded definition's canonical bytes change.
        let def_digest = dra_crypto::sha256(&dra_xml::canon::canonicalize(&def.to_xml()));
        let known_sound =
            self.sound_defs.lock().unwrap_or_else(|e| e.into_inner()).contains(&def_digest);
        if !known_sound {
            dra4wfms_core::soundness::require_sound(&def)?;
            self.sound_defs.lock().unwrap_or_else(|e| e.into_inner()).insert(def_digest);
        }
        let status = if route.is_final() { "complete" } else { "running" };

        // Assemble the full admission as one journaled batch: the digest →
        // seq binding for duplicate suppression (a pool row, not portal
        // memory, so it survives snapshot/restore and is shared by every
        // portal), the document row, monitoring meta rows (amendments folded
        // in, so dynamically added activities resolve), and one TO-DO entry
        // per routed target's participant.
        let mut ops = vec![
            PutOp::new(Self::seen_key(&digest), FAM_META, "seq", seq.to_string()),
            PutOp::new(Self::doc_key(&pid, seq), FAM_DOC, QUAL_XML, wire.as_ref().clone()),
            PutOp::new(Self::meta_key(&pid), FAM_META, "status", status),
            PutOp::new(Self::meta_key(&pid), FAM_META, "steps", report.cers.len().to_string()),
            PutOp::new(Self::meta_key(&pid), FAM_META, "workflow", def.name.clone()),
        ];
        let mut notified: Vec<(String, String)> = Vec::with_capacity(route.targets.len());
        for target in &route.targets {
            let participant = def.activity(target)?.participant.clone();
            ops.push(PutOp::new(
                Self::todo_key(&participant, &pid, target),
                FAM_META,
                "seq",
                seq.to_string(),
            ));
            notified.push((participant, target.clone()));
        }

        // WAL discipline: log the intent, apply, commit. The seen row goes
        // first — the worst-case crash window is then "pool claims stored,
        // document row missing", exactly what replay repairs.
        let record = journal.append(ops.clone());
        ops[0].apply(pool);
        self.crash_plan.check(CrashPoint::PortalBetweenSeenAndStore)?;
        for op in &ops[1..] {
            op.apply(pool);
        }
        journal.commit_through(record);
        // journal-commit hook: the admission is durable — fold its ops into
        // the fleet views through the same parser crash replay uses, and
        // advance the active cloud's commit watermark
        for op in &ops {
            self.apply_op_to_views(op);
        }
        self.views.record_admission(portal_idx as u64);
        self.views.record_commit(&self.active_cloud_name(), journal.len() as u64);
        // Replication: the admission is durable on the active cloud; now
        // charge and journal-commit the identical batch on every reachable
        // peer cloud before acking. Each replica obeys the same WAL
        // discipline, so a replica torn between append and commit (the
        // `ReplicaBeforeCommit` injection point) is repaired by its own
        // journal's replay in [`CloudSystem::recover_portals`].
        if let Some(fed) = &self.federation {
            for cloud in fed.controller.replica_targets(self.network.virtual_time_us()) {
                let replica = &fed.replicas[cloud];
                self.network.transfer(wire.len());
                let rec = replica.journal.append(ops.clone());
                self.crash_plan.check(CrashPoint::ReplicaBeforeCommit)?;
                for op in &ops {
                    op.apply(&replica.pool);
                }
                replica.journal.commit_through(rec);
                self.views.record_commit(&replica.name, replica.journal.len() as u64);
                fed.controller.ack_replica();
            }
        }
        // notify after commit: an activation must never outrun its TO-DO
        // row. The crash window above never reaches this point — replay
        // re-emits the repaired admission's notifications instead.
        for (participant, target) in &notified {
            self.notify(portal_idx, participant, &pid, target, seq);
        }
        stats.stored.fetch_add(1, Ordering::Relaxed);
        span.attr("seq", seq);
        span.attr("duplicate", false);
        span.attr("signatures", report.signatures_verified);
        span.end();
        Ok(StoreAck { seq, duplicate: false })
    }

    /// Retrieve the latest stored document of a process (step 2 of Fig. 7).
    ///
    /// On a federated deployment the serve is resolved to an eligible
    /// portal and integrity-probed before it leaves: the served bytes'
    /// wire digest must match a `seen/` row of the serving cloud (every
    /// honestly admitted version has one); an unknown digest falls back to
    /// a full signature pass, and a failure raises the typed
    /// `portal_tampered` alert, quarantines the serving portal and
    /// re-serves from the next eligible one.
    pub fn retrieve_latest(&self, portal: usize, process_id: &str) -> Option<String> {
        match &self.federation {
            None => {
                let stats = &self.portals[portal % self.portals.len()];
                let rows =
                    self.pool.query(&Scan::prefix(&format!("doc/{process_id}/")).family(FAM_DOC));
                let xml = rows.rows.last()?.1.get_str(FAM_DOC, QUAL_XML)?;
                self.network.transfer(xml.len());
                stats.retrieved.fetch_add(1, Ordering::Relaxed);
                Some(xml)
            }
            Some(fed) => self.retrieve_latest_federated(fed, portal, process_id),
        }
    }

    fn retrieve_latest_federated(
        &self,
        fed: &Federation,
        portal: usize,
        process_id: &str,
    ) -> Option<String> {
        // bounded by the portal count: every failed probe quarantines its
        // serving portal, so the candidate set strictly shrinks
        for _ in 0..self.portals.len() {
            let serving = fed.controller.resolve_serve(portal)?;
            let cloud = fed.controller.topology().cloud_of(serving);
            let pool = &fed.replicas[cloud].pool;
            let rows = pool.query(&Scan::prefix(&format!("doc/{process_id}/")).family(FAM_DOC));
            let stored = rows.rows.last()?.1.get_str(FAM_DOC, QUAL_XML)?;
            // the tamper injector corrupts the *served copy*, never the pool
            let served =
                if fed.controller.tamper_fires(serving) { tamper_bytes(&stored) } else { stored };
            let digest = dra_crypto::sha256(served.as_bytes());
            let known = pool.get_str(&Self::seen_key(&digest), FAM_META, "seq").is_some()
                || Self::full_verify_serves(&self.directory, &served);
            if !known {
                fed.controller.on_tamper(
                    serving,
                    process_id,
                    &dra_crypto::hex::encode(&digest),
                    self.network.virtual_time_us(),
                );
                continue;
            }
            self.network.transfer(served.len());
            self.portals[serving].retrieved.fetch_add(1, Ordering::Relaxed);
            return Some(served);
        }
        None
    }

    /// Integrity fallback for a serve whose digest has no `seen/` row: the
    /// full signature pass decides. Tampered bytes cannot pass — every
    /// content byte is covered by a signature — so `false` here means the
    /// serving portal is compromised.
    fn full_verify_serves(directory: &Directory, served: &str) -> bool {
        SealedDocument::from_wire(served)
            .and_then(|sealed| Verifier::new(directory).run(&sealed).map(|_| ()))
            .is_ok()
    }

    /// Retrieve the latest stored document in sealed form: the stored bytes
    /// become the seal's serialization and, when the trust cache remembers
    /// verifying these exact bytes, the mark rides along so the receiving
    /// AEA verifies incrementally instead of from scratch.
    pub fn retrieve_latest_sealed(
        &self,
        portal: usize,
        process_id: &str,
    ) -> WfResult<Option<SealedDocument>> {
        let Some(xml) = self.retrieve_latest(portal, process_id) else {
            return Ok(None);
        };
        let mut sealed = SealedDocument::from_wire(&xml)?;
        if let Some(mark) = self.trust_cache.get(&dra_crypto::sha256(xml.as_bytes())) {
            sealed.set_trust(mark);
        }
        Ok(Some(sealed))
    }

    /// Retrieve a specific stored version (from the active cloud's pool).
    pub fn retrieve_version(&self, process_id: &str, seq: usize) -> Option<String> {
        self.active_pool().get_str(&Self::doc_key(process_id, seq), FAM_DOC, QUAL_XML)
    }

    /// The TO-DO list of a participant ("a list of links of DRA4WfMS
    /// documents where s/he is one of the participants of the subsequent
    /// activities", §4.2).
    pub fn search_todo(&self, participant: &str) -> Vec<TodoEntry> {
        let prefix = format!("todo/{participant}/");
        self.active_pool()
            .query(&Scan::prefix(&prefix).family(FAM_META))
            .rows
            .into_iter()
            .filter_map(|(key, _)| {
                let rest = key.strip_prefix(&prefix)?;
                let (pid, activity) = rest.rsplit_once('/')?;
                Some(TodoEntry { process_id: pid.to_string(), activity: activity.to_string() })
            })
            .collect()
    }

    /// Remove a consumed TO-DO entry (after the activity executed). On a
    /// federated deployment the consumption propagates to every replica —
    /// a failover must not resurrect work a participant already finished.
    pub fn consume_todo(&self, participant: &str, process_id: &str, activity: &str) -> bool {
        let key = Self::todo_key(participant, process_id, activity);
        match &self.federation {
            None => self.pool.delete_row(&key),
            Some(fed) => {
                let active = fed.controller.active_cloud();
                let on_active = fed.replicas[active].pool.delete_row(&key);
                for (i, replica) in fed.replicas.iter().enumerate() {
                    if i != active {
                        replica.pool.delete_row(&key);
                    }
                }
                on_active
            }
        }
    }

    /// Monitoring: the status of one process instance, derived from its
    /// latest stored document.
    pub fn process_status(&self, process_id: &str) -> WfResult<Option<ProcessStatus>> {
        let Some(xml) = self.retrieve_version_latest_xml(process_id) else {
            return Ok(None);
        };
        let doc = DraDocument::parse(&xml)?;
        Ok(Some(ProcessStatus::from_document(&doc)?))
    }

    fn retrieve_version_latest_xml(&self, process_id: &str) -> Option<String> {
        let rows =
            self.active_pool().query(&Scan::prefix(&format!("doc/{process_id}/")).family(FAM_DOC));
        rows.rows.last()?.1.get_str(FAM_DOC, QUAL_XML)
    }

    /// MapReduce statistics over every stored process: instance counts per
    /// status (the paper's "statistical analyses to workflow processes or
    /// instances stored in the DRA4WfMS cloud system"). Runs over a `meta/`
    /// prefix scan with family projection — document rows are never touched.
    pub fn statistics_by_status(&self, threads: usize) -> BTreeMap<String, usize> {
        map_reduce_scan(
            self.active_pool(),
            &Scan::prefix("meta/").family(FAM_META).threads(threads),
            threads,
            |_, row| match row.get_str(FAM_META, "status") {
                Some(s) => vec![(s, 1usize)],
                None => vec![],
            },
            |_, vs| vs.len(),
        )
    }

    /// MapReduce over the stored documents themselves: per-activity count
    /// and mean TFC-timestamp gap to the previous CER (advanced model) —
    /// the "statistics on the performance of one or more processes" that
    /// §2.2 says monitoring must provide. Returns
    /// `activity -> (executions, mean gap ms)`.
    pub fn activity_latency_stats(&self, threads: usize) -> BTreeMap<String, (usize, f64)> {
        let sums = map_reduce_scan(
            self.active_pool(),
            &Scan::prefix("meta/").family(FAM_META).threads(threads),
            threads,
            |key, row| {
                // load the latest stored document of this process
                let pid = key.trim_start_matches("meta/");
                let _ = row;
                let Some(xml) = self.retrieve_version_latest_xml(pid) else {
                    return vec![];
                };
                let Ok(doc) = DraDocument::parse(&xml) else { return vec![] };
                let Ok(cers) = doc.cers() else { return vec![] };
                let mut out = Vec::new();
                let mut prev_ts: Option<u64> = None;
                for cer in cers {
                    if let Some(ts) = cer.timestamp_millis() {
                        if let Some(p) = prev_ts {
                            out.push((cer.key.activity.clone(), ts.saturating_sub(p)));
                        }
                        prev_ts = Some(ts);
                    }
                }
                out
            },
            |_, gaps| {
                let n = gaps.len();
                let mean = gaps.iter().sum::<u64>() as f64 / n as f64;
                (n, mean)
            },
        );
        sums
    }

    /// MapReduce: total executed steps per workflow name.
    pub fn steps_per_workflow(&self, threads: usize) -> BTreeMap<String, usize> {
        map_reduce_scan(
            self.active_pool(),
            &Scan::prefix("meta/").family(FAM_META).threads(threads),
            threads,
            |_, row| {
                let wf = row.get_str(FAM_META, "workflow");
                let steps = row.get_str(FAM_META, "steps").and_then(|s| s.parse::<usize>().ok());
                match (wf, steps) {
                    (Some(w), Some(n)) => vec![(w, n)],
                    _ => vec![],
                }
            },
            |_, vs| vs.iter().sum(),
        )
    }

    /// The deployment's incremental fleet views.
    pub fn fleet_views(&self) -> &Arc<FleetViews> {
        &self.views
    }

    /// The full fleet dashboard as byte-deterministic JSON — read entirely
    /// from the incremental views, no pool scan involved.
    pub fn fleet_dashboard_json(&self) -> String {
        self.views.dashboard_json()
    }

    /// The name of the cloud currently serving as primary.
    fn active_cloud_name(&self) -> String {
        match &self.federation {
            None => "cloud0".to_string(),
            Some(fed) => fed.replicas[fed.controller.active_cloud()].name.clone(),
        }
    }

    /// Fold one applied pool mutation into the fleet views. Both the live
    /// admission path (post-commit) and crash recovery (journal replay) go
    /// through here, so the views stay exactly as consistent as the pool.
    fn apply_op_to_views(&self, op: &PutOp) {
        if let Some(rest) = op.key.strip_prefix("doc/") {
            if let Some((pid, seq)) = rest.rsplit_once('/') {
                if let Ok(seq) = seq.parse::<u64>() {
                    self.views.record_doc(pid, seq);
                }
            }
        } else if let Some(pid) = op.key.strip_prefix("meta/") {
            if op.qualifier == "status" {
                self.views.record_status(pid, &String::from_utf8_lossy(&op.value));
            }
        }
    }

    /// Rebuild the pool-derived views from the pool itself (cold restart:
    /// the views are memory, the pool is truth). One bounded scan per view.
    fn seed_views_from_pool(&self) {
        let pool = self.active_pool();
        for (key, row) in pool.query(&Scan::prefix("meta/").family(FAM_META)).rows {
            if let (Some(pid), Some(status)) =
                (key.strip_prefix("meta/"), row.get_str(FAM_META, "status"))
            {
                self.views.record_status(pid, &status);
            }
        }
        // key-only walk of the document rows: project a family doc rows
        // don't carry, so no XML bytes are cloned
        for (key, _) in pool.query(&Scan::prefix("doc/").family(FAM_META)).rows {
            if let Some((pid, seq)) = key.strip_prefix("doc/").and_then(|r| r.rsplit_once('/')) {
                if let Ok(seq) = seq.parse::<u64>() {
                    self.views.record_doc(pid, seq);
                }
            }
        }
    }

    /// Full MapReduce recompute of the pool-derived views over the scan API.
    fn recompute_views_from_pool(
        &self,
        threads: usize,
    ) -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
        let pool = self.active_pool();
        let status = map_reduce_scan(
            pool,
            &Scan::prefix("meta/").family(FAM_META).threads(threads),
            threads,
            |_, row| row.get_str(FAM_META, "status").map(|s| (s, 1u64)).into_iter().collect(),
            |_, vs| vs.iter().sum::<u64>(),
        );
        let progress = map_reduce_scan(
            pool,
            &Scan::prefix("doc/").family(FAM_META).threads(threads),
            threads,
            |key, _| {
                key.strip_prefix("doc/")
                    .and_then(|rest| rest.rsplit_once('/'))
                    .and_then(|(pid, seq)| seq.parse::<u64>().ok().map(|s| (pid.to_string(), s)))
                    .into_iter()
                    .collect()
            },
            |_, seqs| seqs.iter().copied().max().unwrap_or(0) + 1,
        );
        (status, progress)
    }

    /// The differential check `views ≡ scan`: recompute the pool-derived
    /// views (status counts, per-process progress) with a fresh MapReduce
    /// over the scan API and compare cell by cell. `Ok(())` when identical;
    /// `Err` names the first divergent cell.
    pub fn views_match_scan(&self, threads: usize) -> Result<(), String> {
        let (status, progress) = self.recompute_views_from_pool(threads);
        self.views.diff_against(&status, &progress)
    }

    /// The scan-recomputed pool views rendered in the identical byte format
    /// as [`FleetViews::pool_view_json`] — the byte-identity half of the
    /// differential check for benches that compare whole renderings.
    pub fn recompute_pool_view_json(&self, threads: usize) -> String {
        let (status, progress) = self.recompute_views_from_pool(threads);
        FleetViews::render_pool_view(&status, &progress)
    }

    /// The pools the continuous auditor samples, as `(cloud name, cloud
    /// index, pool)` per member cloud; single-cloud deployments expose their
    /// one pool as `("cloud0", 0, …)`.
    pub fn audit_pools(&self) -> Vec<(String, usize, Arc<HTable>)> {
        match &self.federation {
            None => vec![("cloud0".to_string(), 0, Arc::clone(&self.pool))],
            Some(fed) => fed
                .replicas
                .iter()
                .enumerate()
                .map(|(i, r)| (r.name.clone(), i, Arc::clone(&r.pool)))
                .collect(),
        }
    }

    /// Total documents stored across portals.
    pub fn total_stored(&self) -> usize {
        self.portals.iter().map(|p| p.stored.load(Ordering::Relaxed)).sum()
    }

    /// Total duplicate store requests suppressed across portals.
    pub fn total_duplicates_suppressed(&self) -> usize {
        self.portals.iter().map(|p| p.duplicates_suppressed.load(Ordering::Relaxed)).sum()
    }

    /// Upload a secured initial document ("the secured initial DRA4WfMS
    /// documents can be prepared by the system or uploaded to the system by
    /// the user", §3). The portal verifies the designer's signature before
    /// accepting; returns the process id.
    pub fn upload_initial(&self, portal: usize, xml: &str) -> WfResult<String> {
        let stats = &self.portals[portal % self.portals.len()];
        self.network.transfer(xml.len());
        let doc = DraDocument::parse(xml)?;
        let report = Verifier::new(&self.directory).run(&doc)?.report;
        stats.verifications.fetch_add(1, Ordering::Relaxed);
        if !report.cers.is_empty() {
            return Err(WfError::Malformed(
                "initial documents must not contain execution results".into(),
            ));
        }
        let pid = report.process_id;
        self.active_pool().put(&format!("initial/{pid}"), FAM_DOC, QUAL_XML, xml.to_string());
        Ok(pid)
    }

    /// List uploaded initial documents not yet started.
    pub fn pending_initials(&self) -> Vec<String> {
        self.active_pool()
            .query(&Scan::prefix("initial/").family(FAM_DOC))
            .rows
            .into_iter()
            .filter_map(|(k, _)| k.strip_prefix("initial/").map(str::to_string))
            .collect()
    }

    /// Start a previously uploaded process: move the initial document into
    /// the document store and notify the start activity's participant.
    pub fn start_uploaded(&self, portal: usize, process_id: &str) -> WfResult<()> {
        let xml =
            self.active_pool()
                .get_str(&format!("initial/{process_id}"), FAM_DOC, QUAL_XML)
                .ok_or_else(|| WfError::Malformed(format!("no pending initial '{process_id}'")))?;
        let doc = DraDocument::parse(&xml)?;
        let (def, _) = dra4wfms_core::amendment::effective_definition(&doc)?;
        self.store_document(
            portal,
            &xml,
            &Route { targets: vec![def.start.clone()], ends: false },
        )?;
        self.active_pool().delete_row(&format!("initial/{process_id}"));
        Ok(())
    }

    /// Snapshot the entire document pool (disaster recovery; the HDFS role
    /// in the paper's stack). On a federated deployment this snapshots the
    /// active cloud's pool — the surviving truth.
    pub fn snapshot_pool(&self) -> Vec<u8> {
        self.active_pool().export_snapshot()
    }

    /// SHA-256 digest over every stored document row (`doc/…`) of the
    /// active pool, keys and bytes, in key order — the byte-identity
    /// oracle the crash and federation sweeps compare runs with. Two
    /// deployments with equal digests hold exactly the same documents
    /// under exactly the same sequence numbers.
    pub fn pool_digest(&self) -> String {
        // the typed scan returns rows in key order already
        let rows: Vec<(String, String)> = self
            .active_pool()
            .query(&Scan::prefix("doc/").family(FAM_DOC))
            .rows
            .into_iter()
            .filter_map(|(k, row)| row.get_str(FAM_DOC, QUAL_XML).map(|v| (k, v)))
            .collect();
        let mut buf = String::new();
        for (k, v) in rows {
            buf.push_str(&k);
            buf.push('\0');
            buf.push_str(&v);
            buf.push('\0');
        }
        dra_crypto::hex::encode(&dra_crypto::sha256(buf.as_bytes()))
    }

    /// Per-cloud content fingerprints of the document rows: `(cloud name,
    /// fingerprint)` in declaration order. Single-cloud deployments report
    /// one entry named `cloud0`.
    pub fn cloud_digests(&self) -> Vec<(String, u64)> {
        match &self.federation {
            None => vec![("cloud0".to_string(), self.pool.fingerprint("doc/"))],
            Some(fed) => {
                fed.replicas.iter().map(|r| (r.name.clone(), r.pool.fingerprint("doc/"))).collect()
            }
        }
    }

    /// Export every cloud's write-ahead journal as `(name, bytes)` — the
    /// persistence seam a real deployment would fsync per cloud; the bytes
    /// round-trip through [`dra_docpool::Journal::import`], which drops a
    /// torn final record. Single-cloud deployments export one entry named
    /// `cloud0`.
    pub fn journal_snapshots(&self) -> Vec<(String, Vec<u8>)> {
        match &self.federation {
            None => vec![("cloud0".to_string(), self.journal.export())],
            Some(fed) => {
                fed.replicas.iter().map(|r| (r.name.clone(), r.journal.export())).collect()
            }
        }
    }

    /// Do all clouds that are still up hold byte-identical document rows?
    /// (Down clouds are excluded: a confirmed-dead replica legitimately
    /// stops at the admission where it died.) Trivially true single-cloud.
    pub fn replicas_consistent(&self) -> bool {
        let Some(fed) = &self.federation else { return true };
        let mut live = fed
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, _)| !fed.controller.cloud_down(*i))
            .map(|(_, r)| r.pool.fingerprint("doc/"));
        let Some(first) = live.next() else { return true };
        live.all(|fp| fp == first)
    }

    /// Rebuild a cloud system from a pool snapshot — a cold restart of the
    /// deployment. Portal counters reset; every stored document, TO-DO
    /// entry and meta row survives.
    pub fn restore(
        directory: Directory,
        portals: usize,
        network: Arc<NetworkSim>,
        snapshot: &[u8],
    ) -> WfResult<CloudSystem> {
        let pool = dra_docpool::HTable::import_snapshot(snapshot)
            .map_err(|e| WfError::Malformed(format!("pool snapshot: {e}")))?;
        let sys = CloudSystem {
            pool: Arc::new(pool),
            directory,
            portals: (0..portals.max(1)).map(|_| PortalStats::default()).collect(),
            network,
            trust_cache: TrustCache::new(256),
            journal: Arc::new(Journal::new()),
            bus: Arc::new(ActivationBus::new()),
            crash_plan: CrashPlan::none(),
            sound_defs: Default::default(),
            tracer: Tracer::disabled(),
            federation: None,
            views: Arc::new(FleetViews::new()),
        };
        sys.seed_views_from_pool();
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CloudSystem, WorkflowDefinition, SecurityPolicy, Credentials, Credentials) {
        let designer = Credentials::from_seed("designer", "d");
        let alice = Credentials::from_seed("alice", "a");
        let bob = Credentials::from_seed("bob", "b");
        let def = WorkflowDefinition::builder("po", "designer")
            .simple_activity("submit", "alice", &["amount"])
            .simple_activity("approve", "bob", &["decision"])
            .flow("submit", "approve")
            .flow_end("approve")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &alice, &bob]);
        let sys = CloudSystem::new(dir, 2, Arc::new(NetworkSim::lan()));
        (sys, def, SecurityPolicy::public(), designer, alice)
    }

    #[test]
    fn store_retrieve_roundtrip() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-1").unwrap();
        let route = Route { targets: vec!["submit".into()], ends: false };
        let seq = sys.store_document(0, &doc.to_xml_string(), &route).unwrap();
        assert_eq!(seq, 0);
        let xml = sys.retrieve_latest(0, "p-1").unwrap();
        assert_eq!(xml, doc.to_xml_string());
        assert_eq!(sys.retrieve_version("p-1", 0).unwrap(), xml);
        assert!(sys.retrieve_version("p-1", 3).is_none());
    }

    #[test]
    fn tampered_document_never_enters_pool() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-2").unwrap();
        let tampered = doc.to_xml_string().replace("alice", "mallory");
        let route = Route::default();
        assert!(sys.store_document(0, &tampered, &route).is_err());
        assert!(sys.retrieve_latest(0, "p-2").is_none());
        assert_eq!(sys.total_stored(), 0);
    }

    #[test]
    fn todo_notification_cycle() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-3").unwrap();
        sys.store_document(
            0,
            &doc.to_xml_string(),
            &Route { targets: vec!["submit".into()], ends: false },
        )
        .unwrap();
        // alice is notified
        let todos = sys.search_todo("alice");
        assert_eq!(todos, vec![TodoEntry { process_id: "p-3".into(), activity: "submit".into() }]);
        assert!(sys.search_todo("bob").is_empty());
        // consumed after execution
        assert!(sys.consume_todo("alice", "p-3", "submit"));
        assert!(sys.search_todo("alice").is_empty());
        assert!(!sys.consume_todo("alice", "p-3", "submit"));
    }

    #[test]
    fn status_and_statistics() {
        let (sys, def, pol, designer, _) = setup();
        for i in 0..6 {
            let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, &format!("p-{i}"))
                .unwrap();
            // even instances "complete", odd "running"
            let route = if i % 2 == 0 {
                Route { targets: vec![], ends: true }
            } else {
                Route { targets: vec!["submit".into()], ends: false }
            };
            sys.store_document(i, &doc.to_xml_string(), &route).unwrap();
        }
        let stats = sys.statistics_by_status(4);
        assert_eq!(stats["complete"], 3);
        assert_eq!(stats["running"], 3);
        let steps = sys.steps_per_workflow(4);
        assert_eq!(steps["po"], 0, "no CERs stored yet");
        let status = sys.process_status("p-0").unwrap().unwrap();
        assert_eq!(status.process_id, "p-0");
        assert!(sys.process_status("nope").unwrap().is_none());
    }

    #[test]
    fn views_track_admissions_and_match_scan() {
        let (sys, def, pol, designer, _) = setup();
        for i in 0..5 {
            let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, &format!("v-{i}"))
                .unwrap();
            let route = if i % 2 == 0 {
                Route { targets: vec![], ends: true }
            } else {
                Route { targets: vec!["submit".into()], ends: false }
            };
            sys.store_document(i, &doc.to_xml_string(), &route).unwrap();
        }
        let counts = sys.fleet_views().status_counts();
        assert_eq!(counts["complete"], 3);
        assert_eq!(counts["running"], 2);
        sys.views_match_scan(4).expect("views ≡ scan");
        assert_eq!(sys.fleet_views().pool_view_json(), sys.recompute_pool_view_json(4));
        let dash = sys.fleet_dashboard_json();
        assert_eq!(dash, sys.fleet_dashboard_json(), "byte-deterministic");
        assert!(dash.contains("\"totals\":{\"processes\":5,\"docs\":5}"), "{dash}");
    }

    #[test]
    fn views_survive_crash_replay_and_cold_restart() {
        let (sys, def, pol, designer, _) = setup();
        let sys = sys.with_crash_plan(CrashPlan::once(CrashPoint::PortalBetweenSeenAndStore, 1));
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "v-cr").unwrap();
        let route = Route { targets: vec!["submit".into()], ends: false };
        assert!(sys.store_document(0, &doc.to_xml_string(), &route).is_err());
        // torn admission: neither the pool nor the views saw the meta rows
        sys.views_match_scan(2).expect("views ≡ scan in the crash window");
        sys.recover_portals();
        sys.views_match_scan(2).expect("views ≡ scan after replay");
        assert_eq!(sys.fleet_views().status_counts()["running"], 1);

        // a cold restart reseeds the views from the pool snapshot
        let restored = CloudSystem::restore(
            sys.directory.clone(),
            2,
            Arc::new(NetworkSim::lan()),
            &sys.snapshot_pool(),
        )
        .unwrap();
        restored.views_match_scan(2).expect("views ≡ scan after restore");
        assert_eq!(restored.fleet_views().progress()["v-cr"], 1);
    }

    #[test]
    fn upload_and_start_lifecycle() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "up-1").unwrap();
        let pid = sys.upload_initial(0, &doc.to_xml_string()).unwrap();
        assert_eq!(pid, "up-1");
        assert_eq!(sys.pending_initials(), vec!["up-1"]);
        // nobody is notified until the process is started
        assert!(sys.search_todo("alice").is_empty());
        sys.start_uploaded(0, "up-1").unwrap();
        assert!(sys.pending_initials().is_empty());
        assert_eq!(sys.search_todo("alice").len(), 1);
        assert!(sys.retrieve_latest(0, "up-1").is_some());
        // starting twice fails
        assert!(sys.start_uploaded(0, "up-1").is_err());
    }

    #[test]
    fn upload_rejects_non_initial_and_forged() {
        let (sys, def, pol, designer, alice) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "up-2").unwrap();
        // forged designer signature
        let forged = doc.to_xml_string().replace("up-2", "up-3");
        assert!(sys.upload_initial(0, &forged).is_err());
        // a document with executed CERs is not an initial document
        let aea = Aea::new(alice, sys.directory.clone());
        let recv = aea.receive(doc.to_xml_string(), "submit").unwrap();
        let done = aea.complete(&recv, &[("amount".into(), "1".into())]).unwrap();
        assert!(matches!(
            sys.upload_initial(0, &done.document.to_xml_string()),
            Err(WfError::Malformed(_))
        ));
    }

    #[test]
    fn cold_restart_from_snapshot() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-r").unwrap();
        sys.store_document(
            0,
            &doc.to_xml_string(),
            &Route { targets: vec!["submit".into()], ends: false },
        )
        .unwrap();
        let snapshot = sys.snapshot_pool();

        // the deployment restarts from the snapshot
        let restored =
            CloudSystem::restore(sys.directory.clone(), 3, Arc::new(NetworkSim::lan()), &snapshot)
                .unwrap();
        assert_eq!(restored.retrieve_latest(0, "p-r").unwrap(), doc.to_xml_string());
        assert_eq!(restored.search_todo("alice").len(), 1, "TO-DO entries survive");
        assert_eq!(restored.statistics_by_status(2)["running"], 1);
        // corrupted snapshots are rejected
        assert!(CloudSystem::restore(
            sys.directory.clone(),
            1,
            Arc::new(NetworkSim::lan()),
            &snapshot[..10],
        )
        .is_err());
    }

    #[test]
    fn storing_the_same_bytes_twice_is_idempotent() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-dup").unwrap();
        let route = Route { targets: vec!["submit".into()], ends: false };
        let sealed = SealedDocument::from_wire(&doc.to_xml_string()).unwrap();
        let first = sys.store_sealed(0, &sealed, &route).unwrap();
        let second = sys.store_sealed(1, &sealed, &route).unwrap();
        assert_eq!(first, second, "duplicate acks the original sequence number");
        assert_eq!(sys.pool.scan_prefix("doc/p-dup/").len(), 1, "pool holds one version");
        assert_eq!(sys.total_stored(), 1);
        assert_eq!(sys.total_duplicates_suppressed(), 1);
    }

    #[test]
    fn ingest_wire_dedup_and_rejection() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-iw").unwrap();
        let wire = doc.to_xml_string();
        let route = Route { targets: vec!["submit".into()], ends: false };
        let bytes_before = sys.network.bytes();

        let ack = sys.ingest_wire(0, &wire, &route, None).unwrap();
        assert!(!ack.duplicate);
        let again = sys.ingest_wire(0, &wire, &route, None).unwrap();
        assert!(again.duplicate);
        assert_eq!(again.seq, ack.seq);
        // the delivery layer charges the channel; ingest must not
        assert_eq!(sys.network.bytes(), bytes_before);

        // a tampered copy is rejected, stored nothing
        let tampered = wire.replace("alice", "mallory");
        assert!(sys.ingest_wire(0, &tampered, &route, None).is_err());
        assert_eq!(sys.pool.scan_prefix("doc/p-iw/").len(), 1);
    }

    #[test]
    fn duplicate_suppression_survives_restart() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-sr").unwrap();
        let sealed = SealedDocument::from_wire(&doc.to_xml_string()).unwrap();
        let route = Route { targets: vec!["submit".into()], ends: false };
        let seq = sys.store_sealed(0, &sealed, &route).unwrap();
        let snapshot = sys.snapshot_pool();

        let restored =
            CloudSystem::restore(sys.directory.clone(), 1, Arc::new(NetworkSim::lan()), &snapshot)
                .unwrap();
        // the digest → seq binding lives in the pool, so a replayed copy is
        // still recognised after a cold restart
        let ack = restored.ingest_wire(0, &doc.to_xml_string(), &route, None).unwrap();
        assert!(ack.duplicate);
        assert_eq!(ack.seq, seq);
    }

    #[test]
    fn crash_between_seen_and_store_is_repaired_by_replay() {
        let (sys, def, pol, designer, _) = setup();
        let sys = sys.with_crash_plan(CrashPlan::once(CrashPoint::PortalBetweenSeenAndStore, 1));
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-cr").unwrap();
        let wire = doc.to_xml_string();
        let route = Route { targets: vec!["submit".into()], ends: false };

        // the portal dies after the seen row, before the document row: the
        // dangerous window where the pool claims "stored" with nothing stored
        let err = sys.store_document(0, &wire, &route).unwrap_err();
        assert!(matches!(err, WfError::Crash(_)));
        assert!(sys.retrieve_latest(0, "p-cr").is_none(), "document row missing");
        assert_eq!(sys.stored_seq_for(&wire), Some(0), "seen row landed");
        assert_eq!(sys.journal.uncommitted(), 1);

        // portal restart: journal replay completes the admission
        assert_eq!(sys.recover_portals(), 1);
        assert_eq!(sys.retrieve_latest(0, "p-cr").unwrap(), wire);
        assert_eq!(sys.search_todo("alice").len(), 1, "TO-DO entry replayed");
        assert_eq!(sys.journal_replays(), 1);

        // the sender's retry is now a clean duplicate, and the crashed
        // schedule is disarmed so the revisit gets through
        let ack = sys.ingest_wire(0, &wire, &route, None).unwrap();
        assert!(ack.duplicate);
        assert_eq!(ack.seq, 0);
        assert_eq!(sys.pool.scan_prefix("doc/p-cr/").len(), 1);
    }

    #[test]
    fn network_accounting_tracks_transfers() {
        let (sys, def, pol, designer, _) = setup();
        let doc = DraDocument::new_initial_with_pid(&def, &pol, &designer, "p-n").unwrap();
        let before = sys.network.bytes();
        sys.store_document(0, &doc.to_xml_string(), &Route::default()).unwrap();
        sys.retrieve_latest(1, "p-n").unwrap();
        assert_eq!(sys.network.bytes(), before + 2 * doc.to_xml_string().len() as u64);
        assert_eq!(sys.network.messages(), 2);
    }
}
