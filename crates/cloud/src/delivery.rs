//! Fault-tolerant document delivery: retry with exponential backoff +
//! jitter in virtual time, per-hop ack timeouts, and a bounded redelivery
//! queue for reordered copies.
//!
//! The delivery layer sits between the scenario runner and the receivers
//! (portals, the TFC server) and drives every hop *through* the
//! [`FaultyNetwork`] instead of around it:
//!
//! * a **dropped** copy times out and is retransmitted after an
//!   exponentially growing, jittered backoff — all in virtual time, so
//!   benchmarks stay deterministic and fast;
//! * a **duplicated** copy reaches the portal twice; the portal's
//!   wire-digest idempotency (see [`CloudSystem::ingest_wire`]) suppresses
//!   the second store, so the pool never grows a phantom version;
//! * a **corrupted** copy fails the portal's verification fallback and is
//!   counted, never stored — the sender retries with the original bytes;
//! * a **reordered** copy is parked in a bounded redelivery queue and
//!   ingested after later sends, exercising out-of-order arrival.
//!
//! A fault can cost time — [`DeliveryStats::inflation`] reports how much —
//! but never safety: every path into the pool still runs the full
//! verification pipeline.

use crate::faults::{FaultCounts, FaultProfile, FaultyNetwork};
use crate::netsim::NetworkSim;
use crate::portal::{CloudSystem, StoreAck};
use dra4wfms_core::prelude::*;
use dra_obs::{stage, MetricsRegistry, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Retry/backoff/queue configuration of a [`Delivery`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeliveryPolicy {
    /// Maximum send attempts per hop (first try + retries), ≥ 1.
    pub max_attempts: usize,
    /// Backoff before the first retry, in virtual microseconds; doubles
    /// after every failed attempt.
    pub base_backoff_us: u64,
    /// Backoff ceiling in virtual microseconds.
    pub max_backoff_us: u64,
    /// Jitter fraction: each backoff is stretched by a uniformly random
    /// factor in `[0, jitter]` to decorrelate retry storms.
    pub jitter: f64,
    /// Virtual time charged waiting for an ack that never comes, per
    /// failed attempt.
    pub ack_timeout_us: u64,
    /// Capacity of the redelivery queue holding reordered copies; overflow
    /// copies are dropped (and counted) rather than buffered unboundedly.
    pub redelivery_capacity: usize,
}

impl Default for DeliveryPolicy {
    fn default() -> DeliveryPolicy {
        DeliveryPolicy {
            max_attempts: 8,
            base_backoff_us: 1_000,
            max_backoff_us: 64_000,
            jitter: 0.2,
            ack_timeout_us: 2_000,
            redelivery_capacity: 32,
        }
    }
}

impl DeliveryPolicy {
    /// Check the policy is usable.
    pub fn validate(&self) -> WfResult<()> {
        if self.max_attempts == 0 {
            return Err(WfError::Config("delivery needs at least one attempt".into()));
        }
        if !(0.0..=1.0).contains(&self.jitter) || self.jitter.is_nan() {
            return Err(WfError::Config(format!(
                "jitter must be a fraction in [0, 1], got {}",
                self.jitter
            )));
        }
        Ok(())
    }
}

/// Per-run delivery accounting: what the faults cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Logical hand-offs attempted (hops).
    pub sends: u64,
    /// Logical hand-offs that ended with a receiver ack (≤ `sends`; the gap
    /// is hops still in flight or given up as undeliverable).
    pub delivered: u64,
    /// Physical send attempts across all hops (≥ `sends`).
    pub attempts: u64,
    /// Retransmissions after a hop-level timeout.
    pub retries: u64,
    /// Copies the receiver recognised (by wire digest) as already stored
    /// and suppressed instead of re-storing.
    pub duplicates_suppressed: u64,
    /// Corrupted copies rejected by the verification pipeline.
    pub corruptions_rejected: u64,
    /// Reordered copies that were ingested late from the redelivery queue.
    pub late_deliveries: u64,
    /// Reordered copies dropped because the redelivery queue was full.
    pub queue_overflow_dropped: u64,
    /// Crash faults injected during the run (by a [`crate::CrashPlan`]);
    /// the delivery layer observes portal and TFC crashes, the runner folds
    /// in AEA crashes it supervised.
    pub crashes_injected: u64,
    /// Hop leases that expired and triggered a supervisor takeover
    /// (runner-supervised; 0 for bare delivery use).
    pub leases_expired: u64,
    /// Journal records replayed by portal recoveries
    /// (runner/[`CloudSystem::recover_portals`]-supplied).
    pub journal_replays: u64,
    /// Faults injected by the channel underneath.
    pub faults: FaultCounts,
    /// Virtual time actually spent, in microseconds (transfers + injected
    /// delays + timeouts + backoff).
    pub virtual_time_us: u64,
    /// Virtual time the same hops would have cost on a lossless channel.
    pub ideal_time_us: u64,
}

impl DeliveryStats {
    /// Virtual-time inflation factor: actual / lossless. `1.0` on a clean
    /// channel; bounded retry overhead keeps it finite under faults.
    pub fn inflation(&self) -> f64 {
        if self.ideal_time_us == 0 {
            1.0
        } else {
            self.virtual_time_us as f64 / self.ideal_time_us as f64
        }
    }

    /// Fold this run's totals into a [`MetricsRegistry`] under `delivery.*`
    /// names — the unified home the ad-hoc struct is being absorbed into.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        metrics.set_counter("delivery.sends", self.sends);
        metrics.set_counter("delivery.delivered", self.delivered);
        metrics.set_counter("delivery.attempts", self.attempts);
        metrics.set_counter("delivery.retries", self.retries);
        metrics.set_counter("delivery.duplicates_suppressed", self.duplicates_suppressed);
        metrics.set_counter("delivery.corruptions_rejected", self.corruptions_rejected);
        metrics.set_counter("delivery.late_deliveries", self.late_deliveries);
        metrics.set_counter("delivery.queue_overflow_dropped", self.queue_overflow_dropped);
        metrics.set_counter("delivery.crashes_injected", self.crashes_injected);
        metrics.set_counter("delivery.leases_expired", self.leases_expired);
        metrics.set_counter("delivery.journal_replays", self.journal_replays);
        metrics.set_counter("delivery.faults.dropped", self.faults.dropped);
        metrics.set_counter("delivery.faults.duplicated", self.faults.duplicated);
        metrics.set_counter("delivery.faults.corrupted", self.faults.corrupted);
        metrics.set_counter("delivery.faults.reordered", self.faults.reordered);
        metrics.set_counter("delivery.faults.delayed_us", self.faults.delayed_us);
        metrics.set_counter("delivery.virtual_time_us", self.virtual_time_us);
        metrics.set_counter("delivery.ideal_time_us", self.ideal_time_us);
    }
}

/// A reordered portal-bound copy waiting in the redelivery queue.
struct Pending {
    payload: String,
    portal: usize,
    route: Route,
    trust: Option<TrustMark>,
}

/// A fault-tolerant delivery channel over a [`FaultyNetwork`].
pub struct Delivery {
    network: FaultyNetwork,
    policy: DeliveryPolicy,
    /// Jitter randomness, seeded independently of the fault stream so
    /// retry timing never perturbs the fault schedule.
    jitter_rng: Mutex<StdRng>,
    pending: Mutex<VecDeque<Pending>>,
    sends: AtomicU64,
    delivered: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    duplicates_suppressed: AtomicU64,
    corruptions_rejected: AtomicU64,
    late_deliveries: AtomicU64,
    queue_overflow_dropped: AtomicU64,
    crashes: AtomicU64,
    ideal_messages: AtomicU64,
    ideal_bytes: AtomicU64,
    tracer: Tracer,
}

impl Delivery {
    /// Build a delivery channel injecting `profile` faults over `sim`,
    /// seeded by `seed` (same seed + profile ⇒ identical fault schedule
    /// and [`DeliveryStats`]).
    pub fn new(
        sim: Arc<NetworkSim>,
        profile: FaultProfile,
        policy: DeliveryPolicy,
        seed: u64,
    ) -> WfResult<Delivery> {
        policy.validate()?;
        let network = FaultyNetwork::new(sim, profile, seed)?;
        Ok(Delivery {
            network,
            policy,
            // distinct, fixed offset: decouples jitter from fault decisions
            jitter_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15)),
            pending: Mutex::new(VecDeque::new()),
            sends: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            duplicates_suppressed: AtomicU64::new(0),
            corruptions_rejected: AtomicU64::new(0),
            late_deliveries: AtomicU64::new(0),
            queue_overflow_dropped: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            ideal_messages: AtomicU64::new(0),
            ideal_bytes: AtomicU64::new(0),
            tracer: Tracer::disabled(),
        })
    }

    /// Record a `deliver` span per logical hand-off into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Delivery {
        self.tracer = tracer;
        self
    }

    /// A perfect channel with the default policy — useful as a drop-in
    /// where the call site wants delivery accounting without faults.
    pub fn lossless(sim: Arc<NetworkSim>) -> Delivery {
        Delivery::new(sim, FaultProfile::lossless(), DeliveryPolicy::default(), 0)
            .expect("lossless profile and default policy are always valid")
    }

    /// The fault-injecting channel underneath.
    pub fn network(&self) -> &FaultyNetwork {
        &self.network
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &DeliveryPolicy {
        &self.policy
    }

    /// Deliver a sealed document to portal `portal` through the faulty
    /// channel, retrying with exponential backoff until the portal acks or
    /// the attempt budget is exhausted.
    pub fn deliver(
        &self,
        system: &CloudSystem,
        portal: usize,
        sealed: &SealedDocument,
        route: &Route,
    ) -> WfResult<StoreAck> {
        // reordered copies of *earlier* sends arrive before this one
        self.drain_pending(system);
        let mut span = self.tracer.span(stage::DELIVER).actor("delivery");
        if span.enabled() {
            if let Ok(pid) = sealed.document().process_id() {
                span.set_process(&pid);
            }
            span.attr("target", format!("portal:{portal}"));
        }
        let wire = sealed.wire();
        self.account_ideal(wire.len());
        let mut backoff = self.policy.base_backoff_us;
        for attempt in 1..=self.policy.max_attempts {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let mut ack: Option<StoreAck> = None;
            for arrival in self.network.send(&wire) {
                if arrival.late {
                    self.enqueue_pending(Pending {
                        payload: arrival.payload.unwrap_or_else(|| wire.as_ref().clone()),
                        portal,
                        route: route.clone(),
                        trust: sealed.trust().cloned(),
                    });
                    continue;
                }
                self.network.sim().advance(arrival.delay_us);
                let corrupted = arrival.payload.is_some();
                let payload = arrival.payload.as_deref().unwrap_or(&wire);
                match system.ingest_wire(portal, payload, route, sealed.trust()) {
                    Ok(a) => {
                        if a.duplicate {
                            self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                        }
                        ack.get_or_insert(a);
                    }
                    // the portal died mid-admission: restart it (journal
                    // replay completes the half-done store), treat the
                    // attempt as unacked and let backoff + retry run — the
                    // retry finds the replayed seen row and acks a duplicate
                    Err(WfError::Crash(_)) => {
                        self.crashes.fetch_add(1, Ordering::Relaxed);
                        system.recover_portals();
                    }
                    // a corrupted copy failing verification is the fault
                    // model working — retry with the original bytes
                    Err(_) if corrupted => {
                        self.corruptions_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    // an *intact* copy the portal rejects is an application
                    // error (bad document, policy violation) — retrying the
                    // same bytes can never succeed
                    Err(e) => return Err(e),
                }
            }
            if let Some(ack) = ack {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                span.attr("attempts", attempt);
                span.end();
                return Ok(ack);
            }
            self.wait_before_retry(&mut backoff);
        }
        span.attr("attempts", self.policy.max_attempts);
        span.end_with("undeliverable");
        Err(WfError::Delivery(format!(
            "document for portal {portal} undeliverable after {} attempts ({} bytes)",
            self.policy.max_attempts,
            wire.len()
        )))
    }

    /// Deliver a sealed document to an arbitrary receiver (the AEA → TFC
    /// link) through the faulty channel. `ingest` is invoked once per
    /// arriving copy until it acks; corrupted copies failing ingestion are
    /// counted and retried, duplicate copies after the first ack are
    /// suppressed sender-side.
    pub fn transfer<T>(
        &self,
        sealed: &SealedDocument,
        mut ingest: impl FnMut(SealedDocument) -> WfResult<T>,
    ) -> WfResult<T> {
        let mut span = self.tracer.span(stage::DELIVER).actor("delivery");
        if span.enabled() {
            if let Ok(pid) = sealed.document().process_id() {
                span.set_process(&pid);
            }
            span.attr("target", "transfer");
        }
        let wire = sealed.wire();
        self.account_ideal(wire.len());
        let mut backoff = self.policy.base_backoff_us;
        for attempt in 1..=self.policy.max_attempts {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            let mut acked: Option<T> = None;
            // a point-to-point link has no shared redelivery queue: process
            // reordered copies after the on-time ones within this attempt
            let mut arrivals = self.network.send(&wire);
            arrivals.sort_by_key(|a| a.late);
            for arrival in arrivals {
                self.network.sim().advance(arrival.delay_us);
                if acked.is_some() {
                    self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if arrival.late {
                    self.late_deliveries.fetch_add(1, Ordering::Relaxed);
                }
                match &arrival.payload {
                    None => match ingest(sealed.clone()) {
                        Ok(v) => acked = Some(v),
                        // the receiver died mid-ingest (e.g. the TFC after
                        // drawing its timestamp): unacked attempt, retry —
                        // the restarted receiver's redo log re-emits the
                        // same result instead of double-processing
                        Err(WfError::Crash(_)) => {
                            self.crashes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => return Err(e),
                    },
                    Some(corrupted) => {
                        let outcome = SealedDocument::from_wire(corrupted).and_then(&mut ingest);
                        match outcome {
                            // a corrupted copy that still verifies is
                            // canonically identical — accept it
                            Ok(v) => acked = Some(v),
                            Err(WfError::Crash(_)) => {
                                self.crashes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                self.corruptions_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            if let Some(v) = acked {
                self.delivered.fetch_add(1, Ordering::Relaxed);
                span.attr("attempts", attempt);
                span.end();
                return Ok(v);
            }
            self.wait_before_retry(&mut backoff);
        }
        span.attr("attempts", self.policy.max_attempts);
        span.end_with("undeliverable");
        Err(WfError::Delivery(format!(
            "hand-off undeliverable after {} attempts ({} bytes)",
            self.policy.max_attempts,
            wire.len()
        )))
    }

    /// Ingest every copy still parked in the redelivery queue (call at the
    /// end of a run so late duplicates are accounted before reading stats).
    pub fn flush(&self, system: &CloudSystem) {
        self.drain_pending(system);
    }

    /// Snapshot the accumulated statistics.
    pub fn stats(&self) -> DeliveryStats {
        let sim = self.network.sim();
        DeliveryStats {
            sends: self.sends.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            duplicates_suppressed: self.duplicates_suppressed.load(Ordering::Relaxed),
            corruptions_rejected: self.corruptions_rejected.load(Ordering::Relaxed),
            late_deliveries: self.late_deliveries.load(Ordering::Relaxed),
            queue_overflow_dropped: self.queue_overflow_dropped.load(Ordering::Relaxed),
            crashes_injected: self.crashes.load(Ordering::Relaxed),
            leases_expired: 0,
            journal_replays: 0,
            faults: self.network.counts(),
            virtual_time_us: sim.virtual_time_us(),
            ideal_time_us: sim.ideal_time_us(
                self.ideal_messages.load(Ordering::Relaxed),
                self.ideal_bytes.load(Ordering::Relaxed),
            ),
        }
    }

    fn account_ideal(&self, len: usize) {
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.ideal_messages.fetch_add(1, Ordering::Relaxed);
        self.ideal_bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    fn wait_before_retry(&self, backoff: &mut u64) {
        let jitter = {
            let mut rng = self.jitter_rng.lock().unwrap_or_else(|e| e.into_inner());
            (*backoff as f64 * self.policy.jitter * rng.gen::<f64>()) as u64
        };
        self.network.sim().advance(self.policy.ack_timeout_us + *backoff + jitter);
        *backoff = (*backoff * 2).min(self.policy.max_backoff_us);
    }

    fn enqueue_pending(&self, pending: Pending) {
        let mut queue = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.policy.redelivery_capacity {
            self.queue_overflow_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        queue.push_back(pending);
    }

    fn drain_pending(&self, system: &CloudSystem) {
        loop {
            let item = {
                let mut queue = self.pending.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            let Some(p) = item else { return };
            self.late_deliveries.fetch_add(1, Ordering::Relaxed);
            match system.ingest_wire(p.portal, &p.payload, &p.route, p.trust.as_ref()) {
                Ok(ack) if ack.duplicate => {
                    self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                }
                // a late copy of a send that eventually succeeded via retry
                // stores the same bytes → always a duplicate; a late copy of
                // a send that never acked lands here as a fresh (valid)
                // store, which is exactly redelivery
                Ok(_) => {}
                // portal crash on a late copy: restart it; the replayed
                // admission makes the copy effectively stored
                Err(WfError::Crash(_)) => {
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                    system.recover_portals();
                }
                // late corrupted (or stale) copies are rejected by
                // verification — the fault model working as intended
                Err(_) => {
                    self.corruptions_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        DeliveryPolicy::default().validate().unwrap();
    }

    #[test]
    fn bad_policies_rejected() {
        let sim = Arc::new(NetworkSim::lan());
        let zero_attempts = DeliveryPolicy { max_attempts: 0, ..DeliveryPolicy::default() };
        assert!(matches!(
            Delivery::new(Arc::clone(&sim), FaultProfile::lossless(), zero_attempts, 0),
            Err(WfError::Config(_))
        ));
        let bad_jitter = DeliveryPolicy { jitter: 1.5, ..DeliveryPolicy::default() };
        assert!(matches!(
            Delivery::new(sim, FaultProfile::lossless(), bad_jitter, 0),
            Err(WfError::Config(_))
        ));
    }

    #[test]
    fn inflation_is_unity_without_faults() {
        let stats =
            DeliveryStats { virtual_time_us: 500, ideal_time_us: 500, ..Default::default() };
        assert!((stats.inflation() - 1.0).abs() < 1e-9);
        assert!((DeliveryStats::default().inflation() - 1.0).abs() < 1e-9);
    }
}
