//! Online fleet health: a [`HealthMonitor`] sink that watches the span
//! stream *while the run executes* and emits typed, deterministic
//! [`Alert`]s.
//!
//! The paper's monitoring requirement (§2.2) asks that process state be
//! "easily seen and statistics … provided" — but in an engine-less system
//! there is no engine to ask. PR 4 answered with after-the-fact traces;
//! this module closes the loop: the monitor subscribes to the live span
//! stream (see [`dra_obs::TraceSink`]), tracks a small per-instance state
//! machine in virtual time, and raises alerts the moment a pathology is
//! visible:
//!
//! * [`AlertKind::StuckInstance`] — no span has closed for an instance
//!   past the progress deadline;
//! * [`AlertKind::RetryStorm`] — a delivery burned attempts at or above
//!   the storm threshold before landing;
//! * [`AlertKind::CrashLoop`] — hop takeovers reached the supervisor's
//!   whole-budget (the instance survives only as long as the budget does);
//! * [`AlertKind::SloBreach`] — end-to-end latency exceeded the
//!   per-workflow SLO declared on the run builder.
//!
//! Alerts are **advisory**: they route attention, they never decide
//! outcomes. The signed document remains the only authority on what
//! happened (the `reconcile` oracle checks the trace against it); an alert
//! stream is just the earliest trustworthy-enough hint that something
//! needs a look. The one feedback edge is deliberate and safe: the runner
//! consults [`HealthMonitor::time_until_stuck`] so a supervisor can take
//! over a crashed hop when the instance is *observed* stuck instead of
//! pessimistically waiting out the full lease — acting earlier, never
//! differently.
//!
//! Everything is virtual-time arithmetic over the deterministic span
//! stream, so for a fixed seed the alert JSONL from
//! [`alerts_to_jsonl`] is byte-identical run after run — CI exports twice
//! and `cmp`s, the same contract traces have.

use dra_obs::{json_escape, stage, MetricsRegistry, TraceEvent, TraceSink, OUTCOME_CRASH};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Thresholds for the monitor's detectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// An instance with no closed span for this long (virtual µs) is
    /// declared stuck. Deliberately shorter than the default supervisor
    /// lease (20 000 µs) so observation beats pessimistic waiting.
    pub progress_deadline_us: u64,
    /// A delivery that burned at least this many attempts is a retry
    /// storm (the delivery default budget is 8).
    pub retry_storm_attempts: u64,
    /// Crash takeovers at or above this count are a crash loop (matches
    /// `SupervisorPolicy::max_takeovers`' default).
    pub crash_loop_takeovers: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            progress_deadline_us: 15_000,
            retry_storm_attempts: 4,
            crash_loop_takeovers: 4,
        }
    }
}

/// What the monitor saw, and when (virtual µs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// Virtual time the alert fired.
    pub at_us: u64,
    /// The process instance it concerns.
    pub process_id: String,
    /// The pathology.
    pub kind: AlertKind,
}

/// Typed alert taxonomy. Every variant carries the observation *and* the
/// threshold it crossed, so an alert line is self-explaining.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// No span closed for the instance within the progress deadline.
    StuckInstance {
        /// Virtual µs since the last closed span.
        idle_us: u64,
        /// The deadline that was exceeded.
        deadline_us: u64,
    },
    /// One delivery burned `attempts` tries (threshold included).
    RetryStorm {
        /// The delivery target (`portal:N` or `transfer`), when recorded.
        target: String,
        /// Attempts the delivery cost.
        attempts: u64,
        /// The storm threshold.
        threshold: u64,
    },
    /// Crash takeovers reached the supervisor budget.
    CrashLoop {
        /// Crash-outcome hops observed for the instance.
        crashes: u64,
        /// The takeover budget.
        budget: u64,
    },
    /// End-to-end latency exceeded the declared SLO.
    SloBreach {
        /// Observed end-to-end latency, virtual µs.
        elapsed_us: u64,
        /// The declared SLO, virtual µs.
        slo_us: u64,
    },
}

impl AlertKind {
    /// Stable snake_case tag used in the JSONL rendering and metric names.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AlertKind::StuckInstance { .. } => "stuck_instance",
            AlertKind::RetryStorm { .. } => "retry_storm",
            AlertKind::CrashLoop { .. } => "crash_loop",
            AlertKind::SloBreach { .. } => "slo_breach",
        }
    }
}

#[derive(Default)]
struct InstanceState {
    started_us: u64,
    last_progress_us: u64,
    stuck_flagged: bool,
    crashes: u64,
    crash_alerted: bool,
    slo_us: Option<u64>,
    finished: bool,
}

#[derive(Default)]
struct MonitorInner {
    instances: BTreeMap<String, InstanceState>,
    alerts: Vec<Alert>,
}

/// The online health monitor. Install it as a sink on the deployment's
/// tracer (`tracer.add_sink(monitor.clone())`) *and* hand it to
/// `InstanceRun::monitor(..)` so the supervisor can act on `StuckInstance`
/// observations.
pub struct HealthMonitor {
    policy: HealthPolicy,
    inner: Mutex<MonitorInner>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds, ready to install as a sink.
    pub fn new(policy: HealthPolicy) -> Arc<HealthMonitor> {
        Arc::new(HealthMonitor { policy, inner: Mutex::new(MonitorInner::default()) })
    }

    /// The thresholds this monitor applies.
    #[must_use]
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Declare an instance under watch, optionally with an end-to-end SLO
    /// (virtual µs). Progress accounting starts at `now_us`.
    pub fn instance_started(&self, process_id: &str, slo_us: Option<u64>, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let st = inner.instances.entry(process_id.to_string()).or_default();
        st.started_us = now_us;
        st.last_progress_us = st.last_progress_us.max(now_us);
        st.slo_us = slo_us;
        st.finished = false;
    }

    /// Declare an instance done; checks the SLO and stops stuck tracking.
    pub fn instance_finished(&self, process_id: &str, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(st) = inner.instances.get_mut(process_id) else { return };
        st.finished = true;
        let elapsed_us = now_us.saturating_sub(st.started_us);
        if let Some(slo_us) = st.slo_us {
            if elapsed_us > slo_us {
                inner.alerts.push(Alert {
                    at_us: now_us,
                    process_id: process_id.to_string(),
                    kind: AlertKind::SloBreach { elapsed_us, slo_us },
                });
            }
        }
    }

    /// Progress-deadline sweep: raise [`AlertKind::StuckInstance`] (once
    /// per stall — re-armed by the next progress) for every unfinished
    /// instance idle past the deadline. Call whenever virtual time has
    /// advanced without spans closing.
    pub fn tick(&self, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline_us = self.policy.progress_deadline_us;
        let mut fired: Vec<Alert> = Vec::new();
        for (pid, st) in &mut inner.instances {
            let idle_us = now_us.saturating_sub(st.last_progress_us);
            if !st.finished && !st.stuck_flagged && idle_us > deadline_us {
                st.stuck_flagged = true;
                fired.push(Alert {
                    at_us: now_us,
                    process_id: pid.clone(),
                    kind: AlertKind::StuckInstance { idle_us, deadline_us },
                });
            }
        }
        inner.alerts.extend(fired);
    }

    /// Virtual µs until [`tick`](HealthMonitor::tick) would declare this
    /// instance stuck (0 when it already would). The supervisor uses this
    /// to wait no longer than observation requires.
    #[must_use]
    pub fn time_until_stuck(&self, process_id: &str, now_us: u64) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let horizon = self.policy.progress_deadline_us + 1;
        match inner.instances.get(process_id) {
            Some(st) => (st.last_progress_us + horizon).saturating_sub(now_us),
            None => horizon,
        }
    }

    /// Snapshot of every alert fired so far, in firing order.
    #[must_use]
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).alerts.clone()
    }

    /// Export alert counts: `alerts.stuck`, `alerts.retry_storm`,
    /// `alerts.crash_loop`, `alerts.slo_breach` and `alerts.total`.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        let alerts = self.alerts();
        let count = |tag: &str| alerts.iter().filter(|a| a.kind.tag() == tag).count() as u64;
        metrics.set_counter("alerts.stuck", count("stuck_instance"));
        metrics.set_counter("alerts.retry_storm", count("retry_storm"));
        metrics.set_counter("alerts.crash_loop", count("crash_loop"));
        metrics.set_counter("alerts.slo_breach", count("slo_breach"));
        metrics.set_counter("alerts.total", alerts.len() as u64);
    }
}

impl TraceSink for HealthMonitor {
    fn on_span(&self, event: &TraceEvent) {
        if event.process_id.is_empty() {
            return; // not attributable to an instance
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut fired: Vec<Alert> = Vec::new();
        let st = inner.instances.entry(event.process_id.clone()).or_default();

        if event.stage == stage::HOP && event.outcome == OUTCOME_CRASH {
            // a crashed hop is not progress — it is evidence of the opposite
            st.crashes += 1;
            if st.crashes >= self.policy.crash_loop_takeovers && !st.crash_alerted {
                st.crash_alerted = true;
                fired.push(Alert {
                    at_us: event.end_us,
                    process_id: event.process_id.clone(),
                    kind: AlertKind::CrashLoop {
                        crashes: st.crashes,
                        budget: self.policy.crash_loop_takeovers,
                    },
                });
            }
        } else {
            st.last_progress_us = st.last_progress_us.max(event.end_us);
            st.stuck_flagged = false;
        }

        if event.stage == stage::DELIVER {
            let attempts = event.attr("attempts").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            if attempts >= self.policy.retry_storm_attempts {
                let target = event.attr("target").unwrap_or("").to_string();
                fired.push(Alert {
                    at_us: event.end_us,
                    process_id: event.process_id.clone(),
                    kind: AlertKind::RetryStorm {
                        target,
                        attempts,
                        threshold: self.policy.retry_storm_attempts,
                    },
                });
            }
        }
        inner.alerts.extend(fired);
    }
}

/// Render alerts as byte-deterministic JSONL: one alert per line, fixed
/// key order, trailing newline — the same contract as trace JSONL.
#[must_use]
pub fn alerts_to_jsonl(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        let head = format!(
            "{{\"at_us\":{},\"process\":\"{}\",\"kind\":\"{}\"",
            a.at_us,
            json_escape(&a.process_id),
            a.kind.tag()
        );
        out.push_str(&head);
        match &a.kind {
            AlertKind::StuckInstance { idle_us, deadline_us } => {
                out.push_str(&format!(",\"idle_us\":{idle_us},\"deadline_us\":{deadline_us}"));
            }
            AlertKind::RetryStorm { target, attempts, threshold } => {
                out.push_str(&format!(
                    ",\"target\":\"{}\",\"attempts\":{attempts},\"threshold\":{threshold}",
                    json_escape(target)
                ));
            }
            AlertKind::CrashLoop { crashes, budget } => {
                out.push_str(&format!(",\"crashes\":{crashes},\"budget\":{budget}"));
            }
            AlertKind::SloBreach { elapsed_us, slo_us } => {
                out.push_str(&format!(",\"elapsed_us\":{elapsed_us},\"slo_us\":{slo_us}"));
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_obs::Tracer;

    fn monitor() -> Arc<HealthMonitor> {
        HealthMonitor::new(HealthPolicy::default())
    }

    #[test]
    fn progress_resets_the_stuck_detector() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        m.instance_started("p", None, 0);
        t.span("hop").process("p").end();
        m.tick(10_000);
        assert!(m.alerts().is_empty(), "within deadline: no alert");
        m.tick(20_000);
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert!(matches!(alerts[0].kind, AlertKind::StuckInstance { .. }));
        m.tick(30_000);
        assert_eq!(m.alerts().len(), 1, "one alert per stall, not per tick");
        t.span("hop").process("p").end();
        m.tick(100_000);
        assert_eq!(m.alerts().len(), 2, "fresh progress re-arms the detector");
    }

    #[test]
    fn finished_instances_are_not_stuck() {
        let m = monitor();
        m.instance_started("p", None, 0);
        m.instance_finished("p", 5_000);
        m.tick(1_000_000);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn slo_breach_fires_only_over_budget() {
        let m = monitor();
        m.instance_started("fast", Some(10_000), 0);
        m.instance_finished("fast", 9_999);
        m.instance_started("slow", Some(10_000), 0);
        m.instance_finished("slow", 10_001);
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].process_id, "slow");
        assert_eq!(alerts[0].kind, AlertKind::SloBreach { elapsed_us: 10_001, slo_us: 10_000 });
    }

    #[test]
    fn retry_storm_reads_the_attempts_attr() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        let mut calm = t.span("deliver").process("p");
        calm.attr("target", "portal:1");
        calm.attr("attempts", 3);
        calm.end();
        assert!(m.alerts().is_empty(), "below threshold");
        let mut storm = t.span("deliver").process("p");
        storm.attr("target", "portal:2");
        storm.attr("attempts", 4);
        storm.end();
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::RetryStorm { target: "portal:2".into(), attempts: 4, threshold: 4 }
        );
    }

    #[test]
    fn crash_loop_fires_once_at_budget() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        for _ in 0..5 {
            t.span("hop").process("p").end_with(OUTCOME_CRASH);
        }
        let alerts = m.alerts();
        let crash_loops: Vec<&Alert> =
            alerts.iter().filter(|a| matches!(a.kind, AlertKind::CrashLoop { .. })).collect();
        assert_eq!(crash_loops.len(), 1, "fires once at the budget, not on every crash after");
        assert_eq!(crash_loops[0].kind, AlertKind::CrashLoop { crashes: 4, budget: 4 });
    }

    #[test]
    fn time_until_stuck_counts_down_from_progress() {
        let m = monitor();
        m.instance_started("p", None, 1_000);
        assert_eq!(m.time_until_stuck("p", 1_000), 15_001);
        assert_eq!(m.time_until_stuck("p", 10_000), 6_001);
        assert_eq!(m.time_until_stuck("p", 50_000), 0);
        assert_eq!(m.time_until_stuck("never-seen", 0), 15_001);
    }

    #[test]
    fn jsonl_is_deterministic_and_tagged() {
        let m = monitor();
        m.instance_started("p", Some(1), 0);
        m.instance_finished("p", 10);
        m.tick(99_999); // p finished: no stuck alert
        let rendered = alerts_to_jsonl(&m.alerts());
        assert_eq!(rendered, "{\"at_us\":10,\"process\":\"p\",\"kind\":\"slo_breach\",\"elapsed_us\":10,\"slo_us\":1}\n");
        assert_eq!(rendered, alerts_to_jsonl(&m.alerts()));
    }

    #[test]
    fn export_metrics_counts_by_kind() {
        let m = monitor();
        m.instance_started("p", Some(1), 0);
        m.instance_finished("p", 10);
        m.instance_started("q", None, 0);
        m.tick(100_000);
        let metrics = MetricsRegistry::new();
        m.export_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("alerts.slo_breach"), 1);
        assert_eq!(snap.counter("alerts.stuck"), 1);
        assert_eq!(snap.counter("alerts.crash_loop"), 0);
        assert_eq!(snap.counter("alerts.total"), 2);
    }
}
