//! Online fleet health: a [`HealthMonitor`] sink that watches the span
//! stream *while the run executes* and emits typed, deterministic
//! [`Alert`]s.
//!
//! The paper's monitoring requirement (§2.2) asks that process state be
//! "easily seen and statistics … provided" — but in an engine-less system
//! there is no engine to ask. PR 4 answered with after-the-fact traces;
//! this module closes the loop: the monitor subscribes to the live span
//! stream (see [`dra_obs::TraceSink`]), tracks a small per-instance state
//! machine in virtual time, and raises alerts the moment a pathology is
//! visible:
//!
//! * [`AlertKind::StuckInstance`] — no span has closed for an instance
//!   past the progress deadline;
//! * [`AlertKind::RetryStorm`] — a delivery burned attempts at or above
//!   the storm threshold before landing;
//! * [`AlertKind::CrashLoop`] — hop takeovers reached the supervisor's
//!   whole-budget (the instance survives only as long as the budget does);
//! * [`AlertKind::SloBreach`] — end-to-end latency exceeded the
//!   per-workflow SLO declared on the run builder;
//! * [`AlertKind::PortalTampered`] — a portal served bytes whose wire
//!   digest failed full verification (raised by the federation layer,
//!   which also quarantines the portal — see `cloud::federation`).
//!
//! Alerts are **advisory**: they route attention, they never decide
//! outcomes. The signed document remains the only authority on what
//! happened (the `reconcile` oracle checks the trace against it); an alert
//! stream is just the earliest trustworthy-enough hint that something
//! needs a look. The one feedback edge is deliberate and safe: the runner
//! consults [`HealthMonitor::time_until_stuck`] so a supervisor can take
//! over a crashed hop when the instance is *observed* stuck instead of
//! pessimistically waiting out the full lease — acting earlier, never
//! differently.
//!
//! Everything is virtual-time arithmetic over the deterministic span
//! stream, so for a fixed seed the alert JSONL from
//! [`alerts_to_jsonl`] is byte-identical run after run — CI exports twice
//! and `cmp`s, the same contract traces have.

use dra_obs::{json_escape, stage, MetricsRegistry, TraceEvent, TraceSink, OUTCOME_CRASH};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Thresholds for the monitor's detectors, as a chainable builder.
///
/// The defaults are the values the repo's goldens were recorded under
/// (15 ms progress deadline, 4-attempt storm window, 4-takeover budget);
/// callers that need different trigger points — the federation controller,
/// threshold-sensitive tests — override per field:
///
/// ```
/// # use dra_cloud::MonitorConfig;
/// let cfg = MonitorConfig::new().with_retry_storm_attempts(2);
/// assert_eq!(cfg.retry_storm_attempts, 2);
/// assert_eq!(cfg.progress_deadline_us, MonitorConfig::new().progress_deadline_us);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitorConfig {
    /// An instance with no closed span for this long (virtual µs) is
    /// declared stuck. Deliberately shorter than the default supervisor
    /// lease (20 000 µs) so observation beats pessimistic waiting.
    pub progress_deadline_us: u64,
    /// A delivery that burned at least this many attempts is a retry
    /// storm (the delivery default budget is 8).
    pub retry_storm_attempts: u64,
    /// Crash takeovers at or above this count are a crash loop (matches
    /// `SupervisorPolicy::max_takeovers`' default).
    pub crash_loop_takeovers: u64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            progress_deadline_us: 15_000,
            retry_storm_attempts: 4,
            crash_loop_takeovers: 4,
        }
    }
}

impl MonitorConfig {
    /// The default thresholds (identical to [`Default`]).
    #[must_use]
    pub fn new() -> MonitorConfig {
        MonitorConfig::default()
    }

    /// Override the progress deadline (virtual µs).
    #[must_use]
    pub fn with_progress_deadline_us(mut self, us: u64) -> MonitorConfig {
        self.progress_deadline_us = us;
        self
    }

    /// Override the retry-storm attempt threshold.
    #[must_use]
    pub fn with_retry_storm_attempts(mut self, attempts: u64) -> MonitorConfig {
        self.retry_storm_attempts = attempts;
        self
    }

    /// Override the crash-loop takeover budget.
    #[must_use]
    pub fn with_crash_loop_takeovers(mut self, takeovers: u64) -> MonitorConfig {
        self.crash_loop_takeovers = takeovers;
        self
    }
}

/// What the monitor saw, and when (virtual µs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// Virtual time the alert fired.
    pub at_us: u64,
    /// The process instance it concerns.
    pub process_id: String,
    /// The pathology.
    pub kind: AlertKind,
}

/// Typed alert taxonomy. Every variant carries the observation *and* the
/// threshold it crossed, so an alert line is self-explaining.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// No span closed for the instance within the progress deadline.
    StuckInstance {
        /// Virtual µs since the last closed span.
        idle_us: u64,
        /// The deadline that was exceeded.
        deadline_us: u64,
    },
    /// One delivery burned `attempts` tries (threshold included).
    RetryStorm {
        /// The delivery target (`portal:N` or `transfer`), when recorded.
        target: String,
        /// Attempts the delivery cost.
        attempts: u64,
        /// The storm threshold.
        threshold: u64,
    },
    /// Crash takeovers reached the supervisor budget.
    CrashLoop {
        /// Crash-outcome hops observed for the instance.
        crashes: u64,
        /// The takeover budget.
        budget: u64,
    },
    /// End-to-end latency exceeded the declared SLO.
    SloBreach {
        /// Observed end-to-end latency, virtual µs.
        elapsed_us: u64,
        /// The declared SLO, virtual µs.
        slo_us: u64,
    },
    /// A portal served bytes whose wire digest failed full verification —
    /// the pool copy behind that portal can no longer be trusted. Raised
    /// by the federation layer, which also quarantines the portal.
    PortalTampered {
        /// The portal index that served the tampered bytes.
        portal: u64,
        /// Hex sha256 of the served (tampered) wire bytes.
        digest: String,
    },
    /// The continuous audit sampler found a stored document row that fails
    /// verification — the cloud holding it is storing bytes it cannot prove
    /// were honestly admitted. Raised by `cloud::audit`; the federation
    /// controller pumps it into quarantine of that cloud's portals.
    AuditDivergence {
        /// Index of the member cloud whose pool holds the divergent row.
        cloud: u64,
        /// The divergent row's pool key (`doc/{pid}/{seq}`).
        key: String,
    },
}

impl AlertKind {
    /// Stable snake_case tag used in the JSONL rendering and metric names.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            AlertKind::StuckInstance { .. } => "stuck_instance",
            AlertKind::RetryStorm { .. } => "retry_storm",
            AlertKind::CrashLoop { .. } => "crash_loop",
            AlertKind::SloBreach { .. } => "slo_breach",
            AlertKind::PortalTampered { .. } => "portal_tampered",
            AlertKind::AuditDivergence { .. } => "audit_divergence",
        }
    }
}

#[derive(Default)]
struct InstanceState {
    started_us: u64,
    last_progress_us: u64,
    stuck_flagged: bool,
    crashes: u64,
    crash_alerted: bool,
    slo_us: Option<u64>,
    finished: bool,
}

#[derive(Default)]
struct MonitorInner {
    instances: BTreeMap<String, InstanceState>,
    alerts: Vec<Alert>,
}

/// The online health monitor. Install it as a sink on the deployment's
/// tracer (`tracer.add_sink(monitor.clone())`) *and* hand it to
/// `InstanceRun::monitor(..)` so the supervisor can act on `StuckInstance`
/// observations.
pub struct HealthMonitor {
    config: MonitorConfig,
    inner: Mutex<MonitorInner>,
}

impl HealthMonitor {
    /// A monitor with the given thresholds, ready to install as a sink.
    pub fn new(config: MonitorConfig) -> Arc<HealthMonitor> {
        Arc::new(HealthMonitor { config, inner: Mutex::new(MonitorInner::default()) })
    }

    /// The thresholds this monitor applies.
    #[must_use]
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Declare an instance under watch, optionally with an end-to-end SLO
    /// (virtual µs). Progress accounting starts at `now_us`.
    pub fn instance_started(&self, process_id: &str, slo_us: Option<u64>, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let st = inner.instances.entry(process_id.to_string()).or_default();
        st.started_us = now_us;
        st.last_progress_us = st.last_progress_us.max(now_us);
        st.slo_us = slo_us;
        st.finished = false;
    }

    /// Declare an instance done; checks the SLO and stops stuck tracking.
    pub fn instance_finished(&self, process_id: &str, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(st) = inner.instances.get_mut(process_id) else { return };
        st.finished = true;
        let elapsed_us = now_us.saturating_sub(st.started_us);
        if let Some(slo_us) = st.slo_us {
            if elapsed_us > slo_us {
                inner.alerts.push(Alert {
                    at_us: now_us,
                    process_id: process_id.to_string(),
                    kind: AlertKind::SloBreach { elapsed_us, slo_us },
                });
            }
        }
    }

    /// Progress-deadline sweep: raise [`AlertKind::StuckInstance`] (once
    /// per stall — re-armed by the next progress) for every unfinished
    /// instance idle past the deadline. Call whenever virtual time has
    /// advanced without spans closing.
    pub fn tick(&self, now_us: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline_us = self.config.progress_deadline_us;
        let mut fired: Vec<Alert> = Vec::new();
        for (pid, st) in &mut inner.instances {
            let idle_us = now_us.saturating_sub(st.last_progress_us);
            if !st.finished && !st.stuck_flagged && idle_us > deadline_us {
                st.stuck_flagged = true;
                fired.push(Alert {
                    at_us: now_us,
                    process_id: pid.clone(),
                    kind: AlertKind::StuckInstance { idle_us, deadline_us },
                });
            }
        }
        inner.alerts.extend(fired);
    }

    /// Virtual µs until [`tick`](HealthMonitor::tick) would declare this
    /// instance stuck (0 when it already would). The supervisor uses this
    /// to wait no longer than observation requires.
    #[must_use]
    pub fn time_until_stuck(&self, process_id: &str, now_us: u64) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let horizon = self.config.progress_deadline_us + 1;
        match inner.instances.get(process_id) {
            Some(st) => (st.last_progress_us + horizon).saturating_sub(now_us),
            None => horizon,
        }
    }

    /// Snapshot of every alert fired so far, in firing order.
    #[must_use]
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).alerts.clone()
    }

    /// Incremental alert feed: every alert fired since `cursor`, plus the
    /// new cursor. Consumers that must *react* to alerts (the federation
    /// controller) poll this instead of re-scanning the whole stream, so
    /// each alert is acted on exactly once.
    #[must_use]
    pub fn alerts_since(&self, cursor: usize) -> (Vec<Alert>, usize) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let fresh = inner.alerts.get(cursor..).unwrap_or(&[]).to_vec();
        (fresh, inner.alerts.len())
    }

    /// Push an externally observed alert through the monitor's stream, so
    /// control-plane observations (e.g. [`AlertKind::PortalTampered`] from
    /// the federation layer) interleave with the sink-derived ones in one
    /// deterministic, exportable sequence.
    pub fn raise(&self, alert: Alert) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).alerts.push(alert);
    }

    /// Export alert counts: `alerts.stuck`, `alerts.retry_storm`,
    /// `alerts.crash_loop`, `alerts.slo_breach`, `alerts.portal_tampered`,
    /// `alerts.audit_divergence` and `alerts.total`.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        let alerts = self.alerts();
        let count = |tag: &str| alerts.iter().filter(|a| a.kind.tag() == tag).count() as u64;
        metrics.set_counter("alerts.stuck", count("stuck_instance"));
        metrics.set_counter("alerts.retry_storm", count("retry_storm"));
        metrics.set_counter("alerts.crash_loop", count("crash_loop"));
        metrics.set_counter("alerts.slo_breach", count("slo_breach"));
        metrics.set_counter("alerts.portal_tampered", count("portal_tampered"));
        metrics.set_counter("alerts.audit_divergence", count("audit_divergence"));
        metrics.set_counter("alerts.total", alerts.len() as u64);
    }
}

impl TraceSink for HealthMonitor {
    fn on_span(&self, event: &TraceEvent) {
        if event.process_id.is_empty() {
            return; // not attributable to an instance
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut fired: Vec<Alert> = Vec::new();
        let st = inner.instances.entry(event.process_id.clone()).or_default();

        if event.stage == stage::HOP && event.outcome == OUTCOME_CRASH {
            // a crashed hop is not progress — it is evidence of the opposite
            st.crashes += 1;
            if st.crashes >= self.config.crash_loop_takeovers && !st.crash_alerted {
                st.crash_alerted = true;
                fired.push(Alert {
                    at_us: event.end_us,
                    process_id: event.process_id.clone(),
                    kind: AlertKind::CrashLoop {
                        crashes: st.crashes,
                        budget: self.config.crash_loop_takeovers,
                    },
                });
            }
        } else {
            st.last_progress_us = st.last_progress_us.max(event.end_us);
            st.stuck_flagged = false;
        }

        if event.stage == stage::DELIVER {
            let attempts = event.attr("attempts").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            if attempts >= self.config.retry_storm_attempts {
                let target = event.attr("target").unwrap_or("").to_string();
                fired.push(Alert {
                    at_us: event.end_us,
                    process_id: event.process_id.clone(),
                    kind: AlertKind::RetryStorm {
                        target,
                        attempts,
                        threshold: self.config.retry_storm_attempts,
                    },
                });
            }
        }
        inner.alerts.extend(fired);
    }
}

/// Render alerts as byte-deterministic JSONL: one alert per line, fixed
/// key order, trailing newline — the same contract as trace JSONL.
#[must_use]
pub fn alerts_to_jsonl(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        let head = format!(
            "{{\"at_us\":{},\"process\":\"{}\",\"kind\":\"{}\"",
            a.at_us,
            json_escape(&a.process_id),
            a.kind.tag()
        );
        out.push_str(&head);
        match &a.kind {
            AlertKind::StuckInstance { idle_us, deadline_us } => {
                out.push_str(&format!(",\"idle_us\":{idle_us},\"deadline_us\":{deadline_us}"));
            }
            AlertKind::RetryStorm { target, attempts, threshold } => {
                out.push_str(&format!(
                    ",\"target\":\"{}\",\"attempts\":{attempts},\"threshold\":{threshold}",
                    json_escape(target)
                ));
            }
            AlertKind::CrashLoop { crashes, budget } => {
                out.push_str(&format!(",\"crashes\":{crashes},\"budget\":{budget}"));
            }
            AlertKind::SloBreach { elapsed_us, slo_us } => {
                out.push_str(&format!(",\"elapsed_us\":{elapsed_us},\"slo_us\":{slo_us}"));
            }
            AlertKind::PortalTampered { portal, digest } => {
                out.push_str(&format!(
                    ",\"portal\":{portal},\"digest\":\"{}\"",
                    json_escape(digest)
                ));
            }
            AlertKind::AuditDivergence { cloud, key } => {
                out.push_str(&format!(",\"cloud\":{cloud},\"key\":\"{}\"", json_escape(key)));
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_obs::Tracer;

    fn monitor() -> Arc<HealthMonitor> {
        HealthMonitor::new(MonitorConfig::default())
    }

    #[test]
    fn progress_resets_the_stuck_detector() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        m.instance_started("p", None, 0);
        t.span("hop").process("p").end();
        m.tick(10_000);
        assert!(m.alerts().is_empty(), "within deadline: no alert");
        m.tick(20_000);
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert!(matches!(alerts[0].kind, AlertKind::StuckInstance { .. }));
        m.tick(30_000);
        assert_eq!(m.alerts().len(), 1, "one alert per stall, not per tick");
        t.span("hop").process("p").end();
        m.tick(100_000);
        assert_eq!(m.alerts().len(), 2, "fresh progress re-arms the detector");
    }

    #[test]
    fn finished_instances_are_not_stuck() {
        let m = monitor();
        m.instance_started("p", None, 0);
        m.instance_finished("p", 5_000);
        m.tick(1_000_000);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn slo_breach_fires_only_over_budget() {
        let m = monitor();
        m.instance_started("fast", Some(10_000), 0);
        m.instance_finished("fast", 9_999);
        m.instance_started("slow", Some(10_000), 0);
        m.instance_finished("slow", 10_001);
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].process_id, "slow");
        assert_eq!(alerts[0].kind, AlertKind::SloBreach { elapsed_us: 10_001, slo_us: 10_000 });
    }

    #[test]
    fn retry_storm_reads_the_attempts_attr() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        let mut calm = t.span("deliver").process("p");
        calm.attr("target", "portal:1");
        calm.attr("attempts", 3);
        calm.end();
        assert!(m.alerts().is_empty(), "below threshold");
        let mut storm = t.span("deliver").process("p");
        storm.attr("target", "portal:2");
        storm.attr("attempts", 4);
        storm.end();
        let alerts = m.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::RetryStorm { target: "portal:2".into(), attempts: 4, threshold: 4 }
        );
    }

    #[test]
    fn crash_loop_fires_once_at_budget() {
        let m = monitor();
        let t = Tracer::sequential();
        t.add_sink(Arc::<HealthMonitor>::clone(&m));
        for _ in 0..5 {
            t.span("hop").process("p").end_with(OUTCOME_CRASH);
        }
        let alerts = m.alerts();
        let crash_loops: Vec<&Alert> =
            alerts.iter().filter(|a| matches!(a.kind, AlertKind::CrashLoop { .. })).collect();
        assert_eq!(crash_loops.len(), 1, "fires once at the budget, not on every crash after");
        assert_eq!(crash_loops[0].kind, AlertKind::CrashLoop { crashes: 4, budget: 4 });
    }

    #[test]
    fn time_until_stuck_counts_down_from_progress() {
        let m = monitor();
        m.instance_started("p", None, 1_000);
        assert_eq!(m.time_until_stuck("p", 1_000), 15_001);
        assert_eq!(m.time_until_stuck("p", 10_000), 6_001);
        assert_eq!(m.time_until_stuck("p", 50_000), 0);
        assert_eq!(m.time_until_stuck("never-seen", 0), 15_001);
    }

    #[test]
    fn jsonl_is_deterministic_and_tagged() {
        let m = monitor();
        m.instance_started("p", Some(1), 0);
        m.instance_finished("p", 10);
        m.tick(99_999); // p finished: no stuck alert
        let rendered = alerts_to_jsonl(&m.alerts());
        assert_eq!(rendered, "{\"at_us\":10,\"process\":\"p\",\"kind\":\"slo_breach\",\"elapsed_us\":10,\"slo_us\":1}\n");
        assert_eq!(rendered, alerts_to_jsonl(&m.alerts()));
    }

    #[test]
    fn config_builder_overrides_one_field_at_a_time() {
        let cfg = MonitorConfig::new()
            .with_progress_deadline_us(9_000)
            .with_retry_storm_attempts(2)
            .with_crash_loop_takeovers(1);
        assert_eq!(cfg.progress_deadline_us, 9_000);
        assert_eq!(cfg.retry_storm_attempts, 2);
        assert_eq!(cfg.crash_loop_takeovers, 1);
        // defaults match the golden-recorded thresholds exactly
        assert_eq!(
            MonitorConfig::new(),
            MonitorConfig {
                progress_deadline_us: 15_000,
                retry_storm_attempts: 4,
                crash_loop_takeovers: 4
            }
        );
    }

    #[test]
    fn alerts_since_is_an_exactly_once_cursor() {
        let m = monitor();
        let (fresh, cursor) = m.alerts_since(0);
        assert!(fresh.is_empty());
        m.raise(Alert {
            at_us: 5,
            process_id: "p".into(),
            kind: AlertKind::PortalTampered { portal: 2, digest: "ab".into() },
        });
        let (fresh, cursor) = m.alerts_since(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].kind.tag(), "portal_tampered");
        let (fresh, _) = m.alerts_since(cursor);
        assert!(fresh.is_empty(), "already consumed");
    }

    #[test]
    fn portal_tampered_renders_and_counts() {
        let m = monitor();
        m.raise(Alert {
            at_us: 7,
            process_id: "p".into(),
            kind: AlertKind::PortalTampered { portal: 1, digest: "deadbeef".into() },
        });
        assert_eq!(
            alerts_to_jsonl(&m.alerts()),
            "{\"at_us\":7,\"process\":\"p\",\"kind\":\"portal_tampered\",\"portal\":1,\"digest\":\"deadbeef\"}\n"
        );
        let metrics = MetricsRegistry::new();
        m.export_metrics(&metrics);
        assert_eq!(metrics.snapshot().counter("alerts.portal_tampered"), 1);
    }

    #[test]
    fn audit_divergence_renders_and_counts() {
        let m = monitor();
        m.raise(Alert {
            at_us: 11,
            process_id: "p".into(),
            kind: AlertKind::AuditDivergence { cloud: 1, key: "doc/p/000002".into() },
        });
        assert_eq!(
            alerts_to_jsonl(&m.alerts()),
            "{\"at_us\":11,\"process\":\"p\",\"kind\":\"audit_divergence\",\"cloud\":1,\"key\":\"doc/p/000002\"}\n"
        );
        let metrics = MetricsRegistry::new();
        m.export_metrics(&metrics);
        assert_eq!(metrics.snapshot().counter("alerts.audit_divergence"), 1);
    }

    #[test]
    fn export_metrics_counts_by_kind() {
        let m = monitor();
        m.instance_started("p", Some(1), 0);
        m.instance_finished("p", 10);
        m.instance_started("q", None, 0);
        m.tick(100_000);
        let metrics = MetricsRegistry::new();
        m.export_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("alerts.slo_breach"), 1);
        assert_eq!(snap.counter("alerts.stuck"), 1);
        assert_eq!(snap.counter("alerts.crash_loop"), 0);
        assert_eq!(snap.counter("alerts.total"), 2);
    }
}
