//! Seeded, deterministic fault injection for the simulated network.
//!
//! The paper's engine-less claim rests on documents surviving hostile,
//! unreliable networks between enterprises — yet a plain [`NetworkSim`]
//! only *counts* traffic and assumes every hand-off arrives intact.
//! [`FaultyNetwork`] closes that gap: every logical send is subjected to a
//! configurable [`FaultProfile`] that can **drop**, **duplicate**,
//! **delay**, **reorder** and **bit-corrupt** the in-flight wire bytes.
//!
//! Two properties make the injector a usable testbed rather than a chaos
//! monkey:
//!
//! * **Determinism** — all fault decisions come from one seeded xoshiro
//!   stream, so the same seed + profile replays the exact same fault
//!   schedule (and therefore the same [`DeliveryStats`]).
//! * **Faults cost time, never safety** — a dropped or reordered copy is
//!   retried by the delivery layer, a duplicated copy is suppressed by the
//!   portal's wire-digest idempotency, and a corrupted copy fails the
//!   portal's full-verification fallback before it can reach the pool.
//!
//! [`DeliveryStats`]: crate::delivery::DeliveryStats

use crate::netsim::NetworkSim;
use dra4wfms_core::error::{WfError, WfResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-copy fault probabilities and magnitudes for a [`FaultyNetwork`].
///
/// All rates are probabilities in `[0, 1)` applied independently per
/// physical copy (`drop`, `corrupt`, `reorder`) or per logical send
/// (`duplicate`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability a physical copy vanishes in flight.
    pub drop: f64,
    /// Probability a logical send emits a second physical copy.
    pub duplicate: f64,
    /// Probability a delivered copy has one wire byte corrupted.
    pub corrupt: f64,
    /// Probability a delivered copy is deferred into the receiver's
    /// redelivery queue and arrives out of order (after later sends).
    pub reorder: f64,
    /// Upper bound on the extra per-copy virtual delay, drawn uniformly
    /// from `[0, delay_max_us]` microseconds.
    pub delay_max_us: u64,
}

impl FaultProfile {
    /// A perfect channel: no faults at all.
    pub fn lossless() -> FaultProfile {
        FaultProfile { drop: 0.0, duplicate: 0.0, corrupt: 0.0, reorder: 0.0, delay_max_us: 0 }
    }

    /// A lossy-but-honest channel: drops and duplicates at rate `p`, no
    /// corruption. This is the profile the acceptance criterion pins at
    /// `p = 0.10`.
    pub fn lossy(p: f64) -> FaultProfile {
        FaultProfile { drop: p, duplicate: p, corrupt: 0.0, reorder: 0.0, delay_max_us: 0 }
    }

    /// A hostile multi-cloud WAN: 15% drop, 15% duplication, 10% byte
    /// corruption, 10% reordering, up to 5 ms of injected jitter per copy.
    pub fn hostile() -> FaultProfile {
        FaultProfile {
            drop: 0.15,
            duplicate: 0.15,
            corrupt: 0.10,
            reorder: 0.10,
            delay_max_us: 5_000,
        }
    }

    /// Check every rate is a probability in `[0, 1)`.
    ///
    /// `drop = 1.0` is rejected because no retry budget can get a message
    /// through a channel that loses everything; rates above 1 are always
    /// caller bugs.
    pub fn validate(&self) -> WfResult<()> {
        for (name, rate) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("reorder", self.reorder),
        ] {
            if !(0.0..1.0).contains(&rate) || rate.is_nan() {
                return Err(WfError::Config(format!(
                    "fault rate '{name}' must be in [0, 1), got {rate}"
                )));
            }
        }
        Ok(())
    }
}

/// One physical copy of a sent message that reaches the receiver.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Corrupted wire bytes, or `None` when the copy arrived intact (the
    /// receiver then uses the original bytes without cloning them).
    pub payload: Option<String>,
    /// Fault-injected extra virtual delay for this copy, in microseconds.
    pub delay_us: u64,
    /// True when the copy was reordered: it must not be processed now but
    /// deferred into the redelivery queue, arriving after later sends.
    pub late: bool,
}

/// Snapshot of the faults a [`FaultyNetwork`] has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Physical copies that vanished in flight.
    pub dropped: u64,
    /// Extra physical copies emitted by duplication.
    pub duplicated: u64,
    /// Copies delivered with a corrupted wire byte.
    pub corrupted: u64,
    /// Copies deferred into the redelivery queue.
    pub reordered: u64,
    /// Total fault-injected delay across all copies, in microseconds.
    pub delayed_us: u64,
}

/// A [`NetworkSim`] wrapped in a seeded, deterministic fault injector.
///
/// Every physical copy — delivered, dropped or duplicated — is accounted on
/// the underlying [`NetworkSim`] (it left the sender and consumed the
/// wire), so virtual time reflects the *actual* traffic including waste.
pub struct FaultyNetwork {
    sim: Arc<NetworkSim>,
    profile: FaultProfile,
    rng: Mutex<StdRng>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    reordered: AtomicU64,
    delayed_us: AtomicU64,
}

impl FaultyNetwork {
    /// Wrap `sim` with fault injection per `profile`, seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`WfError::Config`] when the profile's rates are not
    /// probabilities in `[0, 1)`.
    pub fn new(sim: Arc<NetworkSim>, profile: FaultProfile, seed: u64) -> WfResult<FaultyNetwork> {
        profile.validate()?;
        Ok(FaultyNetwork {
            sim,
            profile,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            delayed_us: AtomicU64::new(0),
        })
    }

    /// The underlying accounting network.
    pub fn sim(&self) -> &Arc<NetworkSim> {
        &self.sim
    }

    /// The active fault profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Send one logical message of `wire` bytes through the faulty channel.
    ///
    /// Returns the physical copies that reach the receiver — possibly none
    /// (dropped), possibly two (duplicated), each possibly corrupted,
    /// delayed or deferred. Every physical copy, delivered or not, is
    /// charged to the underlying [`NetworkSim`].
    pub fn send(&self, wire: &str) -> Vec<Arrival> {
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let copies = if rng.gen::<f64>() < self.profile.duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            2
        } else {
            1
        };
        let mut arrivals = Vec::with_capacity(copies);
        for _ in 0..copies {
            // the copy left the sender: it consumes wire and latency even
            // when it never arrives
            self.sim.transfer(wire.len());
            if rng.gen::<f64>() < self.profile.drop {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let payload = if rng.gen::<f64>() < self.profile.corrupt {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                Some(corrupt_one_byte(wire, &mut rng))
            } else {
                None
            };
            let delay_us = if self.profile.delay_max_us > 0 {
                let d = rng.gen_range(0..=self.profile.delay_max_us);
                self.delayed_us.fetch_add(d, Ordering::Relaxed);
                d
            } else {
                0
            };
            let late = rng.gen::<f64>() < self.profile.reorder;
            if late {
                self.reordered.fetch_add(1, Ordering::Relaxed);
            }
            arrivals.push(Arrival { payload, delay_us, late });
        }
        arrivals
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            delayed_us: self.delayed_us.load(Ordering::Relaxed),
        }
    }
}

/// Replace one byte of `wire` with a different printable ASCII byte at a
/// position chosen to hold a single-byte UTF-8 character, keeping the copy
/// a valid (if tampered) `String`. One byte is the minimal corruption — if
/// the verification pipeline catches that, it catches anything larger.
fn corrupt_one_byte(wire: &str, rng: &mut StdRng) -> String {
    let mut bytes = wire.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let start = rng.gen_range(0..bytes.len());
    // scan forward (wrapping) to the nearest ASCII byte so the mutation
    // cannot split a multi-byte character
    let idx = (0..bytes.len())
        .map(|off| (start + off) % bytes.len())
        .find(|&i| bytes[i].is_ascii())
        .unwrap_or(start);
    let replacement = loop {
        let candidate = b'!' + (rng.gen_range(0..94u8)); // printable ASCII 0x21..=0x7e
        if candidate != bytes[idx] {
            break candidate;
        }
    };
    bytes[idx] = replacement;
    String::from_utf8(bytes).expect("ASCII-for-ASCII substitution preserves UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(profile: FaultProfile, seed: u64) -> FaultyNetwork {
        FaultyNetwork::new(Arc::new(NetworkSim::lan()), profile, seed).unwrap()
    }

    #[test]
    fn lossless_profile_delivers_everything_intact() {
        let n = net(FaultProfile::lossless(), 1);
        for _ in 0..100 {
            let arrivals = n.send("<doc>payload</doc>");
            assert_eq!(arrivals.len(), 1);
            assert!(arrivals[0].payload.is_none());
            assert_eq!(arrivals[0].delay_us, 0);
            assert!(!arrivals[0].late);
        }
        assert_eq!(n.counts(), FaultCounts::default());
        assert_eq!(n.sim().messages(), 100);
    }

    #[test]
    fn same_seed_replays_the_same_fault_schedule() {
        let a = net(FaultProfile::hostile(), 42);
        let b = net(FaultProfile::hostile(), 42);
        for _ in 0..200 {
            let xa = a.send("0123456789abcdef");
            let xb = b.send("0123456789abcdef");
            assert_eq!(xa.len(), xb.len());
            for (pa, pb) in xa.iter().zip(&xb) {
                assert_eq!(pa.payload, pb.payload);
                assert_eq!(pa.delay_us, pb.delay_us);
                assert_eq!(pa.late, pb.late);
            }
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn fault_rates_manifest_roughly_as_configured() {
        let n = net(FaultProfile { drop: 0.3, ..FaultProfile::lossless() }, 7);
        let mut delivered = 0;
        for _ in 0..1000 {
            delivered += n.send("x".repeat(64).as_str()).len();
        }
        let dropped = n.counts().dropped;
        assert_eq!(delivered as u64 + dropped, 1000);
        assert!((200..400).contains(&dropped), "≈30% of 1000, got {dropped}");
    }

    #[test]
    fn corruption_changes_exactly_one_byte() {
        let n = net(FaultProfile { corrupt: 1.0 - f64::EPSILON, ..FaultProfile::lossless() }, 3);
        let wire = "<Element attr=\"value\">text content</Element>";
        for _ in 0..50 {
            let arrivals = n.send(wire);
            let corrupted = arrivals[0].payload.as_ref().expect("always corrupted");
            assert_eq!(corrupted.len(), wire.len());
            let diffs = corrupted.bytes().zip(wire.bytes()).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1, "exactly one byte flipped");
        }
    }

    #[test]
    fn invalid_rates_rejected() {
        let sim = Arc::new(NetworkSim::lan());
        for bad in [
            FaultProfile { drop: 1.0, ..FaultProfile::lossless() },
            FaultProfile { duplicate: -0.1, ..FaultProfile::lossless() },
            FaultProfile { corrupt: f64::NAN, ..FaultProfile::lossless() },
        ] {
            assert!(matches!(
                FaultyNetwork::new(Arc::clone(&sim), bad, 0),
                Err(WfError::Config(_))
            ));
        }
    }

    #[test]
    fn dropped_copies_still_consume_the_wire() {
        let n = net(FaultProfile { drop: 0.5, ..FaultProfile::lossless() }, 11);
        for _ in 0..100 {
            n.send("0123456789");
        }
        assert_eq!(n.sim().messages(), 100, "every copy is charged, delivered or not");
        assert_eq!(n.sim().bytes(), 1000);
    }
}
