//! Seeded crash-fault schedules over the named injection points.
//!
//! A [`CrashPlan`] decides, deterministically, at which visit of which
//! injection point a component dies. It is the crash-side analogue of
//! [`crate::faults::FaultProfile`]: the same plan always kills the same
//! visit, so a recovery run is exactly reproducible — the property the
//! `claim_crash` bench sweeps to show byte-identical pools after recovery.
//!
//! A plan fires **once** and then disarms (single-crash schedules): the
//! recovered component revisits the same site during takeover and must get
//! through, exactly like a machine that stays up after its reboot.

use dra4wfms_core::faultpoint::{site, CrashHook};
use dra4wfms_core::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The injection points a plan can target, one per named site in
/// [`dra4wfms_core::faultpoint::site`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// The AEA dies right after verifying its input.
    AeaAfterVerify,
    /// The AEA dies before signing the result.
    AeaBeforeSign,
    /// The AEA dies after signing, before the send leaves.
    AeaAfterSign,
    /// The TFC dies between the timestamp draw and the re-encrypt.
    TfcAfterTimestamp,
    /// The portal dies between the seen-row and the document row.
    PortalBetweenSeenAndStore,
    /// A replica cloud dies after journalling an admission's ops but
    /// before committing them — the torn-replication hazard. Deliberately
    /// *not* part of [`CrashPoint::ALL`]/[`CrashPoint::BASIC`]: those
    /// sweep single-cloud deployments where the site is never visited;
    /// federation sweeps and tests schedule it explicitly.
    ReplicaBeforeCommit,
}

impl CrashPoint {
    /// Every single-cloud injection point, in sweep order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::AeaAfterVerify,
        CrashPoint::AeaBeforeSign,
        CrashPoint::AeaAfterSign,
        CrashPoint::TfcAfterTimestamp,
        CrashPoint::PortalBetweenSeenAndStore,
    ];

    /// The points reachable without a TFC server (the basic model).
    pub const BASIC: [CrashPoint; 4] = [
        CrashPoint::AeaAfterVerify,
        CrashPoint::AeaBeforeSign,
        CrashPoint::AeaAfterSign,
        CrashPoint::PortalBetweenSeenAndStore,
    ];

    /// The stable site name this point corresponds to.
    pub fn site(self) -> &'static str {
        match self {
            CrashPoint::AeaAfterVerify => site::AEA_AFTER_VERIFY,
            CrashPoint::AeaBeforeSign => site::AEA_BEFORE_SIGN,
            CrashPoint::AeaAfterSign => site::AEA_AFTER_SIGN,
            CrashPoint::TfcAfterTimestamp => site::TFC_AFTER_TIMESTAMP,
            CrashPoint::PortalBetweenSeenAndStore => site::PORTAL_BETWEEN_SEEN_AND_STORE,
            CrashPoint::ReplicaBeforeCommit => site::PORTAL_REPLICA_BEFORE_COMMIT,
        }
    }

    fn from_site(name: &str) -> Option<CrashPoint> {
        CrashPoint::ALL
            .into_iter()
            .chain([CrashPoint::ReplicaBeforeCommit])
            .find(|p| p.site() == name)
    }
}

/// A deterministic single-crash schedule: kill `point` on its `nth` visit.
pub struct CrashPlan {
    target: Option<(CrashPoint, u64)>,
    visits: AtomicU64,
    fired: AtomicBool,
    crashes: AtomicU64,
}

impl CrashPlan {
    /// A plan that never crashes anything.
    pub fn none() -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            target: None,
            visits: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            crashes: AtomicU64::new(0),
        })
    }

    /// Crash on the `nth` visit (1-based) of `point`, once.
    pub fn once(point: CrashPoint, nth: u64) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            target: Some((point, nth.max(1))),
            visits: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            crashes: AtomicU64::new(0),
        })
    }

    /// Seeded schedule: the visit to kill is drawn from `seed` in
    /// `[1, max_nth]`. Same seed + point + bound ⇒ same schedule.
    pub fn seeded(point: CrashPoint, seed: u64, max_nth: u64) -> Arc<CrashPlan> {
        Self::once(point, 1 + splitmix64(seed) % max_nth.max(1))
    }

    /// The scheduled (point, visit), if any.
    pub fn scheduled(&self) -> Option<(CrashPoint, u64)> {
        self.target
    }

    /// Crashes this plan has injected so far (0 or 1).
    pub fn crashes_injected(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Consult the plan at an injection point. Returns
    /// [`WfError::Crash`] exactly when this is the scheduled visit and the
    /// plan has not fired yet.
    pub fn check(&self, point: CrashPoint) -> WfResult<()> {
        let Some((target, nth)) = self.target else { return Ok(()) };
        if target != point {
            return Ok(());
        }
        let visit = self.visits.fetch_add(1, Ordering::Relaxed) + 1;
        if visit == nth && !self.fired.swap(true, Ordering::Relaxed) {
            self.crashes.fetch_add(1, Ordering::Relaxed);
            return Err(WfError::Crash(format!("{} (visit {visit})", point.site())));
        }
        Ok(())
    }

    /// Adapt the plan into the [`CrashHook`] seam core components take.
    pub fn hook(self: &Arc<Self>) -> CrashHook {
        let plan = Arc::clone(self);
        Arc::new(move |name| match CrashPoint::from_site(name) {
            Some(point) => plan.check(point),
            None => Ok(()),
        })
    }
}

/// SplitMix64 — tiny seeded mixer, enough to spread sweep seeds over visits
/// (shared with the federation layer's seeded outage/tamper plans).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_scheduled_visit() {
        let plan = CrashPlan::once(CrashPoint::AeaBeforeSign, 3);
        assert!(plan.check(CrashPoint::AeaBeforeSign).is_ok());
        assert!(plan.check(CrashPoint::AeaAfterVerify).is_ok(), "other points untouched");
        assert!(plan.check(CrashPoint::AeaBeforeSign).is_ok());
        assert!(matches!(plan.check(CrashPoint::AeaBeforeSign), Err(WfError::Crash(_))));
        assert_eq!(plan.crashes_injected(), 1);
        // disarmed: the recovered component revisits the site and survives
        assert!(plan.check(CrashPoint::AeaBeforeSign).is_ok());
        assert_eq!(plan.crashes_injected(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = CrashPlan::seeded(CrashPoint::TfcAfterTimestamp, seed, 12);
            let b = CrashPlan::seeded(CrashPoint::TfcAfterTimestamp, seed, 12);
            assert_eq!(a.scheduled(), b.scheduled());
            let (_, nth) = a.scheduled().unwrap();
            assert!((1..=12).contains(&nth));
        }
    }

    #[test]
    fn hook_translates_site_names() {
        let plan = CrashPlan::once(CrashPoint::PortalBetweenSeenAndStore, 1);
        let hook = plan.hook();
        assert!(hook("unknown:site").is_ok());
        assert!(matches!(hook(site::PORTAL_BETWEEN_SEEN_AND_STORE), Err(WfError::Crash(_))));
    }

    #[test]
    fn none_never_fires() {
        let plan = CrashPlan::none();
        for point in CrashPoint::ALL {
            for _ in 0..10 {
                assert!(plan.check(point).is_ok());
            }
        }
        assert_eq!(plan.crashes_injected(), 0);
        assert!(plan.scheduled().is_none());
    }
}
