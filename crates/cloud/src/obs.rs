//! Glue between the deployment and the `dra-obs` substrate: a tracer
//! clocked by the simulated network, and the cross-layer metric
//! invariants every healthy run must satisfy.
//!
//! The tracer's clock closes over [`NetworkSim::virtual_time_us`], so
//! spans are stamped in the same deterministic virtual time the delivery
//! layer charges — a fixed seed yields a byte-identical trace.

use crate::netsim::NetworkSim;
use dra_obs::{MetricsSnapshot, Tracer};
use std::sync::Arc;

/// A [`Tracer`] whose clock reads the deployment's virtual time.
///
/// Install the same tracer on every component of a deployment (AEAs, TFC,
/// `CloudSystem`, `Delivery`, `InstanceRun`) so their spans interleave on
/// one timeline.
pub fn tracer_for(network: &Arc<NetworkSim>) -> Tracer {
    let clock = Arc::clone(network);
    Tracer::new(Arc::new(move || clock.virtual_time_us()))
}

/// Check the cross-layer accounting invariants on an end-of-run snapshot.
///
/// * `delivery.delivered + delivery.faults.dropped ≥ delivery.sends` —
///   every send is either delivered or accounted to a drop fault (retries
///   may re-deliver, so the left side can exceed the right);
/// * `delivery.attempts ≥ delivery.sends` — each send costs at least one
///   attempt;
/// * `delivery.journal_replays ≤ delivery.crashes_injected` — replay only
///   ever repairs a crash that was actually injected;
/// * `alerts.stuck ≤ run.takeovers + run.timeouts` — every observed stall
///   is matched by a supervisor action (a takeover or a waited-out lease):
///   the monitor may act early, but never sees more stalls than the
///   supervisor handled;
/// * on a fault-free run (no injected faults, no crashes, no retries, no
///   supervisor takeovers or lease timeouts, no journal replays) the
///   monitor must stay silent: `alerts.stuck + alerts.retry_storm +
///   alerts.crash_loop == 0`. `alerts.slo_breach` is deliberately exempt —
///   an SLO can be missed by honest slowness with nothing injected at all;
/// * `sched.activations == portal.notifications` — every TO-DO
///   notification a portal published reached the activation bus exactly
///   once: none lost, none fabricated;
/// * `sched.dispatched ≤ sched.activations` — the scheduler never executes
///   a hop it was not woken for;
/// * on a fault-free run that actually dispatched hops, the bus drains to
///   empty (`sched.bus_depth == 0`): with no duplicates in flight, every
///   wake-up is consumed;
/// * on the same fault-free drain, `sched.or_join_parked == 0` — every
///   OR-join deferral resolves by drain end (sound definitions guarantee
///   upstream quiescence);
/// * `sched.cancelled_dispatches == 0` unconditionally — work withdrawn by
///   a cancellation region must never reach dispatch with a live inbox
///   entry;
/// * `federation.failovers ≤ federation.quarantines + federation.outages`
///   — the active cloud only ever moves on evidence: a confirmed outage or
///   a quarantine that emptied it;
/// * `alerts.portal_tampered ≤ federation.quarantines` — every tamper
///   alert is answered by a quarantine (the controller may also quarantine
///   on retry-storm evidence, so the right side can exceed the left);
/// * the fault-free clause above also demands
///   `federation.tampered_serves == 0` and counts `alerts.portal_tampered`
///   toward the forbidden alert noise;
/// * `audit.divergences == 0` on honest runs — the fault-free clause also
///   demands the continuous auditor found nothing, and counts
///   `alerts.audit_divergence` toward the forbidden alert noise (the
///   auditor must never raise false alarms on an honest pool). A run that
///   deliberately forges stored rows must say so via the
///   injector-maintained `audit.tampered_rows` counter — like
///   `delivery.crashes_injected`, it is the evidence that disqualifies the
///   run from the silence clause;
/// * `audit.divergences ≤ audit.tampered_rows` unconditionally — the
///   auditor only ever catches rows an injector actually forged: anything
///   beyond that count is a false positive;
/// * `audit.sampled ≤ pool.rows` — the auditor counts *distinct* rows, so
///   any number of sweeps can never claim more coverage than the pool
///   holds;
/// * `alerts.audit_divergence ≤ federation.quarantines + audit.divergences`
///   — on federated deployments every audit alert is answered by
///   quarantine; on single-cloud deployments (no controller) each alert is
///   at least backed by a recorded divergent row.
///
/// Counters a run never touched read as zero, so the checks degrade
/// gracefully on direct-path (no-delivery) and single-cloud runs (the
/// `federation.*` counters — `replicas_acked`, `quarantines`, `failovers`,
/// `outages`, `reroutes`, `tampered_serves` — only exist on federated
/// deployments). Returns a description of the first violated invariant.
pub fn check_metric_invariants(snapshot: &MetricsSnapshot) -> Result<(), String> {
    let sends = snapshot.counter("delivery.sends");
    let delivered = snapshot.counter("delivery.delivered");
    let dropped = snapshot.counter("delivery.faults.dropped");
    if delivered + dropped < sends {
        return Err(format!(
            "delivered ({delivered}) + dropped ({dropped}) < sends ({sends}): \
             a document vanished without a recorded drop fault"
        ));
    }
    let attempts = snapshot.counter("delivery.attempts");
    if sends > 0 && attempts < sends {
        return Err(format!("attempts ({attempts}) < sends ({sends}): a send cost no attempt"));
    }
    let replays = snapshot.counter("delivery.journal_replays");
    let crashes = snapshot.counter("delivery.crashes_injected");
    if replays > crashes {
        return Err(format!(
            "journal_replays ({replays}) > crashes_injected ({crashes}): \
             replay repaired more crashes than were injected"
        ));
    }
    let stuck = snapshot.counter("alerts.stuck");
    let takeovers = snapshot.counter("run.takeovers");
    let timeouts = snapshot.counter("run.timeouts");
    if stuck > takeovers + timeouts {
        return Err(format!(
            "alerts.stuck ({stuck}) > run.takeovers ({takeovers}) + run.timeouts ({timeouts}): \
             the monitor saw stalls the supervisor never handled"
        ));
    }
    // takeovers/timeouts/replays count as crash evidence too: agent, TFC
    // and portal crashes are injected outside the delivery layer, so
    // `delivery.crashes_injected` alone would miss them and falsely demand
    // silence from a monitor that correctly flagged a stalled hop
    let fault_free = crashes == 0
        && takeovers == 0
        && timeouts == 0
        && replays == 0
        && snapshot.counter("delivery.retries") == 0
        && snapshot.counter("federation.tampered_serves") == 0
        && snapshot.counter("audit.tampered_rows") == 0
        && ["dropped", "duplicated", "reordered", "delayed_us", "corrupted"]
            .iter()
            .all(|f| snapshot.counter(&format!("delivery.faults.{f}")) == 0);
    let audit_divergences = snapshot.counter("audit.divergences");
    if fault_free {
        let noise = stuck
            + snapshot.counter("alerts.retry_storm")
            + snapshot.counter("alerts.crash_loop")
            + snapshot.counter("alerts.portal_tampered")
            + snapshot.counter("alerts.audit_divergence");
        if noise > 0 {
            return Err(format!(
                "{noise} fault alert(s) on a fault-free run: \
                 the monitor raised false alarms with nothing injected"
            ));
        }
        if audit_divergences > 0 {
            return Err(format!(
                "audit.divergences ({audit_divergences}) > 0 on a fault-free run: \
                 the auditor flagged rows of an honest pool"
            ));
        }
    }
    let tampered_rows = snapshot.counter("audit.tampered_rows");
    if audit_divergences > tampered_rows {
        return Err(format!(
            "audit.divergences ({audit_divergences}) > audit.tampered_rows ({tampered_rows}): \
             the auditor flagged more rows than were ever forged"
        ));
    }
    let sampled = snapshot.counter("audit.sampled");
    let pool_rows = snapshot.counter("pool.rows");
    if sampled > pool_rows {
        return Err(format!(
            "audit.sampled ({sampled}) > pool.rows ({pool_rows}): \
             the auditor claims to have sampled rows the pool does not hold"
        ));
    }
    let failovers = snapshot.counter("federation.failovers");
    let quarantines = snapshot.counter("federation.quarantines");
    let outages = snapshot.counter("federation.outages");
    if failovers > quarantines + outages {
        return Err(format!(
            "federation.failovers ({failovers}) > federation.quarantines ({quarantines}) + \
             federation.outages ({outages}): the active cloud moved without evidence"
        ));
    }
    let tampered_alerts = snapshot.counter("alerts.portal_tampered");
    if tampered_alerts > quarantines {
        return Err(format!(
            "alerts.portal_tampered ({tampered_alerts}) > federation.quarantines ({quarantines}): \
             a tamper alert went unanswered"
        ));
    }
    let audit_alerts = snapshot.counter("alerts.audit_divergence");
    if audit_alerts > quarantines + audit_divergences {
        return Err(format!(
            "alerts.audit_divergence ({audit_alerts}) > federation.quarantines ({quarantines}) + \
             audit.divergences ({audit_divergences}): an audit alert has no divergent row \
             or quarantine behind it"
        ));
    }
    let activations = snapshot.counter("sched.activations");
    let notifications = snapshot.counter("portal.notifications");
    if activations != notifications {
        return Err(format!(
            "sched.activations ({activations}) != portal.notifications ({notifications}): \
             a TO-DO notification was lost or fabricated on the bus"
        ));
    }
    let dispatched = snapshot.counter("sched.dispatched");
    if dispatched > activations {
        return Err(format!(
            "sched.dispatched ({dispatched}) > sched.activations ({activations}): \
             the scheduler executed hops it was never woken for"
        ));
    }
    if fault_free && dispatched > 0 {
        let depth = snapshot.gauge("sched.bus_depth");
        if depth != 0 {
            return Err(format!(
                "sched.bus_depth ({depth}) != 0 after a fault-free drain: \
                 activations were left stranded on the bus"
            ));
        }
        let parked = snapshot.gauge("sched.or_join_parked");
        if parked != 0 {
            return Err(format!(
                "sched.or_join_parked ({parked}) != 0 after a fault-free drain: \
                 a synchronizing merge never resolved"
            ));
        }
    }
    let cancelled_dispatches = snapshot.counter("sched.cancelled_dispatches");
    if cancelled_dispatches != 0 {
        return Err(format!(
            "sched.cancelled_dispatches ({cancelled_dispatches}) != 0: \
             work a cancellation region withdrew was still about to dispatch"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra_obs::MetricsRegistry;

    #[test]
    fn tracer_reads_virtual_time() {
        let network = Arc::new(NetworkSim::lan());
        let tracer = tracer_for(&network);
        let before = tracer.now_us();
        network.advance(1_234);
        assert_eq!(tracer.now_us(), before + 1_234);
    }

    #[test]
    fn invariants_hold_on_empty_snapshot() {
        let metrics = MetricsRegistry::new();
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_vanished_documents() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("delivery.sends", 10);
        metrics.set_counter("delivery.delivered", 7);
        metrics.set_counter("delivery.faults.dropped", 2);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("vanished"), "got: {err}");
    }

    #[test]
    fn invariants_catch_phantom_replays() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("delivery.journal_replays", 3);
        metrics.set_counter("delivery.crashes_injected", 1);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("replay"), "got: {err}");
    }

    #[test]
    fn invariants_catch_evidence_free_failovers() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("federation.failovers", 2);
        metrics.set_counter("federation.quarantines", 1);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("without evidence"), "got: {err}");
        metrics.set_counter("federation.outages", 1);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_unanswered_tamper_alerts() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("alerts.portal_tampered", 1);
        metrics.set_counter("federation.tampered_serves", 1);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("unanswered"), "got: {err}");
        metrics.set_counter("federation.quarantines", 1);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_auditor_false_alarms_on_honest_runs() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("pool.rows", 10);
        metrics.set_counter("audit.sampled", 10);
        metrics.set_counter("audit.divergences", 1);
        metrics.set_counter("alerts.audit_divergence", 1);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("false alarms"), "got: {err}");
        // declared forgeries exempt the run from the silence clause and
        // back the divergence one-to-one
        metrics.set_counter("audit.tampered_rows", 1);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_divergences_beyond_declared_forgeries() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("audit.tampered_rows", 1);
        metrics.set_counter("audit.divergences", 2);
        metrics.set_counter("pool.rows", 10);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("more rows than were ever forged"), "got: {err}");
        metrics.set_counter("audit.tampered_rows", 2);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_phantom_audit_coverage() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("pool.rows", 5);
        metrics.set_counter("audit.sampled", 6);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("does not hold"), "got: {err}");
        metrics.set_counter("audit.sampled", 5);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn invariants_catch_unbacked_audit_alerts() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("audit.tampered_rows", 1); // declared forgery
        metrics.set_counter("alerts.audit_divergence", 2);
        metrics.set_counter("audit.divergences", 1);
        let err = check_metric_invariants(&metrics.snapshot()).unwrap_err();
        assert!(err.contains("audit alert"), "got: {err}");
        metrics.set_counter("federation.quarantines", 1);
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }

    #[test]
    fn tampered_serves_break_fault_free_silence() {
        let metrics = MetricsRegistry::new();
        metrics.set_counter("federation.tampered_serves", 1);
        metrics.set_counter("federation.quarantines", 1);
        metrics.set_counter("alerts.portal_tampered", 1);
        // a tampered serve disqualifies the run from the fault-free clause,
        // so the (correct) tamper alert is not treated as a false alarm
        check_metric_invariants(&metrics.snapshot()).unwrap();
    }
}
