//! A simulated network: counts messages and bytes instead of sleeping, so
//! benchmarks can compare communication costs deterministically.
//!
//! Virtual time = `messages · latency + bytes / bandwidth + waits`. The
//! paper's scalability arguments are about how much state must cross the
//! network (whole process instances for engine migration, routed documents
//! for DRA4WfMS) — this model exposes exactly that. The `waits` term is
//! contributed by the delivery layer ([`crate::delivery`]): injected fault
//! delays, ack timeouts and retry backoff all advance virtual time without
//! moving bytes.

use dra4wfms_core::error::{WfError, WfResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated-network accounting.
///
/// Units: latency is **microseconds per message**; bandwidth is **bytes per
/// microsecond**, which is numerically identical to MB/s (1 byte/µs =
/// 10⁶ bytes/s ≈ 1 MB/s).
#[derive(Debug)]
pub struct NetworkSim {
    /// Per-message latency in microseconds (µs/message).
    pub latency_us: u64,
    /// Bandwidth in bytes per microsecond (≡ MB/s). Never zero — the
    /// constructor rejects zero-bandwidth profiles.
    pub bytes_per_us: u64,
    messages: AtomicU64,
    bytes: AtomicU64,
    /// Virtual waiting time injected on top of transfer time (fault delays,
    /// retry backoff) in microseconds.
    waited_us: AtomicU64,
}

impl NetworkSim {
    /// A WAN-ish profile: 20 ms per hop, ~12.5 MB/s (100 Mbit).
    pub fn wan() -> NetworkSim {
        NetworkSim::profile(20_000, 12)
    }

    /// A LAN-ish profile: 200 µs per hop, ~125 MB/s.
    pub fn lan() -> NetworkSim {
        NetworkSim::profile(200, 125)
    }

    /// Custom profile. `latency_us` is µs per message, `bytes_per_us` is
    /// bytes per µs (≡ MB/s).
    ///
    /// # Errors
    ///
    /// Returns [`WfError::Config`] when `bytes_per_us` is zero: a
    /// zero-bandwidth network would make every transfer take infinite
    /// virtual time, and silently clamping it (as earlier versions did)
    /// hid mis-written profiles.
    pub fn new(latency_us: u64, bytes_per_us: u64) -> WfResult<NetworkSim> {
        if bytes_per_us == 0 {
            return Err(WfError::Config(
                "network bandwidth must be positive (bytes_per_us = 0 means nothing ever \
                 arrives; pass at least 1 byte/µs ≈ 1 MB/s)"
                    .into(),
            ));
        }
        Ok(NetworkSim::profile(latency_us, bytes_per_us))
    }

    /// Infallible internal constructor for the known-good named profiles.
    fn profile(latency_us: u64, bytes_per_us: u64) -> NetworkSim {
        debug_assert!(bytes_per_us > 0);
        NetworkSim {
            latency_us,
            bytes_per_us,
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            waited_us: AtomicU64::new(0),
        }
    }

    /// Record one message of `len` bytes.
    pub fn transfer(&self, len: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Advance virtual time by `us` microseconds without moving bytes —
    /// fault-injected delays, ack timeouts and retry backoff.
    pub fn advance(&self, us: u64) {
        self.waited_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Virtual waiting time injected via [`NetworkSim::advance`].
    pub fn waited_us(&self) -> u64 {
        self.waited_us.load(Ordering::Relaxed)
    }

    /// Accumulated virtual time in microseconds: transfer time plus waits.
    pub fn virtual_time_us(&self) -> u64 {
        self.messages() * self.latency_us + self.bytes() / self.bytes_per_us + self.waited_us()
    }

    /// Virtual time `messages` messages of `bytes` total bytes would take on
    /// this profile with no faults and no waits — the lossless baseline the
    /// delivery layer compares against.
    pub fn ideal_time_us(&self, messages: u64, bytes: u64) -> u64 {
        messages * self.latency_us + bytes / self.bytes_per_us
    }

    /// Reset the counters (between benchmark phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.waited_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let n = NetworkSim::new(1000, 10).unwrap();
        n.transfer(500);
        n.transfer(1500);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 2000);
        assert_eq!(n.virtual_time_us(), 2 * 1000 + 2000 / 10);
    }

    #[test]
    fn zero_bandwidth_is_a_constructor_error() {
        let err = NetworkSim::new(1000, 0).unwrap_err();
        assert!(matches!(err, WfError::Config(_)), "got {err}");
        // one byte per microsecond is the smallest valid profile
        assert!(NetworkSim::new(1000, 1).is_ok());
    }

    #[test]
    fn advance_adds_virtual_waits() {
        let n = NetworkSim::new(100, 10).unwrap();
        n.transfer(1000);
        let transfer_only = n.virtual_time_us();
        n.advance(5_000);
        assert_eq!(n.virtual_time_us(), transfer_only + 5_000);
        assert_eq!(n.waited_us(), 5_000);
    }

    #[test]
    fn ideal_time_matches_unfaulted_transfers() {
        let n = NetworkSim::new(1000, 10).unwrap();
        n.transfer(500);
        n.transfer(1500);
        assert_eq!(n.ideal_time_us(2, 2000), n.virtual_time_us());
    }

    #[test]
    fn reset_clears() {
        let n = NetworkSim::lan();
        n.transfer(100);
        n.advance(42);
        n.reset();
        assert_eq!(n.messages(), 0);
        assert_eq!(n.virtual_time_us(), 0);
    }

    #[test]
    fn profiles_ordered() {
        let wan = NetworkSim::wan();
        let lan = NetworkSim::lan();
        wan.transfer(10_000);
        lan.transfer(10_000);
        assert!(wan.virtual_time_us() > lan.virtual_time_us());
    }
}
