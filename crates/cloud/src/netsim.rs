//! A simulated network: counts messages and bytes instead of sleeping, so
//! benchmarks can compare communication costs deterministically.
//!
//! Virtual time = `messages · latency + bytes / bandwidth`. The paper's
//! scalability arguments are about how much state must cross the network
//! (whole process instances for engine migration, routed documents for
//! DRA4WfMS) — this model exposes exactly that.

use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated-network accounting.
#[derive(Debug)]
pub struct NetworkSim {
    /// Per-message latency in microseconds.
    pub latency_us: u64,
    /// Bandwidth in bytes per microsecond (i.e. MB/s).
    pub bytes_per_us: u64,
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetworkSim {
    /// A WAN-ish profile: 20 ms per hop, ~12.5 MB/s (100 Mbit).
    pub fn wan() -> NetworkSim {
        NetworkSim::new(20_000, 12)
    }

    /// A LAN-ish profile: 200 µs per hop, ~125 MB/s.
    pub fn lan() -> NetworkSim {
        NetworkSim::new(200, 125)
    }

    /// Custom profile.
    pub fn new(latency_us: u64, bytes_per_us: u64) -> NetworkSim {
        NetworkSim {
            latency_us,
            bytes_per_us: bytes_per_us.max(1),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Record one message of `len` bytes.
    pub fn transfer(&self, len: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Accumulated virtual transfer time in microseconds.
    pub fn virtual_time_us(&self) -> u64 {
        self.messages() * self.latency_us + self.bytes() / self.bytes_per_us
    }

    /// Reset the counters (between benchmark phases).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let n = NetworkSim::new(1000, 10);
        n.transfer(500);
        n.transfer(1500);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 2000);
        assert_eq!(n.virtual_time_us(), 2 * 1000 + 2000 / 10);
    }

    #[test]
    fn reset_clears() {
        let n = NetworkSim::lan();
        n.transfer(100);
        n.reset();
        assert_eq!(n.messages(), 0);
        assert_eq!(n.virtual_time_us(), 0);
    }

    #[test]
    fn profiles_ordered() {
        let wan = NetworkSim::wan();
        let lan = NetworkSim::lan();
        wan.transfer(10_000);
        lan.transfer(10_000);
        assert!(wan.virtual_time_us() > lan.virtual_time_us());
    }
}
