//! Continuous nonrepudiation auditor over the pool of stored documents.
//!
//! The serve-side integrity probe (PR 7) only inspects documents a user
//! actually asks for — a forged row that is *never served* sits in the pool
//! unchallenged. This module closes that gap: a [`PoolAuditor`] runs a
//! background pass in virtual time that samples stored `doc/` rows through
//! the typed scan API (bounded batches, family projection — never a full
//! table read), spot-checks every sampled version with the batched
//! [`Verifier`], and optionally reconciles completed processes against
//! their span trace via [`reconcile`].
//!
//! A row that fails any check raises a typed
//! [`AlertKind::AuditDivergence`] into the [`HealthMonitor`]; on federated
//! deployments the [`FederationController`] pump consumes the alert and
//! quarantines every portal of the indicted cloud. Divergences are
//! deduplicated per `(cloud, key)` so repeated sweeps over the same forged
//! row raise exactly one alert — `audit.divergences` counts *rows caught*,
//! not passes that saw them.
//!
//! Everything is deterministic: cursors advance in key order, sampling is
//! a bounded prefix scan, and the virtual clock decides when a pass is
//! due, so a double run of the same schedule audits the same rows in the
//! same order.
//!
//! [`FederationController`]: crate::federation::FederationController

use crate::monitor::{Alert, AlertKind, HealthMonitor};
use crate::portal::{CloudSystem, FAM_DOC, FAM_META, QUAL_XML};
use dra4wfms_core::prelude::*;
use dra_docpool::Scan;
use dra_obs::{MetricsRegistry, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, PoisonError};

/// Tuning knobs for the continuous auditor.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Rows sampled per member cloud per pass.
    pub batch: usize,
    /// Virtual-time interval between passes ([`PoolAuditor::due`]).
    pub period_us: u64,
    /// Worker threads for the scan and the batched signature checks.
    pub threads: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig { batch: 16, period_us: 250_000, threads: 2 }
    }
}

#[derive(Default)]
struct AuditState {
    /// Per-cloud resume cursor: the next `doc/` key to sample from.
    cursors: BTreeMap<String, String>,
    /// Distinct `(cloud, key)` pairs ever sampled — `audit.sampled` counts
    /// rows, not visits, so it stays ≤ the pool's row count across sweeps.
    sampled: BTreeSet<(String, String)>,
    /// Distinct `(cloud, key)` pairs that failed a check — alert once each.
    divergent: BTreeSet<(String, String)>,
    passes: u64,
    sweeps: u64,
    verified: u64,
    seen_misses: u64,
    reconciles: u64,
    next_due_us: u64,
}

/// The continuous audit sampler. One instance per deployment; drive it from
/// the scheduler loop (or any monitoring path) with
/// [`run_pass`](PoolAuditor::run_pass) whenever [`due`](PoolAuditor::due)
/// says the virtual period elapsed.
pub struct PoolAuditor {
    config: AuditConfig,
    state: Mutex<AuditState>,
}

impl PoolAuditor {
    /// An auditor with the given knobs; no pass has run yet, so the first
    /// [`due`](PoolAuditor::due) fires immediately.
    #[must_use]
    pub fn new(config: AuditConfig) -> PoolAuditor {
        PoolAuditor { config, state: Mutex::new(AuditState::default()) }
    }

    /// The knobs this auditor runs with.
    #[must_use]
    pub fn config(&self) -> AuditConfig {
        self.config
    }

    /// Has the virtual-time period elapsed since the last pass?
    #[must_use]
    pub fn due(&self, now_us: u64) -> bool {
        now_us >= self.lock().next_due_us
    }

    /// Run one audit pass at virtual instant `now_us`: per member cloud,
    /// sample the next [`AuditConfig::batch`] `doc/` rows after the cloud's
    /// cursor (projection-scanned, never a full table read), verify every
    /// sampled version with the batched [`Verifier`], and raise a typed
    /// [`AlertKind::AuditDivergence`] into `monitor` for each newly caught
    /// row. A cloud whose cursor runs off the end of its `doc/` range
    /// completes a sweep and wraps. Returns the number of *new* divergent
    /// rows this pass caught.
    pub fn run_pass(
        &self,
        sys: &CloudSystem,
        monitor: Option<&HealthMonitor>,
        now_us: u64,
    ) -> usize {
        let mut st = self.lock();
        st.passes += 1;
        st.next_due_us = now_us + self.config.period_us;
        let mut caught = 0usize;

        for (cloud_name, cloud_idx, pool) in sys.audit_pools() {
            let cursor = st.cursors.get(&cloud_name).cloned().unwrap_or_else(|| "doc/".to_string());
            let scan = Scan::prefix("doc/")
                .family(FAM_DOC)
                .starting_at(&cursor)
                .limit(self.config.batch)
                .threads(self.config.threads);
            let result = pool.query(&scan);
            if result.rows.is_empty() {
                // the cursor ran off the end of the doc/ range: sweep done
                if cursor != "doc/" {
                    st.sweeps += 1;
                    st.cursors.insert(cloud_name.clone(), "doc/".to_string());
                }
                continue;
            }

            // Parse every sampled version; a missing cell, unparseable
            // bytes or a digest with no `seen/` admission row are already
            // suspicious, but the signature pass is the authority.
            let mut keys: Vec<String> = Vec::new();
            let mut docs: Vec<DraDocument> = Vec::new();
            for (key, snap) in &result.rows {
                st.sampled.insert((cloud_name.clone(), key.clone()));
                let Some(xml) = snap.get_str(FAM_DOC, QUAL_XML) else {
                    caught += usize::from(Self::flag(
                        &mut st,
                        monitor,
                        now_us,
                        &cloud_name,
                        cloud_idx,
                        key,
                    ));
                    continue;
                };
                let digest = dra_crypto::sha256(xml.as_bytes());
                let seen_key = format!("seen/{}", dra_crypto::hex::encode(&digest));
                if pool.get_str(&seen_key, FAM_META, "seq").is_none() {
                    st.seen_misses += 1;
                }
                match DraDocument::parse(&xml) {
                    Ok(doc) => {
                        keys.push(key.clone());
                        docs.push(doc);
                    }
                    Err(_) => {
                        caught += usize::from(Self::flag(
                            &mut st,
                            monitor,
                            now_us,
                            &cloud_name,
                            cloud_idx,
                            key,
                        ));
                    }
                }
            }

            // Batched spot-check: one bulk verifier run over the sample.
            let outcomes = Verifier::new(&sys.directory)
                .threads(self.config.threads)
                .batched(true)
                .run_many(&docs);
            for ((key, doc), outcome) in keys.iter().zip(&docs).zip(outcomes) {
                // a stored row must also live under the process it proves
                let pid_matches = doc
                    .process_id()
                    .map(|pid| key.starts_with(&format!("doc/{pid}/")))
                    .unwrap_or(false);
                if outcome.is_ok() && pid_matches {
                    st.verified += 1;
                } else {
                    caught += usize::from(Self::flag(
                        &mut st,
                        monitor,
                        now_us,
                        &cloud_name,
                        cloud_idx,
                        key,
                    ));
                }
            }

            // resume strictly after the last sampled key next pass
            let last = &result.rows[result.rows.len() - 1].0;
            st.cursors.insert(cloud_name.clone(), format!("{last}\u{0}"));
        }
        caught
    }

    /// Spot-reconcile one *completed* process against its observed span
    /// trace: the latest stored version must prove exactly the executions
    /// the trace completed ([`reconcile`]). Running instances are skipped —
    /// their traces legitimately lead the stored document. Returns `false`
    /// (and raises [`AlertKind::AuditDivergence`]) when the oracle rejects.
    pub fn spot_reconcile(
        &self,
        sys: &CloudSystem,
        monitor: Option<&HealthMonitor>,
        process_id: &str,
        trace: &[TraceEvent],
        now_us: u64,
    ) -> bool {
        for (cloud_name, cloud_idx, pool) in sys.audit_pools() {
            let status = pool.get_str(&format!("meta/{process_id}"), FAM_META, "status");
            if status.as_deref() != Some("complete") {
                continue;
            }
            let rows = pool.query(&Scan::prefix(&format!("doc/{process_id}/")).family(FAM_DOC));
            let Some((key, snap)) = rows.rows.last() else { continue };
            let mut st = self.lock();
            st.reconciles += 1;
            let ok = snap
                .get_str(FAM_DOC, QUAL_XML)
                .and_then(|xml| DraDocument::parse(&xml).ok())
                .is_some_and(|doc| reconcile(trace, &doc).is_ok());
            if !ok {
                Self::flag(&mut st, monitor, now_us, &cloud_name, cloud_idx, key);
                return false;
            }
        }
        true
    }

    /// Export `audit.*` counters: passes, completed sweeps, distinct rows
    /// sampled, versions verified, `seen/`-probe misses, reconciliations
    /// run, and distinct divergent rows caught.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        let st = self.lock();
        metrics.set_counter("audit.passes", st.passes);
        metrics.set_counter("audit.sweeps", st.sweeps);
        metrics.set_counter("audit.sampled", st.sampled.len() as u64);
        metrics.set_counter("audit.verified", st.verified);
        metrics.set_counter("audit.seen_misses", st.seen_misses);
        metrics.set_counter("audit.reconciles", st.reconciles);
        metrics.set_counter("audit.divergences", st.divergent.len() as u64);
    }

    /// The distinct divergent rows caught so far, as `(cloud, key)` pairs.
    #[must_use]
    pub fn divergent_rows(&self) -> Vec<(String, String)> {
        self.lock().divergent.iter().cloned().collect()
    }

    /// Distinct rows sampled so far.
    #[must_use]
    pub fn sampled_rows(&self) -> usize {
        self.lock().sampled.len()
    }

    /// Record a newly divergent row (idempotent per `(cloud, key)`); raise
    /// the typed alert only on first detection.
    fn flag(
        st: &mut AuditState,
        monitor: Option<&HealthMonitor>,
        now_us: u64,
        cloud_name: &str,
        cloud_idx: usize,
        key: &str,
    ) -> bool {
        if !st.divergent.insert((cloud_name.to_string(), key.to_string())) {
            return false;
        }
        if let Some(monitor) = monitor {
            let pid = key
                .strip_prefix("doc/")
                .and_then(|rest| rest.split('/').next())
                .unwrap_or(key)
                .to_string();
            monitor.raise(Alert {
                at_us: now_us,
                process_id: pid,
                kind: AlertKind::AuditDivergence { cloud: cloud_idx as u64, key: key.to_string() },
            });
        }
        true
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AuditState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorConfig;
    use crate::netsim::NetworkSim;
    use std::sync::Arc;

    fn setup(instances: usize) -> CloudSystem {
        let designer = Credentials::from_seed("designer", "d");
        let alice = Credentials::from_seed("alice", "a");
        let bob = Credentials::from_seed("bob", "b");
        let def = WorkflowDefinition::builder("po", "designer")
            .simple_activity("submit", "alice", &["amount"])
            .simple_activity("approve", "bob", &["decision"])
            .flow("submit", "approve")
            .flow_end("approve")
            .build()
            .unwrap();
        let dir = Directory::from_credentials([&designer, &alice, &bob]);
        let sys = CloudSystem::new(dir, 2, Arc::new(NetworkSim::lan()));
        let pol = SecurityPolicy::public();
        for i in 0..instances {
            let doc =
                DraDocument::new_initial_with_pid(&def, &pol, &designer, &format!("a-{i:02}"))
                    .unwrap();
            let route = Route { targets: vec!["submit".into()], ends: false };
            sys.store_document(i % 2, &doc.to_xml_string(), &route).unwrap();
        }
        sys
    }

    #[test]
    fn honest_pool_audits_clean_across_full_sweep() {
        let sys = setup(5);
        let auditor = PoolAuditor::new(AuditConfig { batch: 2, period_us: 100, threads: 2 });
        assert!(auditor.due(0));
        let mut clock = 0;
        // batch 2 over 5 rows: 3 passes drain, a 4th wraps the sweep
        for _ in 0..4 {
            assert_eq!(auditor.run_pass(&sys, None, clock), 0);
            clock += 100;
        }
        let metrics = MetricsRegistry::new();
        auditor.export_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("audit.divergences"), 0);
        assert_eq!(snap.counter("audit.sampled"), 5);
        assert_eq!(snap.counter("audit.verified"), 5);
        assert_eq!(snap.counter("audit.sweeps"), 1);
        assert_eq!(snap.counter("audit.seen_misses"), 0);
        assert_eq!(snap.counter("audit.passes"), 4);
        // periodicity: not due right after a pass, due after the period
        assert!(!auditor.due(clock - 50));
        assert!(auditor.due(clock + 100));
    }

    #[test]
    fn tampered_stored_row_is_caught_and_alerted_exactly_once() {
        let sys = setup(4);
        let monitor = HealthMonitor::new(MonitorConfig::default());
        // forge one stored row in place: case-flip a byte of a-01's version 0
        let key = "doc/a-01/000000";
        let xml = sys.pool.get_str(key, FAM_DOC, QUAL_XML).unwrap();
        let forged = crate::federation::tamper_bytes(&xml);
        assert_ne!(forged, xml);
        sys.pool.put(key, FAM_DOC, QUAL_XML, forged);

        let auditor = PoolAuditor::new(AuditConfig { batch: 16, period_us: 100, threads: 2 });
        let caught = auditor.run_pass(&sys, Some(&monitor), 7);
        assert_eq!(caught, 1);
        assert_eq!(auditor.divergent_rows(), vec![("cloud0".into(), key.to_string())]);
        let (alerts, _) = monitor.alerts_since(0);
        assert_eq!(alerts.len(), 1);
        assert!(matches!(
            &alerts[0].kind,
            AlertKind::AuditDivergence { cloud: 0, key: k } if k == key
        ));
        assert_eq!(alerts[0].process_id, "a-01");

        // a second sweep re-samples the same forged row but raises nothing new
        assert_eq!(auditor.run_pass(&sys, Some(&monitor), 207), 0);
        assert_eq!(auditor.run_pass(&sys, Some(&monitor), 307), 0);
        let (alerts, _) = monitor.alerts_since(0);
        assert_eq!(alerts.len(), 1, "alert per divergent row, not per pass");

        let metrics = MetricsRegistry::new();
        auditor.export_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("audit.divergences"), 1);
        assert!(snap.counter("audit.seen_misses") >= 1, "forged digest has no seen/ row");
        assert_eq!(snap.counter("audit.sampled"), 4);
    }

    #[test]
    fn spot_reconcile_accepts_empty_trace_only_for_unstarted_processes() {
        let sys = setup(1);
        let auditor = PoolAuditor::new(AuditConfig::default());
        // a-00 is not complete: the spot check skips it and stays clean
        assert!(auditor.spot_reconcile(&sys, None, "a-00", &[], 5));
        let metrics = MetricsRegistry::new();
        auditor.export_metrics(&metrics);
        assert_eq!(metrics.snapshot().counter("audit.reconciles"), 0);
    }
}
