//! Event-driven execution core: portal notifications drive the run loop.
//!
//! The paper's Fig. 7 scalability story is portals + the sharded pool
//! absorbing load a centralized engine cannot — yet the original
//! [`InstanceRun::run`] *was* a centralized engine: one in-memory queue
//! single-stepping one instance. This module inverts that control flow:
//!
//! * every TO-DO row a portal writes ([`CloudSystem::admit`]) also emits a
//!   typed [`Activation`] onto the deployment's [`ActivationBus`] — the
//!   paper's "the DRA4WfMS cloud system can inform the subsequent
//!   participant(s)" made operational instead of inert index rows;
//! * a [`Scheduler`] drains activations in deterministic virtual-time
//!   order, performs join-readiness and amendment re-folding, and
//!   dispatches hops to AEAs under the same lease-based crash supervision
//!   the per-instance loop used — so `notify` fires the next participant at
//!   O(1) with zero idle polling, and any number of instances interleave
//!   naturally over shared portals, delivery, leases and the monitor.
//!
//! ## Determinism
//!
//! The bus is a `BTreeMap` keyed by `(emit time, emission sequence)`.
//! Virtual time is monotone, so draining the map front-to-back replays the
//! exact emission order; a fixed seed therefore yields a byte-identical
//! pool and trace, fleet or single instance alike. Duplicate activations
//! (a retransmitted copy re-notifying, journal replay re-emitting a
//! repaired admission's TO-DO rows) are harmless by construction: they pop,
//! find the inbox already drained, and are counted as `sched.skipped` —
//! the same idempotency the legacy queue got from its membership check.
//!
//! ## Fairness
//!
//! Because activations are ordered by emission time, a fleet interleaves
//! breadth-first: every instance's step `k` dispatches before any
//! instance's step `k+1` that was notified later. No instance can starve
//! another — the bus is the only ready-list, and it is strictly FIFO in
//! virtual time.

use crate::delivery::DeliveryStats;
use crate::portal::CloudSystem;
use crate::runner::{InstanceRun, RunOutcome};
use dra4wfms_core::flow::join_ready;
use dra4wfms_core::prelude::*;
use dra_obs::{stage, MetricsRegistry};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One portal notification, typed: "participant, your activity of this
/// process is ready as of seq".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Activation {
    /// The participant whose TO-DO list grew.
    pub participant: String,
    /// Process instance id.
    pub process_id: String,
    /// The activity awaiting execution.
    pub activity: String,
    /// Pool sequence number of the document that triggered the notification.
    pub seq: usize,
    /// Virtual time of emission (portal-side).
    pub at_us: u64,
}

#[derive(Default)]
struct BusQueue {
    /// `(emit time, emission seq) → activation`: draining front-to-back is
    /// exactly emission order, because virtual time is monotone.
    ready: BTreeMap<(u64, u64), Activation>,
}

/// The deployment-wide activation bus portals publish to and the
/// [`Scheduler`] drains. Owned by the [`CloudSystem`]; shared by every
/// portal the same way the pool and the journal are.
#[derive(Default)]
pub struct ActivationBus {
    queue: Mutex<BusQueue>,
    emit_seq: AtomicU64,
    emitted: AtomicU64,
}

impl ActivationBus {
    /// An empty bus.
    pub fn new() -> ActivationBus {
        ActivationBus::default()
    }

    /// Publish one activation (portal-side, on writing a TO-DO row).
    pub fn emit(&self, activation: Activation) {
        let seq = self.emit_seq.fetch_add(1, Ordering::Relaxed);
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.ready.insert((activation.at_us, seq), activation);
    }

    /// Pop the oldest pending activation (scheduler-side).
    pub fn pop(&self) -> Option<Activation> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.ready.pop_first().map(|(_, a)| a)
    }

    /// Pop the oldest pending activation whose process satisfies `owned`,
    /// leaving the rest untouched. Concurrent schedulers share one bus the
    /// way portals share one pool — each must take only its own wake-ups,
    /// never steal another's.
    pub fn pop_owned(&self, owned: impl Fn(&str) -> bool) -> Option<Activation> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let key = q.ready.iter().find(|(_, a)| owned(&a.process_id)).map(|(k, _)| *k)?;
        q.ready.remove(&key)
    }

    /// Pending activations.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).ready.len()
    }

    /// Whether the bus is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total activations ever emitted — the number every portal
    /// notification must match (`sched.activations == portal.notifications`
    /// in [`crate::obs::check_metric_invariants`]).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Drop every pending activation of one process; returns how many were
    /// removed. Used when an instance leaves the scheduler (completion
    /// flush, terminal error) so stale duplicates never leak into the next
    /// run over the same deployment.
    pub fn drain_process(&self, process_id: &str) -> usize {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let before = q.ready.len();
        q.ready.retain(|_, a| a.process_id != process_id);
        before - q.ready.len()
    }

    /// Drop the pending activations of one `(process, activity)` pair;
    /// returns how many were removed. Used when a cancellation region
    /// withdraws work a portal had already announced.
    pub fn drain_activity(&self, process_id: &str, activity: &str) -> usize {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let before = q.ready.len();
        q.ready.retain(|_, a| !(a.process_id == process_id && a.activity == activity));
        before - q.ready.len()
    }

    /// Whether some pending activation of `process_id` targets an activity
    /// satisfying `matches`. The OR-join readiness probe: a synchronizing
    /// merge fires only once no upstream branch can still deliver.
    pub fn has_pending(&self, process_id: &str, matches: impl Fn(&str) -> bool) -> bool {
        let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.ready.values().any(|a| a.process_id == process_id && matches(&a.activity))
    }
}

/// Scheduler-side accounting, exported as `sched.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Activations that dispatched a hop.
    pub dispatched: u64,
    /// Activations that found nothing to do (duplicate notifications; the
    /// legacy queue's membership-dedup, observable).
    pub skipped: u64,
    /// Activations parked on an AND-join awaiting sibling branches.
    pub deferred: u64,
    /// Activations parked on an OR-join while an upstream branch could
    /// still deliver (the synchronizing-merge wait).
    pub or_join_waits: u64,
    /// Work items withdrawn by cancellation regions: inbox entries and bus
    /// activations removed when a trigger completed, plus late activations
    /// arriving for already-cancelled work.
    pub cancelled: u64,
    /// Activations for cancelled work that still found a live inbox entry —
    /// a withdrawal that failed to actually withdraw. Must stay zero; the
    /// metric invariants treat any other value as a scheduler bug.
    pub cancelled_dispatches: u64,
    /// Activations popped for processes this scheduler never admitted
    /// (dropped; defensive — `pop_owned` filters them out before the pop).
    pub foreign: u64,
}

/// Per-admitted-instance execution state: the builder's configuration plus
/// the inbox/progress the legacy loop kept on its stack.
struct Instance<'a> {
    run: InstanceRun<'a>,
    agents: &'a HashMap<String, Arc<Aea>>,
    respond: &'a crate::runner::Responder,
    pid: String,
    inbox: HashMap<String, Vec<SealedDocument>>,
    /// Activities whose pending work a cancellation region withdrew; their
    /// activations must never dispatch again (regions are acyclic by the
    /// soundness gate, so membership is permanent for the run).
    cancelled: std::collections::BTreeSet<String>,
    /// OR-joins parked until their upstream goes quiet; revisited after the
    /// bus drains (and by any later duplicate activation).
    or_parked: std::collections::BTreeSet<String>,
    steps: usize,
    signature_checks: usize,
    last_doc: SealedDocument,
    leases_expired: u64,
    crashes_supervised: u64,
    early_takeovers: u64,
    replays_at_start: u64,
    finished: bool,
    failed: Option<WfError>,
}

/// Drains the deployment's [`ActivationBus`] and dispatches hops.
///
/// One scheduler can drive any number of concurrently admitted instances;
/// [`InstanceRun::run`] is a single-instance facade over exactly this type.
pub struct Scheduler<'a> {
    system: &'a CloudSystem,
    order: Vec<String>,
    instances: HashMap<String, Instance<'a>>,
    stats: SchedStats,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `system`'s activation bus.
    pub fn new(system: &'a CloudSystem) -> Scheduler<'a> {
        Scheduler {
            system,
            order: Vec::new(),
            instances: HashMap::new(),
            stats: SchedStats::default(),
        }
    }

    /// Scheduler-side accounting so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Admit one configured instance: validate exactly as the legacy loop
    /// did, hook up the monitor, store the initial document (which notifies
    /// the start activity's participant — the activation that boots the
    /// instance), and register the inbox. Returns the process id.
    pub fn admit_instance(&mut self, run: InstanceRun<'a>) -> WfResult<String> {
        if !std::ptr::eq(run.system, self.system) {
            return Err(WfError::Config(
                "InstanceRun was built against a different CloudSystem".into(),
            ));
        }
        let agents =
            run.agents.ok_or_else(|| WfError::Config("InstanceRun needs .agents(..)".into()))?;
        let respond =
            run.respond.ok_or_else(|| WfError::Config("InstanceRun needs .respond(..)".into()))?;

        let (def, _) = dra4wfms_core::amendment::effective_definition(run.initial)?;
        def.validate()?;
        // unsound models never enter the run loop: a deadlocking join or an
        // orphaning cancellation would strand the instance mid-flight, long
        // after the designer could cheaply fix the definition
        dra4wfms_core::soundness::require_sound(&def)?;
        let pid = run.initial.process_id()?;
        if def.tfc.is_some() && run.tfc.is_none() {
            return Err(WfError::Policy(
                "definition uses the advanced model but no TFC server was provided".into(),
            ));
        }
        if self.instances.contains_key(&pid) {
            return Err(WfError::Config(format!("instance '{pid}' already admitted")));
        }
        if let Some(mon) = &run.monitor {
            run.tracer.add_sink(Arc::clone(mon) as Arc<dyn dra_obs::TraceSink>);
            mon.instance_started(&pid, run.slo_us, run.tracer.now_us());
            // on a federated deployment, the monitor's alert stream drives
            // the controller's quarantines — wire it up automatically
            if let Some(fed) = self.system.federation_controller() {
                fed.set_monitor(mon);
            }
        }

        // the initial document enters the pool; admission emits the
        // activation that wakes the start activity's participant
        let sealed_initial = SealedDocument::new(run.initial.clone());
        run.store(
            self.system.route_portal(self.system.portal_for(&pid, 0)),
            &sealed_initial,
            &Route { targets: vec![def.start.clone()], ends: false },
        )?;
        let replays_at_start = self.system.journal_replays();

        let mut inbox: HashMap<String, Vec<SealedDocument>> = HashMap::new();
        inbox.entry(def.start.clone()).or_default().push(sealed_initial.clone());

        self.order.push(pid.clone());
        self.instances.insert(
            pid.clone(),
            Instance {
                run,
                agents,
                respond,
                pid: pid.clone(),
                inbox,
                cancelled: Default::default(),
                or_parked: Default::default(),
                steps: 0,
                signature_checks: 0,
                last_doc: sealed_initial,
                leases_expired: 0,
                crashes_supervised: 0,
                early_takeovers: 0,
                replays_at_start,
                finished: false,
                failed: None,
            },
        );
        Ok(pid)
    }

    /// Drain the bus to empty, then finalize every admitted instance in
    /// admission order: flush delivery, fold crash/recovery accounting,
    /// export metrics (identically to the legacy loop, plus the `sched.*`
    /// family) and build each [`RunOutcome`].
    pub fn run_to_completion(&mut self) -> Vec<(String, WfResult<RunOutcome>)> {
        let bus = self.system.activation_bus();
        loop {
            // pop only own instances' activations: schedulers running
            // concurrently over one deployment share the bus, and a wake-up
            // taken by the wrong scheduler would strand the instance it woke
            while let Some(act) = bus.pop_owned(|pid| self.instances.contains_key(pid)) {
                let Some(inst) = self.instances.get_mut(&act.process_id) else {
                    self.stats.foreign += 1;
                    continue;
                };
                if inst.failed.is_some() {
                    self.stats.skipped += 1;
                    continue;
                }
                if let Err(e) = dispatch_one(self.system, inst, &act, &mut self.stats) {
                    inst.failed = Some(e);
                    // a dead instance's remaining activations are noise
                    self.stats.skipped += bus.drain_process(&act.process_id) as u64;
                }
            }
            // drain end: every upstream branch of a parked OR-join has now
            // either delivered or provably never will — fire the first
            // quiet one and rescan (its hop may refill the bus)
            if !self.fire_one_parked_or_join() {
                break;
            }
        }
        self.finalize_all()
    }

    /// Dispatch the first parked OR-join whose upstream is quiet, in
    /// admission order then activity order: deterministic. Returns whether
    /// one fired. Dispatch is direct — not a bus emission — so
    /// `sched.activations == portal.notifications` keeps holding.
    fn fire_one_parked_or_join(&mut self) -> bool {
        let bus = self.system.activation_bus();
        for pid in &self.order {
            let Some(inst) = self.instances.get_mut(pid) else { continue };
            if inst.failed.is_some() || inst.or_parked.is_empty() {
                continue;
            }
            let Some(activity) = inst.or_parked.iter().next().cloned() else { continue };
            let synthetic = Activation {
                participant: String::new(),
                process_id: pid.clone(),
                activity,
                seq: 0,
                at_us: inst.run.tracer.now_us(),
            };
            if let Err(e) = dispatch_one(self.system, inst, &synthetic, &mut self.stats) {
                inst.failed = Some(e);
                self.stats.skipped += bus.drain_process(pid) as u64;
            }
            return true;
        }
        false
    }

    /// Finalize and drain every admitted instance, in admission order.
    fn finalize_all(&mut self) -> Vec<(String, WfResult<RunOutcome>)> {
        let system = self.system;
        let bus = system.activation_bus();
        let mut results = Vec::with_capacity(self.order.len());
        let mut exported: Vec<&'a MetricsRegistry> = Vec::new();
        // parked OR-joins remaining at finalize: non-zero on a fault-free
        // drain means a synchronizing merge never resolved (a scheduler
        // bug — sound definitions guarantee quiescence by drain end)
        let or_join_parked: usize = self.instances.values().map(|i| i.or_parked.len()).sum();
        for pid in self.order.drain(..) {
            let Some(mut inst) = self.instances.remove(&pid) else { continue };
            if let Some(e) = inst.failed.take() {
                results.push((pid, Err(e)));
                continue;
            }

            // late reordered copies are ingested before stats are read, so
            // the same seed + profile always reports the same numbers; any
            // re-notification they triggered is stale by now
            let mut delivery = inst.run.delivery.map(|d| {
                d.flush(system);
                d.stats()
            });
            self.stats.skipped += bus.drain_process(&pid) as u64;

            // fold in crash/recovery accounting: the delivery layer counted
            // the crashes it absorbed on its own paths, the supervisor
            // counted the ones that reached the takeover loop — disjoint
            let replays = system.journal_replays() - inst.replays_at_start;
            if delivery.is_none() && (inst.crashes_supervised > 0 || replays > 0) {
                delivery = Some(DeliveryStats::default());
            }
            if let Some(stats) = delivery.as_mut() {
                stats.crashes_injected += inst.crashes_supervised;
                stats.leases_expired = inst.leases_expired;
                stats.journal_replays = replays;
            }

            if !inst.finished {
                if let Some(mon) = &inst.run.monitor {
                    mon.instance_finished(&pid, inst.run.tracer.now_us());
                }
            }

            if let Some(m) = inst.run.metrics {
                if let Some(stats) = delivery.as_ref() {
                    stats.export_metrics(m);
                }
                system.export_metrics(m);
                // additive, not overwriting: bench cells run many instances
                // against one shared registry (and one shared monitor), and
                // the alert-accounting invariants compare *cumulative*
                // alert counts against these — so they must accumulate too
                m.incr("run.steps", inst.steps as u64);
                m.incr("run.signature_checks", inst.signature_checks as u64);
                m.incr("run.takeovers", inst.crashes_supervised);
                m.incr("run.timeouts", inst.leases_expired);
                m.incr("run.early_takeovers", inst.early_takeovers);
                if let Some(tfc) = inst.run.tfc {
                    m.set_counter("tfc.redo_reuses", tfc.redo_reuses());
                }
                if let Some(mon) = &inst.run.monitor {
                    mon.export_metrics(m);
                }
                if !exported.iter().any(|p| std::ptr::eq(*p, m)) {
                    exported.push(m);
                }
            }

            results.push((
                pid.clone(),
                Ok(RunOutcome {
                    document: inst.last_doc,
                    steps: inst.steps,
                    process_id: pid,
                    signature_checks: inst.signature_checks,
                    delivery,
                }),
            ));
        }
        // scheduler-side accounting, once per registry per drain
        for m in exported {
            m.incr("sched.dispatched", self.stats.dispatched);
            m.incr("sched.skipped", self.stats.skipped);
            m.incr("sched.deferred", self.stats.deferred);
            m.incr("sched.or_join_waits", self.stats.or_join_waits);
            m.incr("sched.cancelled", self.stats.cancelled);
            m.incr("sched.cancelled_dispatches", self.stats.cancelled_dispatches);
            m.incr("sched.foreign", self.stats.foreign);
            // re-read the bus gauge now that every instance drained
            m.set_gauge("sched.bus_depth", bus.len() as i64);
            m.set_gauge("sched.or_join_parked", or_join_parked as i64);
        }
        self.stats = SchedStats::default();
        results
    }
}

/// Process one activation against its instance: skip duplicates, defer
/// not-ready joins, otherwise dispatch the hop under lease-based crash
/// supervision — the body the legacy loop ran per queue entry, lifted out.
fn dispatch_one<'a>(
    system: &'a CloudSystem,
    inst: &mut Instance<'a>,
    act: &Activation,
    stats: &mut SchedStats,
) -> WfResult<()> {
    // any activation (duplicate, synthetic revisit) supersedes a parking:
    // it re-runs the readiness check below and re-parks if still not quiet
    inst.or_parked.remove(&act.activity);
    if inst.cancelled.contains(&act.activity) {
        // work withdrawn by a cancellation region: the activation is void.
        // Withdrawal already emptied the inbox — a surviving entry means a
        // cancelled hop was one step from dispatching, which the metric
        // invariants flag (`sched.cancelled_dispatches` must stay zero).
        if inst.inbox.remove(&act.activity).is_some() {
            stats.cancelled_dispatches += 1;
        }
        stats.cancelled += 1;
        return Ok(());
    }
    let Some(arrived) = inst.inbox.remove(&act.activity) else {
        // duplicate notification (retransmitted copy, replay re-emission):
        // the inbox was already drained by the first activation
        stats.skipped += 1;
        return Ok(());
    };
    if inst.steps >= inst.run.max_steps {
        return Err(WfError::Flow(format!(
            "run exceeded {} steps (runaway loop?)",
            inst.run.max_steps
        )));
    }

    let mut inputs = arrived;
    let mut merged = InstanceRun::merge_inputs(&inputs)?;

    // re-fold amendments: a designer may have amended the definition
    // mid-run, and routing must follow the rules now in force
    let (def_now, _) = dra4wfms_core::amendment::effective_definition(&merged)?;
    let act_def = def_now.activity(&act.activity)?.clone();
    let aea = inst
        .agents
        .get(&act_def.participant)
        .ok_or_else(|| WfError::UnknownIdentity(act_def.participant.clone()))?;

    // AND-join: park the merged prefix until the remaining branches notify
    if act_def.join == JoinKind::All && !join_ready(&merged, &def_now, &act.activity)? {
        inst.inbox.entry(act.activity.clone()).or_default().push(merged);
        stats.deferred += 1;
        return Ok(());
    }

    // OR-join (synchronizing merge): fire only once upstream is quiet — no
    // inbox entry and no announced activation on any transitive
    // predecessor could still deliver another branch. Parked joins are
    // revisited by later duplicate activations and at bus-drain end.
    if act_def.join == JoinKind::Or {
        let upstream = def_now.upstream_of(&act.activity);
        let busy = inst.inbox.keys().any(|k| upstream.contains(k.as_str()))
            || system.activation_bus().has_pending(&inst.pid, |a| upstream.contains(a));
        if busy {
            inst.inbox.entry(act.activity.clone()).or_default().push(merged);
            inst.or_parked.insert(act.activity.clone());
            stats.or_join_waits += 1;
            return Ok(());
        }
    }

    // dispatch the hop under a virtual-time lease; a crash fault surfaces
    // as WfError::Crash and the supervisor takes the hop over. The
    // sched:dispatch span deliberately carries the process id as an
    // attribute, not as span coordinates — the monitor must keep seeing
    // exactly the spans the legacy loop produced, no more.
    let mut dspan = inst.run.tracer.span(stage::SCHED_DISPATCH).actor(&act_def.participant);
    dspan.attr("process", &inst.pid);
    dspan.attr("activity", &act.activity);
    dspan.attr("seq", act.seq);
    let use_tfc = def_now.tfc.is_some();
    let mut takeovers_left = inst.run.supervisor.max_takeovers;
    let (document, route, hop_checks, _hop_iter) = loop {
        let hop_start = inst.run.tracer.now_us();
        let mut hop_span =
            inst.run.tracer.span(stage::HOP).actor(&act_def.participant).process(&inst.pid);
        // re-route the in-flight activation: fresh alerts may have
        // quarantined the hashed portal (or failed its cloud over) since
        // the activation was emitted. Identity on single-cloud systems.
        system.federation_poll();
        let portal = system.route_portal(system.portal_for(&inst.pid, inst.steps + 1));
        match inst.run.execute_hop(aea, &act.activity, &merged, inst.respond, use_tfc, portal) {
            Ok(done) => {
                hop_span.set_activity(&act.activity, done.3);
                hop_span.attr("signature_checks", done.2);
                hop_span.end();
                if let Some(m) = inst.run.metrics {
                    m.observe(
                        "hop.duration_us",
                        inst.run.tracer.now_us().saturating_sub(hop_start),
                    );
                }
                break done;
            }
            Err(WfError::Crash(site)) if takeovers_left > 0 => {
                hop_span.set_activity(&act.activity, 0);
                hop_span.attr("site", &site);
                hop_span.end_with(dra_obs::OUTCOME_CRASH);
                takeovers_left -= 1;
                inst.leases_expired += 1;
                inst.crashes_supervised += 1;
                // the dead agent's lease runs out in virtual time — unless
                // a monitor is watching, in which case the supervisor moves
                // the moment the instance is *observed* stuck
                let wait_us = match &inst.run.monitor {
                    Some(mon) => {
                        let until_stuck = mon.time_until_stuck(&inst.pid, inst.run.tracer.now_us());
                        until_stuck.min(inst.run.supervisor.lease_us)
                    }
                    None => inst.run.supervisor.lease_us,
                };
                system.network.advance(wait_us);
                if let Some(mon) = &inst.run.monitor {
                    mon.tick(inst.run.tracer.now_us());
                    if wait_us < inst.run.supervisor.lease_us {
                        inst.early_takeovers += 1;
                    }
                }
                // crashed portals restart (journal replay completes any
                // half-done admission, re-emitting its notifications) ...
                system.recover_portals();
                // ... and the hop is re-anchored on the documents in the
                // pool, not the dead agent's memory
                inputs = inst.run.refetch(&inst.pid, inputs);
                merged = InstanceRun::merge_inputs(&inputs)?;
            }
            Err(e) => {
                dspan.end_with(dra_obs::OUTCOME_CRASH);
                return Err(e);
            }
        }
    };
    dspan.end();
    stats.dispatched += 1;
    inst.steps += 1;
    inst.signature_checks += hop_checks;
    system.consume_todo(&act_def.participant, &inst.pid, &act.activity);

    // completing this activity may fire cancellation regions: withdraw
    // every pending piece of region work — inbox entries, parked OR-joins
    // and already-announced bus activations alike
    let reader = DocFieldReader::public(document.document());
    for region in dra4wfms_core::flow::fired_cancellations(&def_now, &act.activity, &reader)? {
        for member in &region.region {
            if inst.inbox.remove(member).is_some() {
                stats.cancelled += 1;
            }
            inst.or_parked.remove(member);
            stats.cancelled += system.activation_bus().drain_activity(&inst.pid, member) as u64;
            inst.cancelled.insert(member.clone());
        }
    }

    for target in &route.targets {
        inst.inbox.entry(target.clone()).or_default().push(document.clone());
    }
    if route.is_final() {
        inst.finished = true;
        if let Some(mon) = &inst.run.monitor {
            mon.instance_finished(&inst.pid, inst.run.tracer.now_us());
        }
    }
    inst.last_doc = document;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(pid: &str, activity: &str, at_us: u64) -> Activation {
        Activation {
            participant: "p".into(),
            process_id: pid.into(),
            activity: activity.into(),
            seq: 0,
            at_us,
        }
    }

    #[test]
    fn bus_pops_in_time_then_emission_order() {
        let bus = ActivationBus::new();
        bus.emit(act("p1", "A", 10));
        bus.emit(act("p2", "B", 10));
        bus.emit(act("p3", "C", 5));
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.emitted(), 3);
        let order: Vec<String> = std::iter::from_fn(|| bus.pop()).map(|a| a.process_id).collect();
        assert_eq!(order, vec!["p3", "p1", "p2"], "time first, then emission seq");
        assert!(bus.is_empty());
    }

    #[test]
    fn pop_owned_leaves_other_schedulers_wakeups() {
        let bus = ActivationBus::new();
        bus.emit(act("theirs", "A", 1));
        bus.emit(act("mine", "B", 2));
        bus.emit(act("mine", "C", 3));
        assert_eq!(bus.pop_owned(|pid| pid == "mine").unwrap().activity, "B");
        assert_eq!(bus.pop_owned(|pid| pid == "mine").unwrap().activity, "C");
        assert!(bus.pop_owned(|pid| pid == "mine").is_none());
        assert_eq!(bus.len(), 1, "the foreign activation survives untouched");
        assert_eq!(bus.pop().unwrap().process_id, "theirs");
    }

    #[test]
    fn drain_process_removes_only_that_instance() {
        let bus = ActivationBus::new();
        bus.emit(act("keep", "A", 1));
        bus.emit(act("drop", "A", 2));
        bus.emit(act("drop", "B", 3));
        assert_eq!(bus.drain_process("drop"), 2);
        assert_eq!(bus.len(), 1);
        assert_eq!(bus.pop().unwrap().process_id, "keep");
        assert_eq!(bus.emitted(), 3, "emitted counter is lifetime, not depth");
    }
}
