//! Multi-cloud federation: replicated pools, portal quarantine and
//! health-driven failover.
//!
//! The paper's deployment story places *one* cloud system behind the
//! portals; everything in it survives portal crashes (journal replay, PR 3)
//! but nothing survives the cloud itself going down — or worse, a portal
//! that *answers* but serves tampered bytes. SecFlow's position (PAPERS.md)
//! is that a workflow system must **react** to detected violations, not
//! merely flag them. This module is that reaction edge:
//!
//! * a [`Topology`] groups the deployment's portals into named clouds,
//!   each with its own document pool and write-ahead journal;
//! * every admission is journalled and committed on the active cloud,
//!   then **replicated** to every reachable peer cloud — virtual-time
//!   charged, journal-committed before ack, so PR 3's torn-admission
//!   recovery holds per replica;
//! * a [`FederationController`] consumes [`HealthMonitor`] alerts plus the
//!   federation's own integrity probe (a served document whose wire digest
//!   fails full verification raises [`AlertKind::PortalTampered`]) to
//!   **quarantine** portals, **fail over** admissions to a healthy cloud
//!   and re-route in-flight activations — without touching the
//!   deterministic activation-bus ordering, because re-routing only remaps
//!   *which portal index* executes an admission, never what is admitted.
//!
//! The safety contract is the one the `claim_federation` sweep proves: a
//! bad cloud costs time (retries, failover confirmation, reroutes), never
//! safety — every instance completes and the surviving pool's document
//! rows are byte-identical to a healthy single-cloud run.
//!
//! Faults are seeded and deterministic, like every other injector in this
//! repo: an [`OutagePlan`] kills a named cloud from a virtual instant
//! onward, a [`TamperPlan`] corrupts the nth serve of a chosen portal.
//!
//! [`HealthMonitor`]: crate::monitor::HealthMonitor
//! [`AlertKind::PortalTampered`]: crate::monitor::AlertKind::PortalTampered

use crate::crash::splitmix64;
use crate::monitor::{Alert, AlertKind, HealthMonitor};
use dra4wfms_core::error::{WfError, WfResult};
use dra_docpool::{HTable, Journal};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, PoisonError};

/// One named cloud in a federated deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloudSpec {
    /// Stable cloud name (used in alerts, metrics and outage plans).
    pub name: String,
    /// How many portal servers front this cloud.
    pub portals: usize,
}

/// The shape of a federated deployment: an ordered list of named clouds.
/// Portal indices are global and contiguous — cloud 0 owns
/// `0..clouds[0].portals`, cloud 1 the next block, and so on — so the
/// deterministic `portal_for` hash spreads a fleet across every cloud.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Topology {
    /// The member clouds, in declaration order. Cloud 0 starts active.
    pub clouds: Vec<CloudSpec>,
}

impl Topology {
    /// An empty topology; add clouds with [`Topology::cloud`].
    #[must_use]
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Append a named cloud fronted by `portals` portal servers.
    #[must_use]
    pub fn cloud(mut self, name: &str, portals: usize) -> Topology {
        self.clouds.push(CloudSpec { name: name.to_string(), portals });
        self
    }

    /// Total portals across all clouds.
    #[must_use]
    pub fn total_portals(&self) -> usize {
        self.clouds.iter().map(|c| c.portals).sum()
    }

    /// Which cloud owns global portal index `portal`.
    #[must_use]
    pub fn cloud_of(&self, portal: usize) -> usize {
        let mut base = 0;
        for (i, c) in self.clouds.iter().enumerate() {
            if portal < base + c.portals {
                return i;
            }
            base += c.portals;
        }
        self.clouds.len().saturating_sub(1)
    }

    /// The global portal-index range of cloud `cloud`.
    #[must_use]
    pub fn portal_range(&self, cloud: usize) -> Range<usize> {
        let base: usize = self.clouds.iter().take(cloud).map(|c| c.portals).sum();
        base..base + self.clouds.get(cloud).map_or(0, |c| c.portals)
    }

    /// Reject empty federations, portal-less clouds and duplicate names.
    pub fn validate(&self) -> WfResult<()> {
        if self.clouds.is_empty() {
            return Err(WfError::Config("a federation needs at least one cloud".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.clouds {
            if c.portals == 0 {
                return Err(WfError::Config(format!("cloud '{}' has no portals", c.name)));
            }
            if !seen.insert(c.name.as_str()) {
                return Err(WfError::Config(format!("duplicate cloud name '{}'", c.name)));
            }
        }
        Ok(())
    }
}

/// Seeded cloud-outage schedule: the cloud is unreachable from `from_us`
/// (virtual time) onward — a permanent loss, the disaster-recovery case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutagePlan {
    /// Index of the cloud that goes dark.
    pub cloud: usize,
    /// First virtual instant (µs) at which it is unreachable.
    pub from_us: u64,
}

impl OutagePlan {
    /// Kill cloud `cloud` from `from_us` onward.
    #[must_use]
    pub fn at(cloud: usize, from_us: u64) -> OutagePlan {
        OutagePlan { cloud, from_us }
    }

    /// Seeded schedule: the outage instant is drawn from `seed` in
    /// `[1, max_us]`. Same seed + cloud + bound ⇒ same schedule.
    #[must_use]
    pub fn seeded(cloud: usize, seed: u64, max_us: u64) -> OutagePlan {
        OutagePlan { cloud, from_us: 1 + splitmix64(seed) % max_us.max(1) }
    }

    /// Is the cloud unreachable at `now_us` under this plan?
    #[must_use]
    pub fn fires(&self, cloud: usize, now_us: u64) -> bool {
        self.cloud == cloud && now_us >= self.from_us
    }
}

/// Seeded tampered-portal schedule: the `nth_serve`-th document served by
/// `portal` (1-based, counted per portal) has one byte corrupted in
/// flight — the compromised-portal case the integrity probe must catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TamperPlan {
    /// The compromised portal's global index.
    pub portal: usize,
    /// Which of its serves is corrupted (1-based).
    pub nth_serve: u64,
}

impl TamperPlan {
    /// Corrupt the `nth_serve`-th serve of `portal`, once.
    #[must_use]
    pub fn once(portal: usize, nth_serve: u64) -> TamperPlan {
        TamperPlan { portal, nth_serve: nth_serve.max(1) }
    }

    /// Seeded schedule: the serve to corrupt is drawn from `seed` in
    /// `[1, max_nth]`.
    #[must_use]
    pub fn seeded(portal: usize, seed: u64, max_nth: u64) -> TamperPlan {
        TamperPlan { portal, nth_serve: 1 + splitmix64(seed) % max_nth.max(1) }
    }
}

/// Thresholds of the federation controller, as a chainable builder
/// (mirrors [`crate::monitor::MonitorConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FederationPolicy {
    /// How many unreachable touches confirm a cloud outage. Below the
    /// threshold an admission into the dead cloud surfaces as a retriable
    /// crash (the delivery layer and hop supervisor both absorb those);
    /// at the threshold the cloud is marked down and admissions fail over.
    pub outage_confirmations: u64,
    /// Quarantine a portal after this many `retry_storm` alerts name it —
    /// a portal that keeps costing whole retry budgets is sick even when
    /// it never serves a provably bad byte.
    pub storm_quarantine_alerts: u64,
}

impl Default for FederationPolicy {
    fn default() -> FederationPolicy {
        FederationPolicy { outage_confirmations: 2, storm_quarantine_alerts: 2 }
    }
}

impl FederationPolicy {
    /// The default thresholds (identical to [`Default`]).
    #[must_use]
    pub fn new() -> FederationPolicy {
        FederationPolicy::default()
    }

    /// Override the outage-confirmation touch count.
    #[must_use]
    pub fn with_outage_confirmations(mut self, touches: u64) -> FederationPolicy {
        self.outage_confirmations = touches.max(1);
        self
    }

    /// Override the retry-storm quarantine threshold.
    #[must_use]
    pub fn with_storm_quarantine_alerts(mut self, alerts: u64) -> FederationPolicy {
        self.storm_quarantine_alerts = alerts.max(1);
        self
    }
}

/// Snapshot of the controller's counters (exported as `federation.*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Admissions replicated and journal-committed on a peer cloud.
    pub replicas_acked: u64,
    /// Portals quarantined (tamper or retry-storm evidence).
    pub quarantines: u64,
    /// Times the active cloud moved to a healthy peer.
    pub failovers: u64,
    /// Clouds confirmed down.
    pub outages: u64,
    /// Admissions re-routed away from their hashed portal.
    pub reroutes: u64,
    /// Serves on which the tamper injector corrupted the bytes.
    pub tampered_serves: u64,
    /// The currently active cloud index.
    pub active_cloud: usize,
}

struct FedState {
    active_cloud: usize,
    down: Vec<bool>,
    quarantined: Vec<bool>,
    unreachable_touches: Vec<u64>,
    storm_alerts: BTreeMap<usize, u64>,
    alert_cursor: usize,
    admissions: Vec<u64>,
    admissions_at_quarantine: Vec<Option<u64>>,
    serves: Vec<u64>,
    outage: Option<OutagePlan>,
    tamper: Option<TamperPlan>,
    stats: FederationStats,
}

/// The federation's control plane: owns quarantine/failover state, consumes
/// the health monitor's alert stream, and resolves every admission and
/// serve to an eligible portal.
///
/// All decisions are pure functions of (virtual time, seeded fault plans,
/// the deterministic alert stream), so a federated run is as replayable as
/// a single-cloud one.
pub struct FederationController {
    topology: Topology,
    policy: FederationPolicy,
    monitor: Mutex<Option<Arc<HealthMonitor>>>,
    state: Mutex<FedState>,
}

impl FederationController {
    /// A controller for `topology` under `policy`. Cloud 0 starts active;
    /// nothing is down or quarantined.
    pub fn new(topology: Topology, policy: FederationPolicy) -> FederationController {
        let clouds = topology.clouds.len();
        let portals = topology.total_portals();
        FederationController {
            topology,
            policy,
            monitor: Mutex::new(None),
            state: Mutex::new(FedState {
                active_cloud: 0,
                down: vec![false; clouds],
                quarantined: vec![false; portals],
                unreachable_touches: vec![0; clouds],
                storm_alerts: BTreeMap::new(),
                alert_cursor: 0,
                admissions: vec![0; portals],
                admissions_at_quarantine: vec![None; portals],
                serves: vec![0; portals],
                outage: None,
                tamper: None,
                stats: FederationStats::default(),
            }),
        }
    }

    /// The federation's shape.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The thresholds this controller applies.
    #[must_use]
    pub fn policy(&self) -> FederationPolicy {
        self.policy
    }

    /// Wire the health monitor whose alert stream drives quarantines. The
    /// scheduler does this automatically when a monitored run is admitted
    /// on a federated system.
    pub fn set_monitor(&self, monitor: &Arc<HealthMonitor>) {
        *self.monitor.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(monitor));
    }

    /// Arm a seeded cloud-outage schedule.
    pub fn set_outage(&self, plan: OutagePlan) {
        self.lock().outage = Some(plan);
    }

    /// Arm a seeded tampered-portal schedule.
    pub fn set_tamper(&self, plan: TamperPlan) {
        self.lock().tamper = Some(plan);
    }

    /// The cloud currently taking admissions and serving reads.
    #[must_use]
    pub fn active_cloud(&self) -> usize {
        self.lock().active_cloud
    }

    /// Is `cloud` confirmed down?
    #[must_use]
    pub fn cloud_down(&self, cloud: usize) -> bool {
        self.lock().down.get(cloud).copied().unwrap_or(false)
    }

    /// Is `portal` quarantined?
    #[must_use]
    pub fn is_quarantined(&self, portal: usize) -> bool {
        self.lock().quarantined.get(portal).copied().unwrap_or(false)
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> FederationStats {
        let st = self.lock();
        FederationStats { active_cloud: st.active_cloud, ..st.stats }
    }

    /// True while every quarantined portal's admission count is frozen at
    /// its quarantine-time value — the "zero admissions after the tamper
    /// alert" acceptance criterion, checkable at any point of a run.
    #[must_use]
    pub fn zero_admissions_after_quarantine(&self) -> bool {
        let st = self.lock();
        st.admissions_at_quarantine
            .iter()
            .zip(&st.admissions)
            .all(|(frozen, now)| frozen.is_none_or(|at| at == *now))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drain fresh monitor alerts and act on them: `retry_storm` alerts
    /// naming `portal:N` accumulate per portal and quarantine it at the
    /// policy threshold; `audit_divergence` alerts quarantine every portal
    /// of the named cloud at once — a stored-row forgery indicts the whole
    /// member, not one front door. Called by the scheduler between
    /// dispatches and by every admission resolution.
    pub fn pump(&self) {
        let monitor = self.monitor.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let Some(monitor) = monitor else { return };
        let mut st = self.lock();
        let (fresh, cursor) = monitor.alerts_since(st.alert_cursor);
        st.alert_cursor = cursor;
        for alert in fresh {
            match &alert.kind {
                AlertKind::RetryStorm { target, .. } => {
                    let Some(idx) = target.strip_prefix("portal:").and_then(|n| n.parse().ok())
                    else {
                        continue;
                    };
                    if idx >= st.quarantined.len() {
                        continue;
                    }
                    let hits = st.storm_alerts.entry(idx).or_insert(0);
                    *hits += 1;
                    if *hits >= self.policy.storm_quarantine_alerts {
                        Self::quarantine_locked(&mut st, &self.topology, idx);
                    }
                }
                AlertKind::AuditDivergence { cloud, .. } => {
                    let cloud = *cloud as usize;
                    if cloud >= self.topology.clouds.len() {
                        continue;
                    }
                    for portal in self.topology.portal_range(cloud) {
                        Self::quarantine_locked(&mut st, &self.topology, portal);
                    }
                }
                _ => {}
            }
        }
    }

    /// Resolve an admission requested at portal `requested`: pump alerts,
    /// run the outage dance for the target cloud, then re-route past
    /// quarantined portals and down clouds. Returns the portal that will
    /// actually execute the admission.
    ///
    /// # Errors
    ///
    /// * [`WfError::Crash`] while an armed outage is still unconfirmed —
    ///   retriable; the delivery layer and the hop supervisor both absorb
    ///   it, and the retry confirms the outage.
    /// * [`WfError::Policy`] when no eligible portal remains anywhere.
    pub fn resolve_admission(&self, requested: usize, now_us: u64) -> WfResult<usize> {
        self.pump();
        let mut st = self.lock();
        let n = st.admissions.len();
        let requested = requested % n;
        let cloud = self.topology.cloud_of(requested);

        // Outage dance for every cloud this admission must reach
        // synchronously — the *active* cloud it primary-commits on and the
        // candidate portal's front cloud. Touches of a plan-dead,
        // not-yet-confirmed cloud surface as retriable crashes until the
        // confirmation threshold, where the cloud is marked down (and
        // failed over if active).
        let primary = st.active_cloud;
        let touched = if primary == cloud { vec![primary] } else { vec![primary, cloud] };
        for target in touched {
            if st.down[target] {
                continue;
            }
            let Some(plan) = st.outage else { break };
            if !plan.fires(target, now_us) {
                continue;
            }
            st.unreachable_touches[target] += 1;
            if st.unreachable_touches[target] >= self.policy.outage_confirmations {
                Self::mark_down_locked(&mut st, &self.topology, target);
            } else {
                let name = &self.topology.clouds[target].name;
                return Err(WfError::Crash(format!(
                    "cloud:{name} unreachable (outage since {}us)",
                    plan.from_us
                )));
            }
        }

        let resolved = Self::next_eligible_locked(&st, &self.topology, requested)
            .ok_or_else(|| WfError::Policy("no eligible portal left in any cloud".into()))?;
        if resolved != requested {
            st.stats.reroutes += 1;
        }
        st.admissions[resolved] += 1;
        Ok(resolved)
    }

    /// Best-effort portal remap for the scheduler's dispatch path: skip
    /// quarantined portals and down clouds, no counters, no errors (the
    /// admission itself re-resolves authoritatively).
    #[must_use]
    pub fn route(&self, requested: usize) -> usize {
        let st = self.lock();
        let n = st.admissions.len();
        Self::next_eligible_locked(&st, &self.topology, requested % n).unwrap_or(requested % n)
    }

    /// Resolve a serve (document retrieval) requested at portal
    /// `requested`, skipping quarantined portals and down clouds. `None`
    /// when nothing eligible remains.
    #[must_use]
    pub fn resolve_serve(&self, requested: usize) -> Option<usize> {
        let st = self.lock();
        let n = st.serves.len();
        Self::next_eligible_locked(&st, &self.topology, requested % n)
    }

    /// Count one serve by `portal` and report whether the armed tamper
    /// plan corrupts this one.
    pub fn tamper_fires(&self, portal: usize) -> bool {
        let mut st = self.lock();
        if portal >= st.serves.len() {
            return false;
        }
        st.serves[portal] += 1;
        let fired = match st.tamper {
            Some(plan) => plan.portal == portal && st.serves[portal] == plan.nth_serve,
            None => false,
        };
        if fired {
            st.stats.tampered_serves += 1;
        }
        fired
    }

    /// React to a failed integrity probe: raise a typed
    /// [`AlertKind::PortalTampered`] through the monitor (when wired) and
    /// quarantine the serving portal, failing the active cloud over when
    /// none of its portals remain eligible.
    pub fn on_tamper(&self, portal: usize, process_id: &str, digest_hex: &str, now_us: u64) {
        let monitor = self.monitor.lock().unwrap_or_else(PoisonError::into_inner).clone();
        if let Some(monitor) = monitor {
            monitor.raise(Alert {
                at_us: now_us,
                process_id: process_id.to_string(),
                kind: AlertKind::PortalTampered {
                    portal: portal as u64,
                    digest: digest_hex.to_string(),
                },
            });
            // the controller's own alert must not re-trigger the pump path
            let mut st = self.lock();
            st.alert_cursor += 1;
        }
        let mut st = self.lock();
        Self::quarantine_locked(&mut st, &self.topology, portal);
    }

    /// Count one replicated-and-committed admission on a peer cloud.
    pub(crate) fn ack_replica(&self) {
        self.lock().stats.replicas_acked += 1;
    }

    /// The peer clouds an admission must replicate to right now: every
    /// cloud except the active one that is not confirmed down. A
    /// plan-dead-but-unconfirmed peer is *touched* (the failed replication
    /// attempt counts toward confirmation) but not returned — replication
    /// is ack-on-commit, so an unreachable replica is skipped, noted, and
    /// confirmed down once the touch threshold is reached.
    pub(crate) fn replica_targets(&self, now_us: u64) -> Vec<usize> {
        let mut st = self.lock();
        let mut targets = Vec::new();
        for cloud in 0..self.topology.clouds.len() {
            if cloud == st.active_cloud || st.down[cloud] {
                continue;
            }
            if let Some(plan) = st.outage {
                if plan.fires(cloud, now_us) {
                    st.unreachable_touches[cloud] += 1;
                    if st.unreachable_touches[cloud] >= self.policy.outage_confirmations {
                        Self::mark_down_locked(&mut st, &self.topology, cloud);
                    }
                    continue;
                }
            }
            targets.push(cloud);
        }
        targets
    }

    /// First eligible portal at or after `requested` (wrapping): its cloud
    /// is up and it is not quarantined.
    fn next_eligible_locked(st: &FedState, topo: &Topology, requested: usize) -> Option<usize> {
        let n = st.quarantined.len();
        (0..n)
            .map(|off| (requested + off) % n)
            .find(|&p| !st.quarantined[p] && !st.down[topo.cloud_of(p)])
    }

    fn quarantine_locked(st: &mut FedState, topo: &Topology, portal: usize) {
        if st.quarantined[portal] {
            return;
        }
        st.quarantined[portal] = true;
        st.admissions_at_quarantine[portal] = Some(st.admissions[portal]);
        st.stats.quarantines += 1;
        // a cloud whose every portal is quarantined cannot take admissions:
        // fail over if it was the active one
        let cloud = topo.cloud_of(portal);
        let all_gone = topo.portal_range(cloud).all(|p| st.quarantined[p]);
        if all_gone && st.active_cloud == cloud {
            Self::failover_locked(st, topo);
        }
    }

    fn mark_down_locked(st: &mut FedState, topo: &Topology, cloud: usize) {
        if st.down[cloud] {
            return;
        }
        st.down[cloud] = true;
        st.stats.outages += 1;
        if st.active_cloud == cloud {
            Self::failover_locked(st, topo);
        }
    }

    /// Move the active cloud to the next (wrapping) cloud that is up and
    /// has at least one unquarantined portal. Stays put when none exists —
    /// the deployment is then fully degraded and admissions error out.
    fn failover_locked(st: &mut FedState, topo: &Topology) {
        let clouds = topo.clouds.len();
        for off in 1..=clouds {
            let candidate = (st.active_cloud + off) % clouds;
            if st.down[candidate] {
                continue;
            }
            if topo.portal_range(candidate).any(|p| !st.quarantined[p]) {
                st.active_cloud = candidate;
                st.stats.failovers += 1;
                return;
            }
        }
    }
}

/// One member cloud's storage: its document pool and write-ahead journal.
pub(crate) struct FedReplica {
    /// The cloud's stable name.
    pub(crate) name: String,
    /// The cloud's document pool.
    pub(crate) pool: Arc<HTable>,
    /// The cloud's write-ahead journal (admissions commit here before ack).
    pub(crate) journal: Arc<Journal>,
}

/// A [`CloudSystem`](crate::portal::CloudSystem)'s federation half: the
/// control plane plus one storage replica per member cloud.
pub(crate) struct Federation {
    pub(crate) controller: Arc<FederationController>,
    pub(crate) replicas: Vec<FedReplica>,
}

/// Deterministically corrupt one byte of served wire bytes: the first
/// ASCII letter at or after the midpoint has its case flipped, keeping the
/// copy valid UTF-8. One byte is the minimal tamper — if the integrity
/// probe catches that, it catches anything larger.
#[must_use]
pub(crate) fn tamper_bytes(xml: &str) -> String {
    let bytes = xml.as_bytes();
    let mid = bytes.len() / 2;
    let idx = (0..bytes.len())
        .map(|off| (mid + off) % bytes.len().max(1))
        .find(|&i| bytes[i].is_ascii_alphabetic());
    match idx {
        Some(i) => {
            let mut out = bytes.to_vec();
            out[i] ^= 0x20; // ASCII case flip
            String::from_utf8(out).expect("case flip preserves UTF-8")
        }
        None => xml.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clouds() -> Topology {
        Topology::new().cloud("east", 2).cloud("west", 2)
    }

    #[test]
    fn topology_maps_portals_to_clouds() {
        let t = Topology::new().cloud("a", 2).cloud("b", 3).cloud("c", 1);
        assert_eq!(t.total_portals(), 6);
        assert_eq!(t.cloud_of(0), 0);
        assert_eq!(t.cloud_of(1), 0);
        assert_eq!(t.cloud_of(2), 1);
        assert_eq!(t.cloud_of(4), 1);
        assert_eq!(t.cloud_of(5), 2);
        assert_eq!(t.portal_range(1), 2..5);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn topology_rejects_degenerate_shapes() {
        assert!(Topology::new().validate().is_err());
        assert!(Topology::new().cloud("a", 0).validate().is_err());
        assert!(Topology::new().cloud("a", 1).cloud("a", 1).validate().is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..20 {
            assert_eq!(OutagePlan::seeded(1, seed, 30_000), OutagePlan::seeded(1, seed, 30_000));
            assert_eq!(TamperPlan::seeded(2, seed, 8), TamperPlan::seeded(2, seed, 8));
            let o = OutagePlan::seeded(1, seed, 30_000);
            assert!((1..=30_000).contains(&o.from_us));
            let t = TamperPlan::seeded(2, seed, 8);
            assert!((1..=8).contains(&t.nth_serve));
        }
    }

    #[test]
    fn outage_confirms_after_threshold_and_fails_over() {
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        c.set_outage(OutagePlan::at(0, 1_000));
        // before the outage instant: portal 0 resolves to itself
        assert_eq!(c.resolve_admission(0, 500).unwrap(), 0);
        // first touch after the instant: retriable crash, not yet confirmed
        assert!(matches!(c.resolve_admission(0, 2_000), Err(WfError::Crash(_))));
        assert!(!c.cloud_down(0));
        // second touch: confirmed, failed over, rerouted to cloud 1
        let resolved = c.resolve_admission(0, 2_100).unwrap();
        assert_eq!(c.topology().cloud_of(resolved), 1);
        assert!(c.cloud_down(0));
        assert_eq!(c.active_cloud(), 1);
        let stats = c.stats();
        assert_eq!(stats.outages, 1);
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.reroutes, 1);
        // replication never targets a down cloud
        assert!(c.replica_targets(3_000).is_empty());
    }

    #[test]
    fn dead_active_cloud_blocks_admissions_through_healthy_front_portals() {
        // the front portal lives in cloud 1, but the *primary commit* goes
        // to the active cloud 0 — a dead primary must run the same dance
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        c.set_outage(OutagePlan::at(0, 1_000));
        assert_eq!(c.resolve_admission(2, 500).unwrap(), 2, "healthy before the instant");
        assert!(matches!(c.resolve_admission(2, 2_000), Err(WfError::Crash(_))));
        let resolved = c.resolve_admission(2, 2_100).unwrap();
        assert_eq!(resolved, 2, "the front portal itself was always eligible");
        assert!(c.cloud_down(0));
        assert_eq!(c.active_cloud(), 1, "primary moved to the front's cloud");
    }

    #[test]
    fn replication_touches_confirm_a_peer_outage_without_erroring() {
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        c.set_outage(OutagePlan::at(1, 1_000));
        assert_eq!(c.replica_targets(500), vec![1], "reachable before the instant");
        assert!(c.replica_targets(1_500).is_empty(), "first touch: skipped, noted");
        assert!(!c.cloud_down(1));
        assert!(c.replica_targets(1_600).is_empty(), "second touch: confirmed");
        assert!(c.cloud_down(1));
        let stats = c.stats();
        assert_eq!(stats.outages, 1);
        assert_eq!(stats.failovers, 0, "the dead cloud was not active");
        assert_eq!(c.active_cloud(), 0);
    }

    #[test]
    fn tamper_quarantines_and_freezes_admissions() {
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        c.set_tamper(TamperPlan::once(1, 2));
        assert!(!c.tamper_fires(1), "first serve is honest");
        assert!(c.tamper_fires(1), "second serve corrupted");
        assert!(!c.tamper_fires(1), "fires once");
        c.resolve_admission(1, 0).unwrap();
        c.on_tamper(1, "p", "abcd", 10);
        assert!(c.is_quarantined(1));
        assert!(c.zero_admissions_after_quarantine());
        // admissions hashed to the quarantined portal re-route
        let resolved = c.resolve_admission(1, 20).unwrap();
        assert_ne!(resolved, 1);
        assert!(c.zero_admissions_after_quarantine());
        assert_eq!(c.stats().quarantines, 1);
        assert_eq!(c.stats().tampered_serves, 1);
        // serving re-routes too
        assert_ne!(c.resolve_serve(1), Some(1));
    }

    #[test]
    fn quarantining_every_active_portal_fails_over() {
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        c.on_tamper(0, "p", "d0", 1);
        assert_eq!(c.active_cloud(), 0, "one healthy portal left in cloud 0");
        c.on_tamper(1, "p", "d1", 2);
        assert_eq!(c.active_cloud(), 1, "cloud 0 fully quarantined: failover");
        assert_eq!(c.stats().failovers, 1);
        // total degradation: every portal gone
        c.on_tamper(2, "p", "d2", 3);
        c.on_tamper(3, "p", "d3", 4);
        assert!(matches!(c.resolve_admission(0, 5), Err(WfError::Policy(_))));
        assert_eq!(c.resolve_serve(0), None);
    }

    #[test]
    fn storm_alerts_quarantine_through_the_pump() {
        use crate::monitor::MonitorConfig;
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        let monitor = HealthMonitor::new(MonitorConfig::default());
        c.set_monitor(&monitor);
        let storm = |n: u64| Alert {
            at_us: n,
            process_id: "p".into(),
            kind: AlertKind::RetryStorm { target: "portal:3".into(), attempts: 8, threshold: 4 },
        };
        monitor.raise(storm(1));
        c.pump();
        assert!(!c.is_quarantined(3), "one storm is not a pattern");
        monitor.raise(storm(2));
        c.pump();
        assert!(c.is_quarantined(3), "two storms are");
        assert_eq!(c.stats().quarantines, 1);
        // non-portal targets and junk are ignored
        monitor.raise(Alert {
            at_us: 3,
            process_id: "p".into(),
            kind: AlertKind::RetryStorm { target: "transfer".into(), attempts: 8, threshold: 4 },
        });
        c.pump();
        assert_eq!(c.stats().quarantines, 1);
    }

    #[test]
    fn audit_divergence_quarantines_the_whole_cloud_through_the_pump() {
        use crate::monitor::MonitorConfig;
        let c = FederationController::new(two_clouds(), FederationPolicy::default());
        let monitor = HealthMonitor::new(MonitorConfig::default());
        c.set_monitor(&monitor);
        monitor.raise(Alert {
            at_us: 9,
            process_id: "p-aud".into(),
            kind: AlertKind::AuditDivergence { cloud: 0, key: "doc/p-aud/000001".into() },
        });
        c.pump();
        // the whole east cloud is gone in one pump, and the active cloud
        // failed over to west
        assert!(c.is_quarantined(0) && c.is_quarantined(1));
        assert!(!c.is_quarantined(2) && !c.is_quarantined(3));
        assert_eq!(c.stats().quarantines, 2);
        assert_eq!(c.stats().failovers, 1);
        assert_eq!(c.active_cloud(), 1);
        // out-of-range cloud indices are ignored, and the pump is
        // exactly-once: re-pumping changes nothing
        monitor.raise(Alert {
            at_us: 10,
            process_id: "p-aud".into(),
            kind: AlertKind::AuditDivergence { cloud: 9, key: "doc/p-aud/000001".into() },
        });
        c.pump();
        c.pump();
        assert_eq!(c.stats().quarantines, 2);
    }

    #[test]
    fn tamper_bytes_flips_exactly_one_byte_case() {
        let wire = "<Doc a=\"1\"><Field>value</Field></Doc>";
        let tampered = tamper_bytes(wire);
        assert_ne!(tampered, wire);
        assert_eq!(tampered.len(), wire.len());
        let diffs: Vec<(u8, u8)> =
            tampered.bytes().zip(wire.bytes()).filter(|(a, b)| a != b).collect();
        assert_eq!(diffs.len(), 1);
        let (a, b) = diffs[0];
        assert_eq!(a ^ b, 0x20, "case flip only");
        assert_eq!(tamper_bytes(wire), tampered, "deterministic");
    }
}
