//! Crash-fault recovery, end to end: the takeover copy racing the dead
//! agent's delayed send, and the TFC redo log making re-executed hops
//! byte-identical.

use dra4wfms_core::prelude::*;
use dra_cloud::{CloudSystem, NetworkSim};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn two_step() -> (Vec<Credentials>, Directory, WorkflowDefinition) {
    let creds: Vec<Credentials> = ["designer", "alice", "bob", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("crash-it-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let def = WorkflowDefinition::builder("race", "designer")
        .simple_activity("submit", "alice", &["amount"])
        .simple_activity("approve", "bob", &["decision"])
        .flow("submit", "approve")
        .flow_end("approve")
        .build()
        .unwrap();
    (creds, dir, def)
}

/// Satellite scenario: the executing agent signs and sends, then dies — its
/// copy is *delayed*, not lost. The supervisor's lease expires, a recovered
/// agent re-executes the hop from the pool copy and stores first. When the
/// dead agent's copy finally arrives, the portal must recognise it by wire
/// digest: exactly one stored version, `StoreAck { duplicate: true }`.
#[test]
fn takeover_copy_wins_race_with_dead_agents_delayed_send() {
    let (creds, dir, def) = two_step();
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "race-1")
            .unwrap();
    sys.store_document(
        0,
        &initial.to_xml_string(),
        &Route { targets: vec!["submit".into()], ends: false },
    )
    .unwrap();

    // the doomed agent executes the hop and signs; its send goes into the
    // network but the agent dies before seeing an ack — we hold the copy
    let doomed = Aea::new(creds[1].clone(), dir.clone());
    let input = sys.retrieve_latest_sealed(0, "race-1").unwrap().unwrap();
    let received = doomed.receive(input, "submit").unwrap();
    let responses = vec![("amount".to_string(), "100".to_string())];
    let in_flight = doomed.complete(&received, &responses).unwrap();
    drop(doomed); // the crash: in-flight state gone, only the pool survives

    // lease expires; a recovered agent takes the hop over, re-anchored on
    // the pool's latest document — deterministic signing makes the result
    // byte-identical to what the dead agent produced
    let recovered = Aea::new(creds[1].clone(), dir.clone());
    let input = sys.retrieve_latest_sealed(1, "race-1").unwrap().unwrap();
    let received = recovered.receive(input, "submit").unwrap();
    let takeover = recovered.complete(&received, &responses).unwrap();
    assert_eq!(
        takeover.document.wire(),
        in_flight.document.wire(),
        "re-executed hop is byte-identical"
    );

    let ack = sys
        .ingest_wire(1, &takeover.document.wire(), &takeover.route, takeover.document.trust())
        .unwrap();
    assert!(!ack.duplicate, "takeover copy stores first");

    // now the dead agent's delayed copy limps in — suppressed, not re-stored
    let late = sys
        .ingest_wire(0, &in_flight.document.wire(), &in_flight.route, in_flight.document.trust())
        .unwrap();
    assert!(late.duplicate, "delayed copy recognised by wire digest");
    assert_eq!(late.seq, ack.seq);
    assert_eq!(sys.pool.scan_prefix("doc/race-1/").len(), 2, "initial + one CER, no phantom");
    assert_eq!(sys.total_duplicates_suppressed(), 1);

    // bob was notified exactly once and the flow can continue
    assert_eq!(sys.search_todo("bob").len(), 1);
}

/// Advanced-model variant: the crash hits between the TFC's timestamp draw
/// and its re-encrypt. The redo log must re-emit the *same* timestamped
/// document on re-execution — one clock draw, one `<Timestamp`, and the
/// delayed original still dedups at the portal.
#[test]
fn tfc_redo_keeps_reexecuted_hop_byte_identical() {
    let (creds, dir, mut def) = two_step();
    def.tfc = Some("TFC".into());
    let policy = SecurityPolicy::public().with_tfc_access("TFC", &def);
    let sys = CloudSystem::new(dir.clone(), 2, Arc::new(NetworkSim::lan()));
    let initial = DraDocument::new_initial_with_pid(&def, &policy, &creds[0], "race-2").unwrap();
    sys.store_document(
        0,
        &initial.to_xml_string(),
        &Route { targets: vec!["submit".into()], ends: false },
    )
    .unwrap();

    let draws = Arc::new(AtomicU64::new(0));
    let clock_draws = Arc::clone(&draws);
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = TfcServer::with_clock(
        tfc_creds,
        dir.clone(),
        Arc::new(move || 5_000 + clock_draws.fetch_add(1, Ordering::Relaxed)),
    );

    // first execution reaches the TFC, which timestamps and finalizes —
    // then the result is lost with the crashing sender
    let alice = Aea::new(creds[1].clone(), dir.clone());
    let input = sys.retrieve_latest_sealed(0, "race-2").unwrap().unwrap();
    let received = alice.receive(input, "submit").unwrap();
    let responses = vec![("amount".to_string(), "7".to_string())];
    let inter1 = alice.complete_via_tfc(&received, &responses).unwrap();
    let processed = tfc.receive(inter1.document.clone()).unwrap();
    let final1 = tfc.finalize(&processed).unwrap();
    assert_eq!(draws.load(Ordering::Relaxed), 1);

    // takeover: a recovered agent re-executes; deterministic sealing makes
    // the TFC-bound intermediate byte-identical, so the redo log replays
    // the recorded result instead of double-timestamping
    let recovered = Aea::new(creds[1].clone(), dir.clone());
    let input = sys.retrieve_latest_sealed(1, "race-2").unwrap().unwrap();
    let received = recovered.receive(input, "submit").unwrap();
    let inter2 = recovered.complete_via_tfc(&received, &responses).unwrap();
    assert_eq!(
        inter2.document.wire(),
        inter1.document.wire(),
        "deterministic sealing: TFC-bound hand-off is reproducible"
    );
    let processed2 = tfc.receive(inter2.document.clone()).unwrap();
    let final2 = tfc.finalize(&processed2).unwrap();

    assert_eq!(final2.document.wire(), final1.document.wire(), "redo re-emits the same bytes");
    assert_eq!(final2.timestamp, final1.timestamp);
    assert_eq!(draws.load(Ordering::Relaxed), 1, "exactly one clock draw across both runs");
    assert!(tfc.redo_reuses() >= 1);
    assert_eq!(
        final2.document.wire().matches("<Timestamp").count(),
        final1.document.wire().matches("<Timestamp").count(),
        "no double timestamp"
    );

    // both copies head for the portal; only one version lands
    let ack = sys
        .ingest_wire(0, &final2.document.wire(), &final2.route, final2.document.trust())
        .unwrap();
    assert!(!ack.duplicate);
    let late = sys
        .ingest_wire(1, &final1.document.wire(), &final1.route, final1.document.trust())
        .unwrap();
    assert!(late.duplicate);
    assert_eq!(sys.pool.scan_prefix("doc/race-2/").len(), 2);
}
