//! The range-partitioned table (the "HBase cluster" of the paper's Fig. 7):
//! routing, automatic region splits, scans and statistics.

use crate::region::{KeyRange, Region};
use crate::row::RowSnapshot;
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs of a table.
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// Maximum stored versions per cell.
    pub max_versions: usize,
    /// A region splits once it holds more rows than this.
    pub max_region_rows: usize,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig { max_versions: 3, max_region_rows: 4096 }
    }
}

/// Aggregate statistics of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of regions (grows through splits).
    pub regions: usize,
    /// Total rows.
    pub rows: usize,
    /// Total operations served across regions.
    pub ops: usize,
    /// Region splits performed.
    pub splits: usize,
}

/// A sharded, versioned table of rows — the pool of DRA4WfMS documents.
///
/// Thread-safe: many readers and writers may operate concurrently; each
/// region has its own reader-writer lock, and the region list itself is
/// read-mostly.
pub struct HTable {
    config: TableConfig,
    /// Regions sorted by start key; ranges tile the keyspace.
    regions: RwLock<Vec<Arc<Region>>>,
    clock: AtomicU64,
    splits: AtomicUsize,
}

impl Default for HTable {
    fn default() -> Self {
        Self::new(TableConfig::default())
    }
}

impl HTable {
    /// Create a table with one region covering the whole keyspace.
    pub fn new(config: TableConfig) -> HTable {
        HTable {
            config,
            regions: RwLock::new(vec![Arc::new(Region::new(KeyRange::all()))]),
            clock: AtomicU64::new(1),
            splits: AtomicUsize::new(0),
        }
    }

    /// Create a table pre-split into `n` regions at the given split keys
    /// (HBase-style pre-splitting for bulk loads).
    pub fn pre_split(config: TableConfig, split_keys: &[&str]) -> HTable {
        let mut keys: Vec<&str> = split_keys.to_vec();
        keys.sort_unstable();
        keys.dedup();
        let mut regions = Vec::with_capacity(keys.len() + 1);
        let mut start = String::new();
        for k in &keys {
            regions.push(Arc::new(Region::new(KeyRange {
                start: start.clone(),
                end: Some(k.to_string()),
            })));
            start = k.to_string();
        }
        regions.push(Arc::new(Region::new(KeyRange { start, end: None })));
        HTable {
            config,
            regions: RwLock::new(regions),
            clock: AtomicU64::new(1),
            splits: AtomicUsize::new(0),
        }
    }

    /// Run `f` against the region owning `key`, while holding the region
    /// list's read lock. Mutations MUST go through this: a concurrent split
    /// replaces the region object, and a write that raced past the lookup
    /// would land in the dropped region and be lost. Splits take the list's
    /// write lock, so they serialize with in-flight operations.
    fn with_region<R>(&self, key: &str, f: impl FnOnce(&Region) -> R) -> (R, Arc<Region>) {
        let regions = self.regions.read();
        // binary search over start keys
        let idx = regions.partition_point(|r| r.range.start.as_str() <= key);
        let region = &regions[idx.saturating_sub(1)];
        debug_assert!(region.range.contains(key), "routing invariant");
        let out = f(region);
        (out, region.clone())
    }

    fn region_for(&self, key: &str) -> Arc<Region> {
        self.with_region(key, |_| ()).1
    }

    /// The table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Store a cell with an explicit timestamp (snapshot restore). Advances
    /// the logical clock past `ts` so later puts stay newer.
    pub fn put_with_timestamp(
        &self,
        key: &str,
        family: &str,
        qualifier: &str,
        value: impl Into<Bytes>,
        ts: u64,
    ) {
        self.clock.fetch_max(ts + 1, Ordering::Relaxed);
        let value = value.into();
        let (needs_split, region) = self.with_region(key, |region| {
            region.put(key, family, qualifier, value, ts, self.config.max_versions);
            region.row_count() > self.config.max_region_rows
        });
        if needs_split {
            self.try_split(&region);
        }
    }

    /// Store a cell. Returns the version timestamp assigned.
    pub fn put(&self, key: &str, family: &str, qualifier: &str, value: impl Into<Bytes>) -> u64 {
        let ts = self.clock.fetch_add(1, Ordering::Relaxed);
        let value = value.into();
        let (needs_split, region) = self.with_region(key, |region| {
            region.put(key, family, qualifier, value, ts, self.config.max_versions);
            region.row_count() > self.config.max_region_rows
        });
        if needs_split {
            self.try_split(&region);
        }
        ts
    }

    fn try_split(&self, region: &Arc<Region>) {
        let mut regions = self.regions.write();
        // someone may have split it already — find it by identity
        let Some(pos) = regions.iter().position(|r| Arc::ptr_eq(r, region)) else {
            return;
        };
        if regions[pos].row_count() <= self.config.max_region_rows {
            return;
        }
        if let Some((left, right)) = regions[pos].split() {
            regions[pos] = Arc::new(left);
            regions.insert(pos + 1, Arc::new(right));
            self.splits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Store a cell only if its latest value differs; returns whether a
    /// write happened. This is the journal-replay primitive: re-applying a
    /// batch after a mid-batch crash must not grow phantom versions on the
    /// rows the dying writer already reached.
    pub fn put_idempotent(
        &self,
        key: &str,
        family: &str,
        qualifier: &str,
        value: impl Into<Bytes>,
    ) -> bool {
        let value = value.into();
        if self.get(key, family, qualifier).as_ref() == Some(&value) {
            return false;
        }
        self.put(key, family, qualifier, value);
        true
    }

    /// Latest value of a cell.
    pub fn get(&self, key: &str, family: &str, qualifier: &str) -> Option<Bytes> {
        self.region_for(key).get(key, family, qualifier)
    }

    /// Latest value decoded as UTF-8.
    pub fn get_str(&self, key: &str, family: &str, qualifier: &str) -> Option<String> {
        self.get(key, family, qualifier).map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Snapshot a whole row.
    pub fn get_row(&self, key: &str) -> Option<RowSnapshot> {
        self.region_for(key).get_row(key)
    }

    /// Delete a row; true if it existed.
    pub fn delete_row(&self, key: &str) -> bool {
        self.with_region(key, |r| r.delete_row(key)).0
    }

    /// Delete a single cell.
    pub fn delete_cell(&self, key: &str, family: &str, qualifier: &str) -> bool {
        self.with_region(key, |r| r.delete_cell(key, family, qualifier)).0
    }

    /// Scan `[from, to)` across regions, in key order.
    pub fn scan(&self, from: &str, to: Option<&str>) -> Vec<(String, RowSnapshot)> {
        let regions: Vec<Arc<Region>> = self.regions.read().clone();
        let mut out = Vec::new();
        for region in regions {
            // skip regions entirely outside the scan window
            if let Some(t) = to {
                if region.range.start.as_str() >= t {
                    break;
                }
            }
            if let Some(e) = &region.range.end {
                if e.as_str() <= from {
                    continue;
                }
            }
            let lo = if from > region.range.start.as_str() { from } else { &region.range.start };
            let hi = match (&region.range.end, to) {
                (Some(e), Some(t)) => Some(if e.as_str() < t { e.as_str() } else { t }),
                (Some(e), None) => Some(e.as_str()),
                (None, Some(t)) => Some(t),
                (None, None) => None,
            };
            out.extend(region.scan(lo, hi));
        }
        out
    }

    /// Scan rows whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, RowSnapshot)> {
        // end bound: prefix with last byte incremented
        let mut end = prefix.as_bytes().to_vec();
        let to = loop {
            match end.last_mut() {
                Some(b) if *b < 0xff => {
                    *b += 1;
                    break Some(String::from_utf8_lossy(&end).into_owned());
                }
                Some(_) => {
                    end.pop();
                }
                None => break None,
            }
        };
        self.scan(prefix, to.as_deref())
    }

    /// Scan with a row predicate.
    pub fn scan_filter(
        &self,
        from: &str,
        to: Option<&str>,
        pred: impl Fn(&str, &RowSnapshot) -> bool,
    ) -> Vec<(String, RowSnapshot)> {
        self.scan(from, to).into_iter().filter(|(k, r)| pred(k, r)).collect()
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.regions.read().iter().map(|r| r.row_count()).sum()
    }

    /// Cluster statistics.
    pub fn stats(&self) -> PoolStats {
        let regions = self.regions.read();
        PoolStats {
            regions: regions.len(),
            rows: regions.iter().map(|r| r.row_count()).sum(),
            ops: regions.iter().map(|r| r.ops.load(Ordering::Relaxed)).sum(),
            splits: self.splits.load(Ordering::Relaxed),
        }
    }

    /// Clone the current region list (for MapReduce fan-out).
    pub fn regions(&self) -> Vec<Arc<Region>> {
        self.regions.read().clone()
    }

    /// Content fingerprint of every row under `prefix`: FNV-1a over the
    /// row keys and latest cell values of all columns, in key order.
    ///
    /// Region boundaries and split schedules do not affect the result, so
    /// two tables holding the same logical rows report the same value even
    /// when their region layouts differ — a cheap divergence probe for
    /// replicated pools (a cryptographic byte-identity proof is the
    /// caller's job; this is the fast first look).
    pub fn fingerprint(&self, prefix: &str) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            // terminator so ("ab","c") and ("a","bc") cannot collide
            h ^= 0xff;
            h.wrapping_mul(FNV_PRIME)
        }
        let mut h = FNV_OFFSET;
        for (key, row) in self.scan_prefix(prefix) {
            h = mix(h, key.as_bytes());
            for (family, qualifier, cell) in row.columns() {
                h = mix(h, family.as_bytes());
                h = mix(h, qualifier.as_bytes());
                h = mix(h, &cell.value);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let t = HTable::default();
        t.put("doc-1", "doc", "xml", "<a/>");
        assert_eq!(t.get_str("doc-1", "doc", "xml").unwrap(), "<a/>");
        assert_eq!(t.get("missing", "doc", "xml"), None);
    }

    #[test]
    fn versions_are_assigned_monotonically() {
        let t = HTable::default();
        let t1 = t.put("k", "f", "q", "1");
        let t2 = t.put("k", "f", "q", "2");
        assert!(t2 > t1);
        let row = t.get_row("k").unwrap();
        assert_eq!(row.versions("f", "q").len(), 2);
        assert_eq!(row.get_str("f", "q").unwrap(), "2");
    }

    #[test]
    fn fingerprint_ignores_region_layout_but_sees_content() {
        let small = HTable::new(TableConfig { max_versions: 3, max_region_rows: 4 });
        let big = HTable::new(TableConfig { max_versions: 3, max_region_rows: 1_000 });
        for i in 0..50 {
            small.put(&format!("doc/p/{i:03}"), "doc", "xml", format!("<v{i}/>"));
            big.put(&format!("doc/p/{i:03}"), "doc", "xml", format!("<v{i}/>"));
        }
        assert!(small.stats().regions > big.stats().regions, "layouts actually differ");
        assert_eq!(small.fingerprint("doc/"), big.fingerprint("doc/"));
        assert_eq!(small.fingerprint(""), big.fingerprint(""));
        // one diverged cell flips the fingerprint
        big.put("doc/p/007", "doc", "xml", "<tampered/>");
        assert_ne!(small.fingerprint("doc/"), big.fingerprint("doc/"));
        // rows outside the prefix are invisible to it
        assert_eq!(small.fingerprint("meta/"), HTable::default().fingerprint("meta/"));
    }

    #[test]
    fn auto_split_keeps_all_rows_reachable() {
        let t = HTable::new(TableConfig { max_versions: 1, max_region_rows: 8 });
        for i in 0..100 {
            t.put(&format!("row-{i:03}"), "f", "q", format!("v{i}"));
        }
        let stats = t.stats();
        assert!(stats.regions > 1, "splits happened: {stats:?}");
        assert_eq!(stats.rows, 100);
        assert!(stats.splits >= 1);
        for i in 0..100 {
            assert_eq!(
                t.get_str(&format!("row-{i:03}"), "f", "q").unwrap(),
                format!("v{i}"),
                "row {i} reachable after splits"
            );
        }
        // scans still see everything in order
        let all = t.scan("", None);
        assert_eq!(all.len(), 100);
        let keys: Vec<&String> = all.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pre_split_routing() {
        let t = HTable::pre_split(TableConfig::default(), &["g", "p"]);
        assert_eq!(t.stats().regions, 3);
        t.put("alpha", "f", "q", "1");
        t.put("kilo", "f", "q", "2");
        t.put("zulu", "f", "q", "3");
        assert_eq!(t.get_str("alpha", "f", "q").unwrap(), "1");
        assert_eq!(t.get_str("kilo", "f", "q").unwrap(), "2");
        assert_eq!(t.get_str("zulu", "f", "q").unwrap(), "3");
        assert_eq!(t.scan("", None).len(), 3);
    }

    #[test]
    fn scan_window_spans_regions() {
        let t = HTable::pre_split(TableConfig::default(), &["m"]);
        for k in ["a", "b", "n", "z"] {
            t.put(k, "f", "q", k);
        }
        let hits = t.scan("b", Some("z"));
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "n"]);
    }

    #[test]
    fn scan_prefix_works() {
        let t = HTable::default();
        for k in ["proc-1/doc-1", "proc-1/doc-2", "proc-2/doc-1", "other"] {
            t.put(k, "f", "q", k);
        }
        let hits = t.scan_prefix("proc-1/");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(k, _)| k.starts_with("proc-1/")));
    }

    #[test]
    fn scan_filter_applies_predicate() {
        let t = HTable::default();
        t.put("a", "meta", "status", "open");
        t.put("b", "meta", "status", "closed");
        t.put("c", "meta", "status", "open");
        let open =
            t.scan_filter("", None, |_, r| r.get_str("meta", "status").as_deref() == Some("open"));
        assert_eq!(open.len(), 2);
    }

    #[test]
    fn delete_row_and_cell() {
        let t = HTable::default();
        t.put("k", "f", "q1", "1");
        t.put("k", "f", "q2", "2");
        assert!(t.delete_cell("k", "f", "q1"));
        assert!(t.get("k", "f", "q1").is_none());
        assert!(t.get("k", "f", "q2").is_some());
        assert!(t.delete_row("k"));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let t = Arc::new(HTable::new(TableConfig { max_versions: 1, max_region_rows: 64 }));
        let threads = 8;
        let per = 250;
        crossbeam::thread::scope(|s| {
            for w in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move |_| {
                    for i in 0..per {
                        t.put(&format!("w{w}-i{i:04}"), "f", "q", format!("{w}/{i}"));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(t.row_count(), threads * per);
        let stats = t.stats();
        assert!(stats.regions > 1, "splits under concurrency: {stats:?}");
        for w in 0..threads {
            for i in (0..per).step_by(50) {
                assert_eq!(
                    t.get_str(&format!("w{w}-i{i:04}"), "f", "q").unwrap(),
                    format!("{w}/{i}")
                );
            }
        }
    }
}
