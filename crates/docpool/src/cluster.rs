//! The range-partitioned table (the "HBase cluster" of the paper's Fig. 7):
//! routing, automatic region splits, scans and statistics.

use crate::region::{KeyRange, Region};
use crate::row::{RowPredicate, RowSnapshot};
use crate::scan::{prefix_end, Scan, ScanResult, ScanStats};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One region a scan window intersects, with its clamped `[lo, hi)` bounds.
type ScanWindow = (Arc<Region>, String, Option<String>);

/// A region worker's scan output: `(rows, examined, matched)`.
type RegionScanOut = (Vec<(String, RowSnapshot)>, usize, usize);

/// Tuning knobs of a table.
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// Maximum stored versions per cell.
    pub max_versions: usize,
    /// A region splits once it holds more rows than this.
    pub max_region_rows: usize,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig { max_versions: 3, max_region_rows: 4096 }
    }
}

/// Aggregate statistics of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of regions (grows through splits).
    pub regions: usize,
    /// Total rows.
    pub rows: usize,
    /// Total operations served across regions.
    pub ops: usize,
    /// Region splits performed.
    pub splits: usize,
}

/// A sharded, versioned table of rows — the pool of DRA4WfMS documents.
///
/// Thread-safe: many readers and writers may operate concurrently; each
/// region has its own reader-writer lock, and the region list itself is
/// read-mostly.
pub struct HTable {
    config: TableConfig,
    /// Regions sorted by start key; ranges tile the keyspace.
    regions: RwLock<Vec<Arc<Region>>>,
    clock: AtomicU64,
    splits: AtomicUsize,
    /// Cumulative rows examined by scan-API queries (monitoring evidence).
    scanned_rows: AtomicUsize,
    /// Cumulative regions visited by scan-API queries.
    scanned_regions: AtomicUsize,
}

impl Default for HTable {
    fn default() -> Self {
        Self::new(TableConfig::default())
    }
}

impl HTable {
    /// Create a table with one region covering the whole keyspace.
    pub fn new(config: TableConfig) -> HTable {
        HTable {
            config,
            regions: RwLock::new(vec![Arc::new(Region::new(KeyRange::all()))]),
            clock: AtomicU64::new(1),
            splits: AtomicUsize::new(0),
            scanned_rows: AtomicUsize::new(0),
            scanned_regions: AtomicUsize::new(0),
        }
    }

    /// Create a table pre-split into `n` regions at the given split keys
    /// (HBase-style pre-splitting for bulk loads).
    pub fn pre_split(config: TableConfig, split_keys: &[&str]) -> HTable {
        let mut keys: Vec<&str> = split_keys.to_vec();
        keys.sort_unstable();
        keys.dedup();
        let mut regions = Vec::with_capacity(keys.len() + 1);
        let mut start = String::new();
        for k in &keys {
            regions.push(Arc::new(Region::new(KeyRange {
                start: start.clone(),
                end: Some(k.to_string()),
            })));
            start = k.to_string();
        }
        regions.push(Arc::new(Region::new(KeyRange { start, end: None })));
        HTable {
            config,
            regions: RwLock::new(regions),
            clock: AtomicU64::new(1),
            splits: AtomicUsize::new(0),
            scanned_rows: AtomicUsize::new(0),
            scanned_regions: AtomicUsize::new(0),
        }
    }

    /// Run `f` against the region owning `key`, while holding the region
    /// list's read lock. Mutations MUST go through this: a concurrent split
    /// replaces the region object, and a write that raced past the lookup
    /// would land in the dropped region and be lost. Splits take the list's
    /// write lock, so they serialize with in-flight operations.
    fn with_region<R>(&self, key: &str, f: impl FnOnce(&Region) -> R) -> (R, Arc<Region>) {
        let regions = self.regions.read();
        // binary search over start keys
        let idx = regions.partition_point(|r| r.range.start.as_str() <= key);
        let region = &regions[idx.saturating_sub(1)];
        debug_assert!(region.range.contains(key), "routing invariant");
        let out = f(region);
        (out, region.clone())
    }

    fn region_for(&self, key: &str) -> Arc<Region> {
        self.with_region(key, |_| ()).1
    }

    /// The table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Store a cell with an explicit timestamp (snapshot restore). Advances
    /// the logical clock past `ts` so later puts stay newer.
    pub fn put_with_timestamp(
        &self,
        key: &str,
        family: &str,
        qualifier: &str,
        value: impl Into<Bytes>,
        ts: u64,
    ) {
        self.clock.fetch_max(ts + 1, Ordering::Relaxed);
        let value = value.into();
        let (needs_split, region) = self.with_region(key, |region| {
            region.put(key, family, qualifier, value, ts, self.config.max_versions);
            region.row_count() > self.config.max_region_rows
        });
        if needs_split {
            self.try_split(&region);
        }
    }

    /// Store a cell. Returns the version timestamp assigned.
    pub fn put(&self, key: &str, family: &str, qualifier: &str, value: impl Into<Bytes>) -> u64 {
        let ts = self.clock.fetch_add(1, Ordering::Relaxed);
        let value = value.into();
        let (needs_split, region) = self.with_region(key, |region| {
            region.put(key, family, qualifier, value, ts, self.config.max_versions);
            region.row_count() > self.config.max_region_rows
        });
        if needs_split {
            self.try_split(&region);
        }
        ts
    }

    fn try_split(&self, region: &Arc<Region>) {
        let mut regions = self.regions.write();
        // someone may have split it already — find it by identity
        let Some(pos) = regions.iter().position(|r| Arc::ptr_eq(r, region)) else {
            return;
        };
        if regions[pos].row_count() <= self.config.max_region_rows {
            return;
        }
        if let Some((left, right)) = regions[pos].split() {
            regions[pos] = Arc::new(left);
            regions.insert(pos + 1, Arc::new(right));
            self.splits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Store a cell only if its latest value differs; returns whether a
    /// write happened. This is the journal-replay primitive: re-applying a
    /// batch after a mid-batch crash must not grow phantom versions on the
    /// rows the dying writer already reached.
    pub fn put_idempotent(
        &self,
        key: &str,
        family: &str,
        qualifier: &str,
        value: impl Into<Bytes>,
    ) -> bool {
        let value = value.into();
        if self.get(key, family, qualifier).as_ref() == Some(&value) {
            return false;
        }
        self.put(key, family, qualifier, value);
        true
    }

    /// Latest value of a cell.
    pub fn get(&self, key: &str, family: &str, qualifier: &str) -> Option<Bytes> {
        self.region_for(key).get(key, family, qualifier)
    }

    /// Latest value decoded as UTF-8.
    pub fn get_str(&self, key: &str, family: &str, qualifier: &str) -> Option<String> {
        self.get(key, family, qualifier).map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Snapshot a whole row.
    pub fn get_row(&self, key: &str) -> Option<RowSnapshot> {
        self.region_for(key).get_row(key)
    }

    /// Delete a row; true if it existed.
    pub fn delete_row(&self, key: &str) -> bool {
        self.with_region(key, |r| r.delete_row(key)).0
    }

    /// Delete a single cell.
    pub fn delete_cell(&self, key: &str, family: &str, qualifier: &str) -> bool {
        self.with_region(key, |r| r.delete_cell(key, family, qualifier)).0
    }

    /// Scan `[from, to)` across regions, in key order.
    pub fn scan(&self, from: &str, to: Option<&str>) -> Vec<(String, RowSnapshot)> {
        let regions: Vec<Arc<Region>> = self.regions.read().clone();
        let mut out = Vec::new();
        for region in regions {
            // skip regions entirely outside the scan window
            if let Some(t) = to {
                if region.range.start.as_str() >= t {
                    break;
                }
            }
            if let Some(e) = &region.range.end {
                if e.as_str() <= from {
                    continue;
                }
            }
            let lo = if from > region.range.start.as_str() { from } else { &region.range.start };
            let hi = match (&region.range.end, to) {
                (Some(e), Some(t)) => Some(if e.as_str() < t { e.as_str() } else { t }),
                (Some(e), None) => Some(e.as_str()),
                (None, Some(t)) => Some(t),
                (None, None) => None,
            };
            out.extend(region.scan(lo, hi));
        }
        out
    }

    /// Scan rows whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, RowSnapshot)> {
        let to = prefix_end(prefix);
        self.scan(prefix, to.as_deref())
    }

    /// Clamp a [`Scan`] window to the current region layout: returns the
    /// regions the window intersects (with per-region `[lo, hi)` bounds) and
    /// the total region count, so callers can report how many were pruned.
    fn scan_windows(&self, scan: &Scan) -> (Vec<ScanWindow>, usize) {
        let regions: Vec<Arc<Region>> = self.regions.read().clone();
        let total = regions.len();
        let mut live = Vec::new();
        for region in regions {
            if let Some(t) = &scan.to {
                if region.range.start.as_str() >= t.as_str() {
                    break;
                }
            }
            if let Some(e) = &region.range.end {
                if e.as_str() <= scan.from.as_str() {
                    continue;
                }
            }
            let lo = if scan.from.as_str() > region.range.start.as_str() {
                scan.from.clone()
            } else {
                region.range.start.clone()
            };
            let hi = match (&region.range.end, &scan.to) {
                (Some(e), Some(t)) => Some(if e < t { e.clone() } else { t.clone() }),
                (Some(e), None) => Some(e.clone()),
                (None, Some(t)) => Some(t.clone()),
                (None, None) => None,
            };
            live.push((region, lo, hi));
        }
        (live, total)
    }

    /// Execute a scan per region in parallel (chunks of `scan.threads`),
    /// returning one row vector per visited region in region order. The
    /// shared engine behind [`HTable::query`], [`HTable::query_where`],
    /// [`HTable::query_count`] and `map_reduce_scan`.
    pub(crate) fn query_partitions(
        &self,
        scan: &Scan,
        predicate: Option<RowPredicate<'_>>,
        count_only: bool,
    ) -> (Vec<Vec<(String, RowSnapshot)>>, ScanStats) {
        let (live, total) = self.scan_windows(scan);
        let visited = live.len();
        let mut parts = Vec::with_capacity(visited);
        let mut examined = 0usize;
        let mut matched = 0usize;
        for chunk in live.chunks(scan.threads.max(1)) {
            let results: Vec<RegionScanOut> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|(region, lo, hi)| {
                        s.spawn(move |_| {
                            region.scan_select(
                                lo,
                                hi.as_deref(),
                                scan.families.as_deref(),
                                predicate,
                                scan.limit,
                                count_only,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("scan worker")).collect()
            })
            .expect("scan scope");
            for (rows, ex, m) in results {
                examined += ex;
                matched += m;
                parts.push(rows);
            }
        }
        self.scanned_rows.fetch_add(examined, Ordering::Relaxed);
        self.scanned_regions.fetch_add(visited, Ordering::Relaxed);
        let stats = ScanStats {
            rows_examined: examined,
            rows_returned: matched,
            regions_visited: visited,
            regions_pruned: total - visited,
        };
        (parts, stats)
    }

    /// Run a [`Scan`]: prune regions outside the window, walk the survivors
    /// in parallel, and return the matching rows in key order together with
    /// the work accounting. Deterministic for any thread count.
    pub fn query(&self, scan: &Scan) -> ScanResult {
        self.query_with(scan, None)
    }

    /// Run a [`Scan`] with a predicate pushed down to the regions: rows are
    /// tested live under the region read lock and non-matches are never
    /// snapshot-cloned (unlike [`HTable::scan_filter`], which copies first
    /// and filters after).
    pub fn query_where(&self, scan: &Scan, predicate: RowPredicate<'_>) -> ScanResult {
        self.query_with(scan, Some(predicate))
    }

    fn query_with(&self, scan: &Scan, predicate: Option<RowPredicate<'_>>) -> ScanResult {
        let (parts, mut stats) = self.query_partitions(scan, predicate, false);
        let mut rows: Vec<(String, RowSnapshot)> = parts.into_iter().flatten().collect();
        if scan.limit > 0 && rows.len() > scan.limit {
            rows.truncate(scan.limit);
        }
        stats.rows_returned = rows.len();
        ScanResult { rows, stats }
    }

    /// Count the rows a [`Scan`] matches without cloning any snapshots.
    pub fn query_count(&self, scan: &Scan) -> usize {
        let (_, stats) = self.query_partitions(scan, None, true);
        match scan.limit {
            0 => stats.rows_returned,
            l => stats.rows_returned.min(l),
        }
    }

    /// Cumulative `(rows examined, regions visited)` across every scan-API
    /// query this table has served — exported as the `pool.scanned_rows` /
    /// `pool.scanned_regions` metric pair.
    pub fn scan_counters(&self) -> (usize, usize) {
        (self.scanned_rows.load(Ordering::Relaxed), self.scanned_regions.load(Ordering::Relaxed))
    }

    /// Scan with a row predicate.
    pub fn scan_filter(
        &self,
        from: &str,
        to: Option<&str>,
        pred: impl Fn(&str, &RowSnapshot) -> bool,
    ) -> Vec<(String, RowSnapshot)> {
        self.scan(from, to).into_iter().filter(|(k, r)| pred(k, r)).collect()
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.regions.read().iter().map(|r| r.row_count()).sum()
    }

    /// Cluster statistics.
    pub fn stats(&self) -> PoolStats {
        let regions = self.regions.read();
        PoolStats {
            regions: regions.len(),
            rows: regions.iter().map(|r| r.row_count()).sum(),
            ops: regions.iter().map(|r| r.ops.load(Ordering::Relaxed)).sum(),
            splits: self.splits.load(Ordering::Relaxed),
        }
    }

    /// Clone the current region list (for MapReduce fan-out).
    pub fn regions(&self) -> Vec<Arc<Region>> {
        self.regions.read().clone()
    }

    /// Content fingerprint of every row under `prefix`: FNV-1a over the
    /// row keys and latest cell values of all columns, in key order.
    ///
    /// Region boundaries and split schedules do not affect the result, so
    /// two tables holding the same logical rows report the same value even
    /// when their region layouts differ — a cheap divergence probe for
    /// replicated pools (a cryptographic byte-identity proof is the
    /// caller's job; this is the fast first look).
    pub fn fingerprint(&self, prefix: &str) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            // terminator so ("ab","c") and ("a","bc") cannot collide
            h ^= 0xff;
            h.wrapping_mul(FNV_PRIME)
        }
        let mut h = FNV_OFFSET;
        for (key, row) in self.scan_prefix(prefix) {
            h = mix(h, key.as_bytes());
            for (family, qualifier, cell) in row.columns() {
                h = mix(h, family.as_bytes());
                h = mix(h, qualifier.as_bytes());
                h = mix(h, &cell.value);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let t = HTable::default();
        t.put("doc-1", "doc", "xml", "<a/>");
        assert_eq!(t.get_str("doc-1", "doc", "xml").unwrap(), "<a/>");
        assert_eq!(t.get("missing", "doc", "xml"), None);
    }

    #[test]
    fn versions_are_assigned_monotonically() {
        let t = HTable::default();
        let t1 = t.put("k", "f", "q", "1");
        let t2 = t.put("k", "f", "q", "2");
        assert!(t2 > t1);
        let row = t.get_row("k").unwrap();
        assert_eq!(row.versions("f", "q").len(), 2);
        assert_eq!(row.get_str("f", "q").unwrap(), "2");
    }

    #[test]
    fn fingerprint_ignores_region_layout_but_sees_content() {
        let small = HTable::new(TableConfig { max_versions: 3, max_region_rows: 4 });
        let big = HTable::new(TableConfig { max_versions: 3, max_region_rows: 1_000 });
        for i in 0..50 {
            small.put(&format!("doc/p/{i:03}"), "doc", "xml", format!("<v{i}/>"));
            big.put(&format!("doc/p/{i:03}"), "doc", "xml", format!("<v{i}/>"));
        }
        assert!(small.stats().regions > big.stats().regions, "layouts actually differ");
        assert_eq!(small.fingerprint("doc/"), big.fingerprint("doc/"));
        assert_eq!(small.fingerprint(""), big.fingerprint(""));
        // one diverged cell flips the fingerprint
        big.put("doc/p/007", "doc", "xml", "<tampered/>");
        assert_ne!(small.fingerprint("doc/"), big.fingerprint("doc/"));
        // rows outside the prefix are invisible to it
        assert_eq!(small.fingerprint("meta/"), HTable::default().fingerprint("meta/"));
    }

    #[test]
    fn auto_split_keeps_all_rows_reachable() {
        let t = HTable::new(TableConfig { max_versions: 1, max_region_rows: 8 });
        for i in 0..100 {
            t.put(&format!("row-{i:03}"), "f", "q", format!("v{i}"));
        }
        let stats = t.stats();
        assert!(stats.regions > 1, "splits happened: {stats:?}");
        assert_eq!(stats.rows, 100);
        assert!(stats.splits >= 1);
        for i in 0..100 {
            assert_eq!(
                t.get_str(&format!("row-{i:03}"), "f", "q").unwrap(),
                format!("v{i}"),
                "row {i} reachable after splits"
            );
        }
        // scans still see everything in order
        let all = t.scan("", None);
        assert_eq!(all.len(), 100);
        let keys: Vec<&String> = all.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pre_split_routing() {
        let t = HTable::pre_split(TableConfig::default(), &["g", "p"]);
        assert_eq!(t.stats().regions, 3);
        t.put("alpha", "f", "q", "1");
        t.put("kilo", "f", "q", "2");
        t.put("zulu", "f", "q", "3");
        assert_eq!(t.get_str("alpha", "f", "q").unwrap(), "1");
        assert_eq!(t.get_str("kilo", "f", "q").unwrap(), "2");
        assert_eq!(t.get_str("zulu", "f", "q").unwrap(), "3");
        assert_eq!(t.scan("", None).len(), 3);
    }

    #[test]
    fn scan_window_spans_regions() {
        let t = HTable::pre_split(TableConfig::default(), &["m"]);
        for k in ["a", "b", "n", "z"] {
            t.put(k, "f", "q", k);
        }
        let hits = t.scan("b", Some("z"));
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "n"]);
    }

    #[test]
    fn scan_prefix_works() {
        let t = HTable::default();
        for k in ["proc-1/doc-1", "proc-1/doc-2", "proc-2/doc-1", "other"] {
            t.put(k, "f", "q", k);
        }
        let hits = t.scan_prefix("proc-1/");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(k, _)| k.starts_with("proc-1/")));
    }

    #[test]
    fn scan_filter_applies_predicate() {
        let t = HTable::default();
        t.put("a", "meta", "status", "open");
        t.put("b", "meta", "status", "closed");
        t.put("c", "meta", "status", "open");
        let open =
            t.scan_filter("", None, |_, r| r.get_str("meta", "status").as_deref() == Some("open"));
        assert_eq!(open.len(), 2);
    }

    fn seeded_table() -> HTable {
        let t = HTable::pre_split(TableConfig::default(), &["g", "p"]);
        for i in 0..30 {
            let key = format!("doc/p{:02}/000000", i % 10);
            t.put(&key, "doc", "xml", format!("<v{i}/>"));
        }
        for i in 0..10 {
            t.put(
                &format!("meta/p{i:02}"),
                "meta",
                "status",
                if i < 4 { "running" } else { "complete" },
            );
            t.put(&format!("meta/p{i:02}"), "meta", "steps", format!("{i}"));
        }
        t
    }

    #[test]
    fn query_prunes_regions_and_projects_families() {
        let t = seeded_table();
        let res = t.query(&Scan::prefix("meta/").family("meta"));
        assert_eq!(res.rows.len(), 10);
        assert_eq!(res.stats.rows_examined, 10, "only meta rows touched");
        assert!(res.stats.regions_pruned >= 1, "doc-only regions skipped: {:?}", res.stats);
        assert!(res.rows.iter().all(|(k, _)| k.starts_with("meta/")));
        let full = t.row_count();
        assert!(res.stats.rows_examined < full, "scan beats full table read ({full} rows)");
    }

    #[test]
    fn query_deterministic_across_thread_counts() {
        let t = seeded_table();
        let serial = t.query(&Scan::all().threads(1));
        let parallel = t.query(&Scan::all().threads(4));
        assert_eq!(serial.rows, parallel.rows, "thread count must not change results");
        let mut keys: Vec<&String> = serial.rows.iter().map(|(k, _)| k).collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted, "key order preserved");
    }

    #[test]
    fn query_where_pushes_predicate_down() {
        let t = seeded_table();
        let res = t.query_where(&Scan::prefix("meta/").family("meta"), &|_, row| {
            row.get_str("meta", "status").as_deref() == Some("running")
        });
        assert_eq!(res.rows.len(), 4);
        assert_eq!(res.stats.rows_examined, 10, "all meta rows examined");
        assert_eq!(res.stats.rows_returned, 4, "only matches returned");
    }

    #[test]
    fn query_count_and_limit() {
        let t = seeded_table();
        assert_eq!(t.query_count(&Scan::prefix("meta/")), 10);
        let limited = t.query(&Scan::prefix("meta/").limit(3));
        assert_eq!(limited.rows.len(), 3);
        assert_eq!(limited.rows[0].0, "meta/p00");
        let resumed = t.query(&Scan::prefix("meta/").starting_at(&limited.rows[2].0).limit(100));
        assert_eq!(resumed.rows.len(), 8, "cursor resume overlaps by one key");
    }

    #[test]
    fn scan_counters_accumulate() {
        let t = seeded_table();
        let before = t.scan_counters();
        let res = t.query(&Scan::prefix("doc/"));
        let after = t.scan_counters();
        assert_eq!(after.0 - before.0, res.stats.rows_examined);
        assert_eq!(after.1 - before.1, res.stats.regions_visited);
    }

    #[test]
    fn delete_row_and_cell() {
        let t = HTable::default();
        t.put("k", "f", "q1", "1");
        t.put("k", "f", "q2", "2");
        assert!(t.delete_cell("k", "f", "q1"));
        assert!(t.get("k", "f", "q1").is_none());
        assert!(t.get("k", "f", "q2").is_some());
        assert!(t.delete_row("k"));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let t = Arc::new(HTable::new(TableConfig { max_versions: 1, max_region_rows: 64 }));
        let threads = 8;
        let per = 250;
        crossbeam::thread::scope(|s| {
            for w in 0..threads {
                let t = Arc::clone(&t);
                s.spawn(move |_| {
                    for i in 0..per {
                        t.put(&format!("w{w}-i{i:04}"), "f", "q", format!("{w}/{i}"));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(t.row_count(), threads * per);
        let stats = t.stats();
        assert!(stats.regions > 1, "splits under concurrency: {stats:?}");
        for w in 0..threads {
            for i in (0..per).step_by(50) {
                assert_eq!(
                    t.get_str(&format!("w{w}-i{i:04}"), "f", "q").unwrap(),
                    format!("{w}/{i}")
                );
            }
        }
    }
}
