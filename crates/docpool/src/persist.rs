//! Snapshot persistence for the document pool.
//!
//! In the paper the pool's durability comes from HDFS underneath HBase.
//! Here a table can be serialized to a compact binary snapshot and restored
//! — the recovery path a production deployment would run at region-server
//! restart. The format is length-prefixed throughout, so truncated or
//! corrupted snapshots fail loudly instead of loading partial state.

use crate::cluster::{HTable, TableConfig};
use crate::row::Cell;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DRAPOOL1";

/// Errors from loading a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Wrong magic bytes (not a pool snapshot).
    BadMagic,
    /// The snapshot ended mid-record.
    Truncated,
    /// Bytes remained after the last declared record — the snapshot was
    /// extended or spliced, which length-prefixed parsing would otherwise
    /// silently ignore.
    TrailingGarbage,
    /// A string field was not valid UTF-8.
    BadString,
    /// I/O error text (file operations).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a document-pool snapshot"),
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::TrailingGarbage => {
                write!(f, "snapshot has trailing bytes after the last record")
            }
            PersistError::BadString => write!(f, "snapshot contains invalid UTF-8"),
            PersistError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn get_exact(buf: &mut Bytes, n: usize) -> Result<Bytes, PersistError> {
    if buf.remaining() < n {
        return Err(PersistError::Truncated);
    }
    Ok(buf.split_to(n))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u64())
}

fn get_str(buf: &mut Bytes) -> Result<String, PersistError> {
    let len = get_u32(buf)? as usize;
    let raw = get_exact(buf, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| PersistError::BadString)
}

impl HTable {
    /// Serialize every row (all regions, all versions) into a snapshot.
    pub fn export_snapshot(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        // config
        buf.put_u32(self.config().max_versions as u32);
        buf.put_u32(self.config().max_region_rows as u32);

        let regions = self.regions();
        let all: Vec<(String, crate::row::RowSnapshot)> =
            regions.iter().flat_map(|r| r.snapshot_all()).collect();
        buf.put_u64(all.len() as u64);
        for (key, row) in &all {
            put_str(&mut buf, key);
            let cols: Vec<(&str, &str)> = {
                let mut seen = std::collections::BTreeSet::new();
                row.columns().map(|(f, q, _)| (f, q)).filter(|fq| seen.insert(*fq)).collect()
            };
            buf.put_u32(cols.len() as u32);
            for (family, qualifier) in cols {
                put_str(&mut buf, family);
                put_str(&mut buf, qualifier);
                let versions = row.versions(family, qualifier);
                buf.put_u32(versions.len() as u32);
                for Cell { value, timestamp } in versions {
                    buf.put_u64(*timestamp);
                    put_bytes(&mut buf, value);
                }
            }
        }
        buf.to_vec()
    }

    /// Restore a table from a snapshot.
    pub fn import_snapshot(data: &[u8]) -> Result<HTable, PersistError> {
        let mut buf = Bytes::copy_from_slice(data);
        let magic = get_exact(&mut buf, MAGIC.len())?;
        if magic.as_ref() != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let max_versions = get_u32(&mut buf)? as usize;
        let max_region_rows = get_u32(&mut buf)? as usize;
        let table = HTable::new(TableConfig { max_versions, max_region_rows });

        let rows = get_u64(&mut buf)?;
        for _ in 0..rows {
            let key = get_str(&mut buf)?;
            let cols = get_u32(&mut buf)?;
            for _ in 0..cols {
                let family = get_str(&mut buf)?;
                let qualifier = get_str(&mut buf)?;
                let versions = get_u32(&mut buf)? as usize;
                // versions are stored newest-first; insert oldest-first so
                // the restored order matches
                let mut cells = Vec::with_capacity(versions);
                for _ in 0..versions {
                    let ts = get_u64(&mut buf)?;
                    let len = get_u32(&mut buf)? as usize;
                    let value = get_exact(&mut buf, len)?;
                    cells.push((ts, value));
                }
                for (ts, value) in cells.into_iter().rev() {
                    table.put_with_timestamp(&key, &family, &qualifier, value, ts);
                }
            }
        }
        if buf.has_remaining() {
            return Err(PersistError::TrailingGarbage);
        }
        Ok(table)
    }

    /// Save a snapshot to a file.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.export_snapshot()).map_err(|e| PersistError::Io(e.to_string()))
    }

    /// Load a table from a snapshot file.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<HTable, PersistError> {
        let data = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
        HTable::import_snapshot(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> HTable {
        let t = HTable::new(TableConfig { max_versions: 3, max_region_rows: 16 });
        for i in 0..50 {
            let key = format!("row-{i:03}");
            t.put(&key, "doc", "xml", format!("<doc v=\"{i}\"/>"));
            t.put(&key, "meta", "status", if i % 2 == 0 { "open" } else { "done" });
        }
        // multiple versions on one row
        for v in 0..5 {
            t.put("row-000", "doc", "xml", format!("version {v}"));
        }
        t
    }

    #[test]
    fn snapshot_roundtrip() {
        let t = sample_table();
        let snap = t.export_snapshot();
        let restored = HTable::import_snapshot(&snap).unwrap();
        assert_eq!(restored.row_count(), t.row_count());
        for i in 0..50 {
            let key = format!("row-{i:03}");
            assert_eq!(
                restored.get_str(&key, "meta", "status"),
                t.get_str(&key, "meta", "status"),
                "{key}"
            );
        }
        // versions preserved (capped at max_versions, newest first)
        let orig = t.get_row("row-000").unwrap();
        let rest = restored.get_row("row-000").unwrap();
        assert_eq!(orig.versions("doc", "xml"), rest.versions("doc", "xml"));
        assert_eq!(rest.versions("doc", "xml").len(), 3);
        assert_eq!(rest.get_str("doc", "xml").unwrap(), "version 4");
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let snap = sample_table().export_snapshot();
        for cut in [0, 4, 8, 20, snap.len() / 2, snap.len() - 1] {
            let res = HTable::import_snapshot(&snap[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut snap = sample_table().export_snapshot();
        snap.extend_from_slice(b"junk");
        assert!(matches!(HTable::import_snapshot(&snap), Err(PersistError::TrailingGarbage)));
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(matches!(HTable::import_snapshot(b"NOTAPOOLxxxxxxx"), Err(PersistError::BadMagic)));
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = HTable::default();
        let restored = HTable::import_snapshot(&t.export_snapshot()).unwrap();
        assert_eq!(restored.row_count(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let path = std::env::temp_dir().join(format!("dra-pool-{}.snap", std::process::id()));
        t.save_to_file(&path).unwrap();
        let restored = HTable::load_from_file(&path).unwrap();
        assert_eq!(restored.row_count(), t.row_count());
        std::fs::remove_file(&path).ok();
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn table_from(rows: &[(u8, String)]) -> HTable {
            let t = HTable::new(TableConfig { max_versions: 2, max_region_rows: 8 });
            for (k, v) in rows {
                t.put(&format!("row-{k:03}"), "doc", "xml", v.clone());
            }
            t
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Exact bytes round-trip; any truncation or extension fails
            /// loudly instead of loading partial or over-long state.
            #[test]
            fn snapshot_roundtrips_and_rejects_resizing(
                rows in proptest::collection::vec((any::<u8>(), "[a-z<>/\"=]{0,24}"), 0..12),
                cut_seed in 0usize..1_000_000,
                junk in proptest::collection::vec(any::<u8>(), 1..32),
            ) {
                let t = table_from(&rows);
                let snap = t.export_snapshot();

                // exact bytes restore to an equal table
                let restored = HTable::import_snapshot(&snap).unwrap();
                prop_assert_eq!(restored.row_count(), t.row_count());
                for (k, _) in &rows {
                    let key = format!("row-{k:03}");
                    prop_assert_eq!(restored.get_str(&key, "doc", "xml"),
                                    t.get_str(&key, "doc", "xml"));
                }
                prop_assert_eq!(restored.export_snapshot(), snap.clone());

                // any strict prefix is rejected
                let cut = cut_seed % snap.len();
                prop_assert!(HTable::import_snapshot(&snap[..cut]).is_err());

                // any extension is rejected as trailing garbage
                let mut extended = snap.clone();
                extended.extend_from_slice(&junk);
                prop_assert_eq!(HTable::import_snapshot(&extended).err(),
                                Some(PersistError::TrailingGarbage));
            }
        }
    }

    #[test]
    fn restored_table_still_splits_and_serves() {
        let t = sample_table();
        let restored = HTable::import_snapshot(&t.export_snapshot()).unwrap();
        // keep writing past the split threshold
        for i in 50..200 {
            restored.put(&format!("row-{i:03}"), "doc", "xml", "x");
        }
        assert!(restored.stats().regions > 1);
        assert_eq!(restored.scan_prefix("row-").len(), 200);
    }
}
