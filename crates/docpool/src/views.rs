//! Incrementally maintained fleet views — materialized monitoring
//! aggregates that replace full-table reads on dashboard paths.
//!
//! A [`FleetViews`] instance is fed by the cloud layer's journal-commit and
//! activation-bus hooks: every applied pool mutation (admission, journal
//! replay after a crash, replication commit) and every bus notification is
//! reflected here at the moment it happens, so reading a dashboard is O(view
//! size), not O(pool size).
//!
//! Every update is **idempotent**: statuses are keyed per process (a replay
//! that re-applies a batch overwrites the same entry), document progress is
//! max-merged, and commit watermarks are monotone. Re-feeding the same
//! operation therefore cannot drift a view — which is exactly what makes the
//! views crash-consistent: recovery replays the journal through the same
//! hook that live admissions use.
//!
//! The differential check (`views ≡ scan`) is the proof obligation: the
//! pool-derived views (status counts, per-process progress) must stay
//! byte-identical to a fresh [`crate::map_reduce_scan`] recompute after any
//! schedule of admissions, crashes and failovers. The cloud layer exposes it
//! as `CloudSystem::views_match_scan`.

use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Default)]
struct ViewState {
    /// pid → latest status string (source for `status_counts`).
    process_status: BTreeMap<String, String>,
    /// pid → stored document versions (max seq + 1; max-merged).
    process_progress: BTreeMap<String, u64>,
    /// portal index → admissions served.
    portal_admissions: BTreeMap<u64, u64>,
    /// portal index → activation-bus notifications published.
    portal_notifications: BTreeMap<u64, u64>,
    /// cloud name → committed journal watermark (monotone).
    cloud_commits: BTreeMap<String, u64>,
}

/// Materialized monitoring aggregates, maintained incrementally.
#[derive(Default)]
pub struct FleetViews {
    state: Mutex<ViewState>,
}

impl FleetViews {
    /// Fresh, empty views.
    pub fn new() -> FleetViews {
        FleetViews::default()
    }

    /// Record (or overwrite) a process's status. Idempotent per process.
    pub fn record_status(&self, process_id: &str, status: &str) {
        let mut st = self.state.lock();
        st.process_status.insert(process_id.to_string(), status.to_string());
    }

    /// Record a stored document version `seq` for a process. Progress is
    /// max-merged, so replays and out-of-order applies cannot double-count.
    pub fn record_doc(&self, process_id: &str, seq: u64) {
        let mut st = self.state.lock();
        let slot = st.process_progress.entry(process_id.to_string()).or_insert(0);
        *slot = (*slot).max(seq + 1);
    }

    /// Count an admission served by a portal.
    pub fn record_admission(&self, portal: u64) {
        *self.state.lock().portal_admissions.entry(portal).or_insert(0) += 1;
    }

    /// Count an activation-bus notification published by a portal.
    pub fn record_notification(&self, portal: u64) {
        *self.state.lock().portal_notifications.entry(portal).or_insert(0) += 1;
    }

    /// Record a cloud's committed journal watermark (monotone max-merge).
    pub fn record_commit(&self, cloud: &str, committed: u64) {
        let mut st = self.state.lock();
        let slot = st.cloud_commits.entry(cloud.to_string()).or_insert(0);
        *slot = (*slot).max(committed);
    }

    /// Per-status process counts, derived from the per-process status view.
    pub fn status_counts(&self) -> BTreeMap<String, u64> {
        let st = self.state.lock();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for status in st.process_status.values() {
            *counts.entry(status.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Stored document versions per process.
    pub fn progress(&self) -> BTreeMap<String, u64> {
        self.state.lock().process_progress.clone()
    }

    /// Per-cloud replication lag: the distance from each cloud's committed
    /// watermark to the furthest-ahead cloud.
    pub fn replication_lag(&self) -> BTreeMap<String, u64> {
        let st = self.state.lock();
        let head = st.cloud_commits.values().copied().max().unwrap_or(0);
        st.cloud_commits.iter().map(|(c, &w)| (c.clone(), head - w)).collect()
    }

    /// The pool-derived sections of the dashboard (status counts and
    /// per-process progress) as canonical JSON — the byte-comparison target
    /// for the differential check against a scan recompute.
    pub fn pool_view_json(&self) -> String {
        let st = self.state.lock();
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for status in st.process_status.values() {
            *counts.entry(status.as_str()).or_insert(0) += 1;
        }
        let mut out = String::from("{\"status\":{");
        push_map(&mut out, counts.iter().map(|(k, v)| (*k, *v)));
        out.push_str("},\"progress\":{");
        push_map(&mut out, st.process_progress.iter().map(|(k, v)| (k.as_str(), *v)));
        out.push_str("}}");
        out
    }

    /// Build the pool-derived sections from externally recomputed maps —
    /// used by the differential check to render the scan recompute in the
    /// identical byte format as [`FleetViews::pool_view_json`].
    pub fn render_pool_view(
        status: &BTreeMap<String, u64>,
        progress: &BTreeMap<String, u64>,
    ) -> String {
        let mut out = String::from("{\"status\":{");
        push_map(&mut out, status.iter().map(|(k, v)| (k.as_str(), *v)));
        out.push_str("},\"progress\":{");
        push_map(&mut out, progress.iter().map(|(k, v)| (k.as_str(), *v)));
        out.push_str("}}");
        out
    }

    /// The full dashboard as byte-deterministic JSON: status counts,
    /// per-portal admission/notification rates, per-cloud commit watermarks
    /// with replication lag, and progress of the still-active instances.
    pub fn dashboard_json(&self) -> String {
        let st = self.state.lock();
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for status in st.process_status.values() {
            *counts.entry(status.as_str()).or_insert(0) += 1;
        }
        let head = st.cloud_commits.values().copied().max().unwrap_or(0);
        let docs_total: u64 = st.process_progress.values().sum();

        let mut out = String::from("{\n\"status\":{");
        push_map(&mut out, counts.iter().map(|(k, v)| (*k, *v)));
        out.push_str("},\n\"portals\":{");
        let portals: Vec<u64> = st
            .portal_admissions
            .keys()
            .chain(st.portal_notifications.keys())
            .copied()
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect();
        for (i, p) in portals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let adm = st.portal_admissions.get(p).copied().unwrap_or(0);
            let ntf = st.portal_notifications.get(p).copied().unwrap_or(0);
            out.push_str(&format!("\"{p}\":{{\"admissions\":{adm},\"notifications\":{ntf}}}"));
        }
        out.push_str("},\n\"clouds\":{");
        for (i, (cloud, &w)) in st.cloud_commits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{cloud}\":{{\"committed\":{w},\"lag\":{}}}", head - w));
        }
        out.push_str("},\n\"active\":{");
        let active: Vec<(&str, u64)> = st
            .process_status
            .iter()
            .filter(|(_, s)| s.as_str() != "complete")
            .filter_map(|(pid, _)| st.process_progress.get(pid).map(|&p| (pid.as_str(), p)))
            .collect();
        push_map(&mut out, active.into_iter());
        out.push_str(&format!(
            "}},\n\"totals\":{{\"processes\":{},\"docs\":{docs_total}}}\n}}\n",
            st.process_status.len()
        ));
        out
    }

    /// Compare the pool-derived views against externally recomputed maps.
    /// `Ok(())` when identical; `Err` names the first divergent cell.
    pub fn diff_against(
        &self,
        status_scan: &BTreeMap<String, u64>,
        progress_scan: &BTreeMap<String, u64>,
    ) -> Result<(), String> {
        let view_status = self.status_counts();
        if &view_status != status_scan {
            let cell = first_diff(&view_status, status_scan);
            return Err(format!("status view diverges from scan recompute at {cell}"));
        }
        let view_progress = self.progress();
        if &view_progress != progress_scan {
            let cell = first_diff(&view_progress, progress_scan);
            return Err(format!("progress view diverges from scan recompute at {cell}"));
        }
        Ok(())
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, u64)>) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
}

fn first_diff(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> String {
    for (k, va) in a {
        match b.get(k) {
            Some(vb) if vb == va => {}
            Some(vb) => return format!("{k:?}: view={va} scan={vb}"),
            None => return format!("{k:?}: view={va} scan=absent"),
        }
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            return format!("{k:?}: view=absent scan={vb}");
        }
    }
    "<equal>".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_replay_does_not_drift() {
        let v = FleetViews::new();
        for _ in 0..3 {
            v.record_status("p1", "running");
            v.record_doc("p1", 0);
            v.record_doc("p1", 1);
            v.record_commit("east", 2);
        }
        assert_eq!(v.status_counts()["running"], 1);
        assert_eq!(v.progress()["p1"], 2);
        assert_eq!(v.replication_lag()["east"], 0);
    }

    #[test]
    fn status_transitions_move_counts() {
        let v = FleetViews::new();
        v.record_status("p1", "running");
        v.record_status("p2", "running");
        v.record_status("p1", "complete");
        let counts = v.status_counts();
        assert_eq!(counts["running"], 1);
        assert_eq!(counts["complete"], 1);
    }

    #[test]
    fn replication_lag_tracks_head() {
        let v = FleetViews::new();
        v.record_commit("east", 10);
        v.record_commit("west", 7);
        let lag = v.replication_lag();
        assert_eq!(lag["east"], 0);
        assert_eq!(lag["west"], 3);
        // watermarks are monotone: a stale re-report cannot move them back
        v.record_commit("west", 4);
        assert_eq!(v.replication_lag()["west"], 3);
    }

    #[test]
    fn pool_view_json_matches_rendered_maps() {
        let v = FleetViews::new();
        v.record_status("p1", "complete");
        v.record_status("p2", "running");
        v.record_doc("p1", 3);
        v.record_doc("p2", 0);
        let rendered = FleetViews::render_pool_view(&v.status_counts(), &v.progress());
        assert_eq!(v.pool_view_json(), rendered);
        assert_eq!(
            v.pool_view_json(),
            "{\"status\":{\"complete\":1,\"running\":1},\"progress\":{\"p1\":4,\"p2\":1}}"
        );
    }

    #[test]
    fn dashboard_json_is_stable() {
        let v = FleetViews::new();
        v.record_status("p1", "complete");
        v.record_status("p2", "running");
        v.record_doc("p1", 1);
        v.record_doc("p2", 0);
        v.record_admission(0);
        v.record_admission(0);
        v.record_notification(1);
        v.record_commit("east", 3);
        v.record_commit("west", 2);
        let a = v.dashboard_json();
        assert_eq!(a, v.dashboard_json(), "byte-deterministic re-render");
        assert!(a.contains("\"status\":{\"complete\":1,\"running\":1}"));
        assert!(a.contains("\"0\":{\"admissions\":2,\"notifications\":0}"));
        assert!(a.contains("\"1\":{\"admissions\":0,\"notifications\":1}"));
        assert!(a.contains("\"east\":{\"committed\":3,\"lag\":0}"));
        assert!(a.contains("\"west\":{\"committed\":2,\"lag\":1}"));
        assert!(a.contains("\"active\":{\"p2\":1}"), "only non-complete instances: {a}");
        assert!(a.contains("\"totals\":{\"processes\":2,\"docs\":3}"));
    }

    #[test]
    fn diff_against_names_divergent_cell() {
        let v = FleetViews::new();
        v.record_status("p1", "running");
        v.record_doc("p1", 0);
        assert!(v.diff_against(&v.status_counts(), &v.progress()).is_ok());
        let mut bad = v.progress();
        bad.insert("p1".into(), 9);
        let err = v.diff_against(&v.status_counts(), &bad).unwrap_err();
        assert!(err.contains("p1"), "{err}");
    }
}
