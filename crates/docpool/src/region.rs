//! A region: one contiguous row-key range served by one region server.
//!
//! Mirrors HBase's unit of distribution. A region owns a sorted map of rows
//! guarded by a reader-writer lock; the cluster routes each operation to the
//! region whose `[start, end)` range contains the row key and splits regions
//! that grow past a threshold.

use crate::row::{Row, RowPredicate, RowSnapshot};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A half-open row-key range `[start, end)`; `None` end means unbounded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive start key ("" = from the beginning).
    pub start: String,
    /// Exclusive end key; `None` = to the end of the keyspace.
    pub end: Option<String>,
}

impl KeyRange {
    /// The full keyspace.
    pub fn all() -> KeyRange {
        KeyRange { start: String::new(), end: None }
    }

    /// True when `key` falls inside this range.
    pub fn contains(&self, key: &str) -> bool {
        key >= self.start.as_str()
            && match &self.end {
                Some(e) => key < e.as_str(),
                None => true,
            }
    }
}

/// One region server's state.
pub struct Region {
    /// The key range this region owns.
    pub range: KeyRange,
    pub(crate) rows: RwLock<BTreeMap<String, Row>>,
    /// Operations served (for load statistics).
    pub ops: AtomicUsize,
}

impl Region {
    /// Create an empty region over `range`.
    pub fn new(range: KeyRange) -> Region {
        Region { range, rows: RwLock::new(BTreeMap::new()), ops: AtomicUsize::new(0) }
    }

    /// Insert/overwrite a cell version.
    pub fn put(
        &self,
        key: &str,
        family: &str,
        qualifier: &str,
        value: Bytes,
        timestamp: u64,
        max_versions: usize,
    ) {
        debug_assert!(self.range.contains(key));
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.rows.write().entry(key.to_string()).or_default().put(
            family,
            qualifier,
            value,
            timestamp,
            max_versions,
        );
    }

    /// Latest value of a cell.
    pub fn get(&self, key: &str, family: &str, qualifier: &str) -> Option<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.rows.read().get(key).and_then(|r| r.get(family, qualifier)).map(|c| c.value.clone())
    }

    /// Snapshot of one row.
    pub fn get_row(&self, key: &str) -> Option<RowSnapshot> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.rows.read().get(key).map(Row::snapshot)
    }

    /// Delete an entire row; true if it existed.
    pub fn delete_row(&self, key: &str) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.rows.write().remove(key).is_some()
    }

    /// Delete one column of a row.
    pub fn delete_cell(&self, key: &str, family: &str, qualifier: &str) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut rows = self.rows.write();
        let Some(row) = rows.get_mut(key) else { return false };
        let removed = row.delete(family, qualifier);
        if row.is_empty() {
            rows.remove(key);
        }
        removed
    }

    /// Number of rows held.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Scan rows with keys in `[from, to)` (clamped to this region's range),
    /// returning snapshots.
    pub fn scan(&self, from: &str, to: Option<&str>) -> Vec<(String, RowSnapshot)> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let rows = self.rows.read();
        rows.range(from.to_string()..)
            .take_while(|(k, _)| match to {
                Some(t) => k.as_str() < t,
                None => true,
            })
            .map(|(k, r)| (k.clone(), r.snapshot()))
            .collect()
    }

    /// The scan-API primitive: walk `[from, to)` in key order, evaluate the
    /// predicate against the **live** row under the read lock (pushdown —
    /// non-matching rows are never snapshot-cloned), and project only the
    /// requested column families into the snapshots that are returned.
    ///
    /// * `families: None` keeps every family; `Some(list)` clones only those.
    /// * `limit: 0` means unbounded; otherwise the walk stops after `limit`
    ///   matches (the examined count still reflects rows looked at).
    /// * `count_only` suppresses snapshot construction entirely — callers
    ///   that only need cardinality pay no clone cost.
    ///
    /// Returns `(rows, examined, matched)`; with `count_only` the row vec is
    /// empty but `matched` still counts predicate hits.
    pub fn scan_select(
        &self,
        from: &str,
        to: Option<&str>,
        families: Option<&[String]>,
        predicate: Option<RowPredicate<'_>>,
        limit: usize,
        count_only: bool,
    ) -> (Vec<(String, RowSnapshot)>, usize, usize) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let rows = self.rows.read();
        let mut out = Vec::new();
        let mut examined = 0usize;
        let mut matched = 0usize;
        for (key, row) in rows.range(from.to_string()..) {
            if let Some(t) = to {
                if key.as_str() >= t {
                    break;
                }
            }
            examined += 1;
            if let Some(pred) = predicate {
                if !pred(key, row) {
                    continue;
                }
            }
            matched += 1;
            if !count_only {
                let snap = match families {
                    Some(fams) => row.snapshot_projected(fams),
                    None => row.snapshot(),
                };
                out.push((key.clone(), snap));
            }
            if limit > 0 && matched >= limit {
                break;
            }
        }
        (out, examined, matched)
    }

    /// Snapshot every row (for MapReduce mappers).
    pub fn snapshot_all(&self) -> Vec<(String, RowSnapshot)> {
        let rows = self.rows.read();
        rows.iter().map(|(k, r)| (k.clone(), r.snapshot())).collect()
    }

    /// Split this region at its median key, returning the two halves.
    /// The caller (cluster) replaces this region with the pair.
    pub fn split(&self) -> Option<(Region, Region)> {
        let rows = self.rows.read();
        if rows.len() < 2 {
            return None;
        }
        let mid_key = rows.keys().nth(rows.len() / 2).cloned()?;
        let left =
            Region::new(KeyRange { start: self.range.start.clone(), end: Some(mid_key.clone()) });
        let right = Region::new(KeyRange { start: mid_key.clone(), end: self.range.end.clone() });
        {
            let mut lw = left.rows.write();
            let mut rw = right.rows.write();
            for (k, v) in rows.iter() {
                if k < &mid_key {
                    lw.insert(k.clone(), v.clone());
                } else {
                    rw.insert(k.clone(), v.clone());
                }
            }
        }
        Some((left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn range_containment() {
        let r = KeyRange { start: "b".into(), end: Some("m".into()) };
        assert!(r.contains("b"));
        assert!(r.contains("hello"));
        assert!(!r.contains("m"));
        assert!(!r.contains("a"));
        assert!(KeyRange::all().contains("anything"));
    }

    #[test]
    fn put_get_delete() {
        let r = Region::new(KeyRange::all());
        r.put("k1", "doc", "xml", b("v"), 1, 3);
        assert_eq!(r.get("k1", "doc", "xml"), Some(b("v")));
        assert_eq!(r.get("k2", "doc", "xml"), None);
        assert!(r.delete_row("k1"));
        assert!(!r.delete_row("k1"));
        assert_eq!(r.row_count(), 0);
    }

    #[test]
    fn delete_cell_prunes_empty_rows() {
        let r = Region::new(KeyRange::all());
        r.put("k", "f", "q", b("v"), 1, 1);
        assert!(r.delete_cell("k", "f", "q"));
        assert_eq!(r.row_count(), 0);
        assert!(!r.delete_cell("k", "f", "q"));
    }

    #[test]
    fn scan_ordered_and_bounded() {
        let r = Region::new(KeyRange::all());
        for k in ["d", "a", "c", "b"] {
            r.put(k, "f", "q", b(k), 1, 1);
        }
        let hits = r.scan("b", Some("d"));
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "c"]);
        let all = r.scan("", None);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn scan_select_pushdown_projection_and_limit() {
        let r = Region::new(KeyRange::all());
        for i in 0..6 {
            r.put(&format!("k{i}"), "doc", "xml", b("<x/>"), 1, 1);
            let status = if i % 2 == 0 { "running" } else { "complete" };
            r.put(&format!("k{i}"), "meta", "status", b(status), 1, 1);
        }
        let fams = vec!["meta".to_string()];
        let pred: RowPredicate<'_> =
            &|_, row| row.get_str("meta", "status").as_deref() == Some("running");
        let (rows, examined, matched) = r.scan_select("", None, Some(&fams), Some(pred), 0, false);
        assert_eq!((examined, matched, rows.len()), (6, 3, 3));
        assert!(
            rows.iter().all(|(_, s)| s.get("doc", "xml").is_none()),
            "doc family projected out"
        );
        assert!(rows
            .iter()
            .all(|(_, s)| s.get_str("meta", "status").as_deref() == Some("running")));

        let (rows2, _, matched2) = r.scan_select("", None, None, Some(pred), 2, false);
        assert_eq!((rows2.len(), matched2), (2, 2), "limit stops the walk early");

        let (rows3, examined3, matched3) = r.scan_select("", None, None, None, 0, true);
        assert!(rows3.is_empty(), "count_only builds no snapshots");
        assert_eq!((examined3, matched3), (6, 6));
    }

    #[test]
    fn split_partitions_rows() {
        let r = Region::new(KeyRange::all());
        for i in 0..10 {
            r.put(&format!("k{i:02}"), "f", "q", b("v"), 1, 1);
        }
        let (left, right) = r.split().unwrap();
        assert_eq!(left.row_count() + right.row_count(), 10);
        assert!(left.row_count() >= 4 && right.row_count() >= 4);
        assert_eq!(left.range.end, Some("k05".to_string()));
        assert_eq!(right.range.start, "k05");
        // all left keys < all right keys
        let lmax = left.scan("", None).last().unwrap().0.clone();
        let rmin = right.scan("", None).first().unwrap().0.clone();
        assert!(lmax < rmin);
    }

    #[test]
    fn split_refuses_tiny_regions() {
        let r = Region::new(KeyRange::all());
        r.put("only", "f", "q", b("v"), 1, 1);
        assert!(r.split().is_none());
    }

    #[test]
    fn op_counter_increments() {
        let r = Region::new(KeyRange::all());
        r.put("k", "f", "q", b("v"), 1, 1);
        r.get("k", "f", "q");
        r.scan("", None);
        assert_eq!(r.ops.load(Ordering::Relaxed), 3);
    }
}
