//! A mini MapReduce framework over the document pool.
//!
//! "The MapReduce computing model supported in the HBase system can apply
//! some statistical analyses to workflow processes or instances stored in
//! the DRA4WfMS cloud system" (§4.2). This module runs one mapper task per
//! region in parallel (crossbeam scoped threads), shuffles by key, and
//! reduces key groups in parallel.

use crate::cluster::HTable;
use crate::row::RowSnapshot;
use crate::scan::Scan;
use std::collections::BTreeMap;

/// Run a MapReduce job over every row of `table`.
///
/// * `map` — called once per row, emits zero or more `(key, value)` pairs;
/// * `reduce` — called once per distinct key with all its values;
/// * `threads` — maximum parallel mapper/reducer tasks (≥1).
///
/// Mappers run one task per region snapshot (region parallelism, like
/// HBase's `TableInputFormat` splits); reducers run over contiguous chunks
/// of the shuffled key space.
pub fn map_reduce<K, V, O, M, R>(
    table: &HTable,
    threads: usize,
    map: M,
    reduce: R,
) -> BTreeMap<K, O>
where
    K: Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&str, &RowSnapshot) -> Vec<(K, V)> + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    let threads = threads.max(1);
    let regions = table.regions();

    // --- map phase: one task per region, capped at `threads` in flight ----
    let mut emitted: Vec<Vec<(K, V)>> = Vec::new();
    for chunk in regions.chunks(threads) {
        let results = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|region| {
                    let map = &map;
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        for (key, row) in region.snapshot_all() {
                            out.extend(map(&key, &row));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("mapper panicked")).collect::<Vec<_>>()
        })
        .expect("map scope");
        emitted.extend(results);
    }

    shuffle_and_reduce(emitted, threads, reduce)
}

/// Run a MapReduce job over the rows a [`Scan`] selects instead of the whole
/// table — the monitoring-path variant that never does a full table read.
///
/// The scan's regions are walked in parallel (honouring projection, limit
/// and the scan's own thread count), producing one input split per visited
/// region; mappers then run one task per split, and shuffle/reduce proceed
/// exactly as in [`map_reduce`]. Results are deterministic for any thread
/// count. Rows touched are accounted in the table's scan counters.
pub fn map_reduce_scan<K, V, O, M, R>(
    table: &HTable,
    scan: &Scan,
    threads: usize,
    map: M,
    reduce: R,
) -> BTreeMap<K, O>
where
    K: Ord + Send,
    V: Send,
    O: Send,
    M: Fn(&str, &RowSnapshot) -> Vec<(K, V)> + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    let threads = threads.max(1);
    let (splits, _stats) = table.query_partitions(scan, None, false);

    let mut emitted: Vec<Vec<(K, V)>> = Vec::new();
    for chunk in splits.chunks(threads) {
        let results = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|split| {
                    let map = &map;
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        for (key, row) in split {
                            out.extend(map(key, row));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("mapper panicked")).collect::<Vec<_>>()
        })
        .expect("map scope");
        emitted.extend(results);
    }

    shuffle_and_reduce(emitted, threads, reduce)
}

/// Shuffle emitted pairs by key, then reduce key groups in parallel chunks.
fn shuffle_and_reduce<K, V, O, R>(
    emitted: Vec<Vec<(K, V)>>,
    threads: usize,
    reduce: R,
) -> BTreeMap<K, O>
where
    K: Ord + Send,
    V: Send,
    O: Send,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for part in emitted {
        for (k, v) in part {
            groups.entry(k).or_default().push(v);
        }
    }

    let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
    if entries.is_empty() {
        return BTreeMap::new();
    }
    let chunk_size = entries.len().div_ceil(threads);
    let reduced: Vec<Vec<(K, O)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = entries
            .into_iter()
            .fold(Vec::new(), |mut acc: Vec<Vec<(K, Vec<V>)>>, item| {
                match acc.last_mut() {
                    Some(last) if last.len() < chunk_size => last.push(item),
                    _ => acc.push(vec![item]),
                }
                acc
            })
            .into_iter()
            .map(|chunk| {
                let reduce = &reduce;
                s.spawn(move |_| {
                    chunk
                        .into_iter()
                        .map(|(k, vs)| {
                            let o = reduce(&k, vs);
                            (k, o)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reducer panicked")).collect()
    })
    .expect("reduce scope");

    reduced.into_iter().flatten().collect()
}

/// Convenience: count rows per key emitted by `classify`.
pub fn count_by<K, F>(table: &HTable, threads: usize, classify: F) -> BTreeMap<K, usize>
where
    K: Ord + Send,
    F: Fn(&str, &RowSnapshot) -> Option<K> + Sync,
{
    map_reduce(
        table,
        threads,
        |k, r| classify(k, r).map(|key| (key, 1usize)).into_iter().collect(),
        |_, vs| vs.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::TableConfig;

    fn table_with_statuses() -> HTable {
        let t = HTable::new(TableConfig { max_versions: 1, max_region_rows: 16 });
        for i in 0..200 {
            let status = if i % 3 == 0 { "done" } else { "running" };
            t.put(&format!("proc-{i:04}"), "meta", "status", status);
            t.put(&format!("proc-{i:04}"), "meta", "steps", format!("{}", i % 7));
        }
        t
    }

    #[test]
    fn count_by_status() {
        let t = table_with_statuses();
        let counts = count_by(&t, 4, |_, row| row.get_str("meta", "status"));
        assert_eq!(counts["done"], 67, "0,3,...,198 inclusive");
        assert_eq!(counts["running"], 133);
    }

    #[test]
    fn sum_steps_per_status() {
        let t = table_with_statuses();
        let sums = map_reduce(
            &t,
            4,
            |_, row| {
                let status = row.get_str("meta", "status");
                let steps = row.get_str("meta", "steps").and_then(|s| s.parse::<u64>().ok());
                match (status, steps) {
                    (Some(st), Some(n)) => vec![(st, n)],
                    _ => vec![],
                }
            },
            |_, vs| vs.iter().sum::<u64>(),
        );
        let total: u64 = sums.values().sum();
        let expected: u64 = (0..200u64).map(|i| i % 7).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn empty_table_yields_empty_result() {
        let t = HTable::default();
        let counts = count_by(&t, 4, |_, row| row.get_str("meta", "status"));
        assert!(counts.is_empty());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let t = table_with_statuses();
        let a = count_by(&t, 1, |_, row| row.get_str("meta", "status"));
        let b = count_by(&t, 8, |_, row| row.get_str("meta", "status"));
        assert_eq!(a, b, "determinism across thread counts");
    }

    #[test]
    fn map_reduce_scan_matches_filtered_full_job() {
        let t = table_with_statuses();
        // scan-backed job over a key window...
        let windowed = map_reduce_scan(
            &t,
            &Scan::range("proc-0050", Some("proc-0100".to_string())).threads(4),
            4,
            |_, row| row.get_str("meta", "status").map(|s| (s, 1usize)).into_iter().collect(),
            |_, vs| vs.len(),
        );
        // ...must agree with a full-table job that filters in the mapper
        let full = map_reduce(
            &t,
            4,
            |key, row| {
                if ("proc-0050".."proc-0100").contains(&key) {
                    row.get_str("meta", "status").map(|s| (s, 1usize)).into_iter().collect()
                } else {
                    vec![]
                }
            },
            |_, vs| vs.len(),
        );
        assert_eq!(windowed, full);
        assert_eq!(windowed.values().sum::<usize>(), 50);
    }

    #[test]
    fn map_reduce_scan_deterministic_across_threads() {
        let t = table_with_statuses();
        let job = |threads: usize| {
            map_reduce_scan(
                &t,
                &Scan::all().threads(threads),
                threads,
                |k, _| vec![(k.to_string(), 1usize)],
                |_, vs| vs.len(),
            )
        };
        assert_eq!(job(1), job(8));
    }

    #[test]
    fn mapper_sees_every_row_once() {
        let t = table_with_statuses();
        let counts = count_by(&t, 4, |key, _| Some(key.to_string()));
        assert_eq!(counts.len(), 200);
        assert!(counts.values().all(|&c| c == 1));
    }
}
