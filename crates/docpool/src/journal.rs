//! A length-prefixed write-ahead journal for multi-row pool updates.
//!
//! A portal's admission writes several rows that must land atomically: the
//! `seen/<digest>` idempotency row, the document row, meta rows and TO-DO
//! notifications. The pool itself (like HBase) only guarantees single-row
//! atomicity, so a portal that dies between two puts would leave the pool
//! claiming "these bytes are stored" while the document row is missing —
//! silent document loss behind a `duplicate` ack.
//!
//! The journal closes that window with the classic WAL discipline:
//!
//! 1. [`Journal::append`] the full batch of puts (the *intent*),
//! 2. apply the puts to the pool in any order, crashes allowed anywhere,
//! 3. [`Journal::commit_through`] the record once every put landed.
//!
//! Recovery ([`Journal::replay_into`]) re-applies every record past the
//! committed watermark. Replay is idempotent — each put lands via
//! [`HTable::put_idempotent`], so rows the dying portal already wrote are
//! left untouched instead of growing phantom versions.
//!
//! The serialized form ([`Journal::export`] / [`Journal::import`]) is
//! length-prefixed throughout, like the pool snapshot format. A torn final
//! record — the bytes a crash cut off mid-append — is dropped on import
//! rather than rejected: an incomplete intent was by definition never
//! applied, so discarding it is the correct recovery.

use crate::cluster::HTable;
use crate::persist::PersistError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dra_obs::{stage, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const MAGIC: &[u8; 8] = b"DRAWAL01";

/// One pending cell write inside a journaled batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PutOp {
    /// Row key.
    pub key: String,
    /// Column family.
    pub family: String,
    /// Column qualifier.
    pub qualifier: String,
    /// Cell value.
    pub value: Bytes,
}

impl PutOp {
    /// Build a put operation.
    pub fn new(
        key: impl Into<String>,
        family: impl Into<String>,
        qualifier: impl Into<String>,
        value: impl Into<Bytes>,
    ) -> PutOp {
        PutOp {
            key: key.into(),
            family: family.into(),
            qualifier: qualifier.into(),
            value: value.into(),
        }
    }

    /// Apply this put idempotently: a no-op when the cell's latest value
    /// already equals `value` (the replay path after a mid-batch crash).
    pub fn apply(&self, table: &HTable) {
        table.put_idempotent(&self.key, &self.family, &self.qualifier, self.value.clone());
    }
}

struct JournalState {
    records: Vec<Vec<PutOp>>,
    /// Records `[0, committed)` are fully applied to the pool.
    committed: usize,
}

/// The write-ahead journal: an append-only record log with a committed
/// watermark. Thread-safe; shared by every portal of a deployment the same
/// way the pool is.
pub struct Journal {
    state: Mutex<JournalState>,
    replayed: AtomicU64,
    /// Span recorder for commit/replay events. Interior-mutable because the
    /// journal is shared behind an `Arc` by the time a deployment decides to
    /// trace; set via [`Journal::set_tracer`].
    tracer: Mutex<Tracer>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal {
            state: Mutex::new(JournalState { records: Vec::new(), committed: 0 }),
            replayed: AtomicU64::new(0),
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    /// Record `journal:commit` / `journal:replay` spans into `tracer`.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.lock().unwrap_or_else(|e| e.into_inner()) = tracer;
    }

    fn tracer(&self) -> Tracer {
        self.tracer.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Append a batch as one record; returns its index for
    /// [`Journal::commit_through`].
    pub fn append(&self, ops: Vec<PutOp>) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.records.push(ops);
        state.records.len() - 1
    }

    /// Mark record `idx` (and everything before it) fully applied.
    pub fn commit_through(&self, idx: usize) {
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let next = (idx + 1).min(state.records.len());
            state.committed = state.committed.max(next);
        }
        let mut span = self.tracer().span(stage::JOURNAL_COMMIT).actor("journal");
        span.attr("record", idx);
        span.end();
    }

    /// Total records appended.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records appended but not yet committed — what a restart would replay.
    pub fn uncommitted(&self) -> usize {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.records.len() - state.committed
    }

    /// Total records replayed by [`Journal::replay_into`] over this
    /// journal's lifetime.
    pub fn replayed_records(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Recovery: idempotently re-apply every uncommitted record, in append
    /// order, then advance the watermark. Returns how many records were
    /// replayed (0 when the last writer committed cleanly).
    pub fn replay_into(&self, table: &HTable) -> usize {
        self.replay_into_with(table, |_| {})
    }

    /// [`Journal::replay_into`] with a per-op observer, called for every
    /// replayed [`PutOp`] after it lands. Recovery paths use this to re-derive
    /// side effects that only the dying writer knew about — e.g. a portal
    /// re-emitting scheduler activations for replayed `todo/` rows.
    pub fn replay_into_with(&self, table: &HTable, mut observe: impl FnMut(&PutOp)) -> usize {
        let mut span = self.tracer().span(stage::JOURNAL_REPLAY).actor("journal");
        let pending = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let pending = state.records.len() - state.committed;
            for record in &state.records[state.committed..] {
                for op in record {
                    op.apply(table);
                    observe(op);
                }
            }
            state.committed = state.records.len();
            pending
        };
        self.replayed.fetch_add(pending as u64, Ordering::Relaxed);
        span.attr("replayed", pending);
        span.end();
        pending
    }

    /// Serialize the journal: magic, committed watermark, then one
    /// length-prefixed record per batch.
    pub fn export(&self) -> Vec<u8> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64(state.committed as u64);
        for record in &state.records {
            let mut body = BytesMut::new();
            body.put_u32(record.len() as u32);
            for op in record {
                for s in [&op.key, &op.family, &op.qualifier] {
                    body.put_u32(s.len() as u32);
                    body.put_slice(s.as_bytes());
                }
                body.put_u32(op.value.len() as u32);
                body.put_slice(&op.value);
            }
            buf.put_u32(body.len() as u32);
            buf.put_slice(&body);
        }
        buf.to_vec()
    }

    /// Deserialize a journal. A torn final record (length prefix promising
    /// more bytes than remain — the crash-mid-append case) is silently
    /// dropped; corruption *inside* a complete record is an error. The
    /// committed watermark is clamped to the records that survived.
    pub fn import(data: &[u8]) -> Result<Journal, PersistError> {
        let mut buf = Bytes::copy_from_slice(data);
        if buf.remaining() < MAGIC.len() + 8 {
            return Err(PersistError::Truncated);
        }
        if buf.split_to(MAGIC.len()).as_ref() != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let committed = buf.get_u64() as usize;
        let mut records = Vec::new();
        loop {
            if buf.remaining() < 4 {
                break; // torn length prefix (or clean end)
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                break; // torn record body: the intent never fully landed
            }
            let mut body = buf.split_to(len);
            records.push(parse_record(&mut body)?);
        }
        let committed = committed.min(records.len());
        Ok(Journal {
            state: Mutex::new(JournalState { records, committed }),
            replayed: AtomicU64::new(0),
            tracer: Mutex::new(Tracer::disabled()),
        })
    }
}

fn parse_record(body: &mut Bytes) -> Result<Vec<PutOp>, PersistError> {
    let take = |body: &mut Bytes, n: usize| -> Result<Bytes, PersistError> {
        if body.remaining() < n {
            return Err(PersistError::Truncated);
        }
        Ok(body.split_to(n))
    };
    let take_u32 = |body: &mut Bytes| -> Result<usize, PersistError> {
        if body.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        Ok(body.get_u32() as usize)
    };
    let take_str = |body: &mut Bytes| -> Result<String, PersistError> {
        let n = take_u32(body)?;
        let raw = take(body, n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| PersistError::BadString)
    };

    let nops = take_u32(body)?;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let key = take_str(body)?;
        let family = take_str(body)?;
        let qualifier = take_str(body)?;
        let vlen = take_u32(body)?;
        let value = take(body, vlen)?;
        ops.push(PutOp { key, family, qualifier, value });
    }
    if body.has_remaining() {
        return Err(PersistError::TrailingGarbage);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::TableConfig;

    fn batch(i: usize) -> Vec<PutOp> {
        vec![
            PutOp::new(format!("seen/{i}"), "meta", "seq", i.to_string()),
            PutOp::new(format!("doc/p/{i:06}"), "doc", "xml", format!("<doc v=\"{i}\"/>")),
        ]
    }

    #[test]
    fn replay_applies_only_uncommitted_records() {
        let table = HTable::default();
        let journal = Journal::new();
        let a = journal.append(batch(0));
        for op in &batch(0) {
            op.apply(&table);
        }
        journal.commit_through(a);
        journal.append(batch(1)); // intent logged, never applied — the crash
        assert_eq!(journal.uncommitted(), 1);

        assert_eq!(journal.replay_into(&table), 1);
        assert_eq!(table.get_str("doc/p/000001", "doc", "xml").unwrap(), "<doc v=\"1\"/>");
        assert_eq!(journal.uncommitted(), 0);
        assert_eq!(journal.replayed_records(), 1);
        // a second recovery finds nothing to do
        assert_eq!(journal.replay_into(&table), 0);
    }

    #[test]
    fn replay_is_idempotent_on_partially_applied_batches() {
        let table = HTable::default();
        let journal = Journal::new();
        let ops = batch(0);
        journal.append(ops.clone());
        // the portal died after applying only the first op
        ops[0].apply(&table);

        journal.replay_into(&table);
        // the half-applied row did not grow a second version
        let row = table.get_row("seen/0").unwrap();
        assert_eq!(row.versions("meta", "seq").len(), 1);
        assert_eq!(table.get_str("doc/p/000000", "doc", "xml").unwrap(), "<doc v=\"0\"/>");
    }

    #[test]
    fn export_import_roundtrip_preserves_watermark() {
        let journal = Journal::new();
        let a = journal.append(batch(0));
        journal.append(batch(1));
        journal.commit_through(a);

        let restored = Journal::import(&journal.export()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.uncommitted(), 1);
        let table = HTable::new(TableConfig::default());
        assert_eq!(restored.replay_into(&table), 1);
        assert!(table.get("doc/p/000000", "doc", "xml").is_none(), "committed not replayed");
        assert!(table.get("doc/p/000001", "doc", "xml").is_some());
    }

    #[test]
    fn torn_final_record_is_dropped_not_fatal() {
        let journal = Journal::new();
        journal.append(batch(0));
        journal.append(batch(1));
        let full = journal.export();
        // cut into the final record's body: crash mid-append
        for cut in [full.len() - 1, full.len() - 10] {
            let restored = Journal::import(&full[..cut]).unwrap();
            assert_eq!(restored.len(), 1, "torn tail dropped at cut {cut}");
        }
        // cutting into the header is real corruption
        assert!(Journal::import(&full[..4]).is_err());
        assert!(Journal::import(b"NOTAWAL0\0\0\0\0\0\0\0\0").is_err());
    }

    #[test]
    fn committed_watermark_clamped_to_surviving_records() {
        let journal = Journal::new();
        let a = journal.append(batch(0));
        journal.commit_through(a);
        let mut bytes = journal.export();
        // drop the (committed) record's bytes, keeping the watermark of 1
        bytes.truncate(MAGIC.len() + 8 + 2);
        let restored = Journal::import(&bytes).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.uncommitted(), 0);
    }

    #[test]
    fn commit_through_out_of_range_is_clamped() {
        let journal = Journal::new();
        journal.append(batch(0));
        journal.commit_through(99);
        assert_eq!(journal.uncommitted(), 0);
    }
}
