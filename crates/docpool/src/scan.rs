//! Typed pool scans: bounded key windows with column-family projection,
//! predicate pushdown, and per-region parallel execution.
//!
//! A [`Scan`] describes *what* to read — a `[from, to)` key window (or a key
//! prefix), an optional family projection, an optional match limit — and
//! [`crate::HTable::query`] / [`crate::HTable::query_where`] decide *how*:
//! regions wholly outside the window are pruned without being touched, the
//! surviving regions are walked in parallel on a crossbeam scope, and the
//! per-region results are concatenated in region (= key) order so the output
//! is byte-deterministic regardless of thread count.
//!
//! This is the monitoring-path replacement for full-table MapReduce reads:
//! a dashboard query over `meta/` rows examines only the regions and rows
//! that can hold `meta/` keys, and [`ScanStats`] reports exactly how many
//! rows and regions were touched so benches can prove the saving.

/// Declarative description of a pool scan.
#[derive(Clone, Debug)]
pub struct Scan {
    pub(crate) from: String,
    pub(crate) to: Option<String>,
    pub(crate) families: Option<Vec<String>>,
    pub(crate) limit: usize,
    pub(crate) threads: usize,
}

impl Scan {
    /// Scan the half-open key window `[from, to)`; `None` end = unbounded.
    pub fn range(from: impl Into<String>, to: Option<String>) -> Scan {
        Scan { from: from.into(), to, families: None, limit: 0, threads: 1 }
    }

    /// Scan the whole keyspace.
    pub fn all() -> Scan {
        Scan::range("", None)
    }

    /// Scan every key starting with `prefix`.
    pub fn prefix(prefix: &str) -> Scan {
        Scan::range(prefix, prefix_end(prefix))
    }

    /// Project only this column family into the returned snapshots (may be
    /// called repeatedly to keep several families). Rows are still matched
    /// on their full live contents; projection only trims what gets cloned.
    pub fn family(mut self, family: &str) -> Scan {
        self.families.get_or_insert_with(Vec::new).push(family.to_string());
        self
    }

    /// Stop after `limit` matching rows (0 = unbounded). The limit applies
    /// per region and again globally after concatenation, so the result is
    /// the first `limit` matches in key order.
    pub fn limit(mut self, limit: usize) -> Scan {
        self.limit = limit;
        self
    }

    /// Start the window at `key` if it is later than the current start —
    /// used by cursored readers (e.g. the audit sampler) to resume a prefix
    /// scan mid-keyspace.
    pub fn starting_at(mut self, key: &str) -> Scan {
        if key > self.from.as_str() {
            self.from = key.to_string();
        }
        self
    }

    /// Number of worker threads for per-region execution (default 1).
    pub fn threads(mut self, threads: usize) -> Scan {
        self.threads = threads.max(1);
        self
    }
}

/// How much work a scan actually did — the evidence that monitoring queries
/// no longer read the whole table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows examined under region read locks (match or not).
    pub rows_examined: usize,
    /// Rows that matched and were returned (or counted, for count-only).
    pub rows_returned: usize,
    /// Regions whose key range intersected the window and were walked.
    pub regions_visited: usize,
    /// Regions skipped outright because their range missed the window.
    pub regions_pruned: usize,
}

/// A scan's rows (key order) plus its work accounting.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Matching rows as `(key, snapshot)`, ascending by key.
    pub rows: Vec<(String, crate::RowSnapshot)>,
    /// Work accounting for this scan.
    pub stats: ScanStats,
}

/// Exclusive upper bound for "every key starting with `prefix`": the prefix
/// with its last byte incremented (trailing 0xff bytes are popped first).
/// `None` means the prefix is unbounded above (empty or all-0xff).
pub(crate) fn prefix_end(prefix: &str) -> Option<String> {
    let mut bytes = prefix.as_bytes().to_vec();
    while let Some(&last) = bytes.last() {
        if last == 0xff {
            bytes.pop();
        } else {
            *bytes.last_mut().expect("non-empty") = last + 1;
            // Safety of the unwrap: we only ever increment a byte that was
            // part of a valid UTF-8 string and below 0xff; the result can be
            // invalid UTF-8 only for multi-byte sequences, so fall back to
            // lossy which still sorts correctly for ASCII key schemas.
            return Some(String::from_utf8_lossy(&bytes).into_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_end_increments_last_byte() {
        assert_eq!(prefix_end("doc/"), Some("doc0".to_string()));
        assert_eq!(prefix_end("meta/"), Some("meta0".to_string()));
        assert_eq!(prefix_end(""), None);
    }

    #[test]
    fn builder_accumulates() {
        let s = Scan::prefix("doc/").family("doc").family("meta").limit(5).threads(4);
        assert_eq!(s.from, "doc/");
        assert_eq!(s.to, Some("doc0".to_string()));
        assert_eq!(s.families.as_deref(), Some(&["doc".to_string(), "meta".to_string()][..]));
        assert_eq!((s.limit, s.threads), (5, 4));
    }

    #[test]
    fn starting_at_only_moves_forward() {
        let s = Scan::prefix("doc/").starting_at("doc/p/000003");
        assert_eq!(s.from, "doc/p/000003");
        let s = Scan::prefix("doc/").starting_at("abc");
        assert_eq!(s.from, "doc/", "earlier cursor cannot widen the window");
    }
}
