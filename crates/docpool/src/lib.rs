//! # dra-docpool — the pool of DRA4WfMS documents
//!
//! The paper stores documents in HBase on Hadoop: "HBase is a distributed
//! column-oriented database … the optimal Hadoop application to use when
//! real-time read/write random accesses to very large datasets are required.
//! A DRA4WfMS document is stored as a cell in a row of an HBase table"
//! (§4.2). This crate reproduces the slice of that stack the system relies
//! on, in-process and thread-parallel:
//!
//! * [`row`] — rows, column families, qualified cells with versions
//! * [`region`] — a contiguous row-key range owned by one region server
//! * [`cluster`] — the range-partitioned table: routing, automatic region
//!   splits, scans, filters
//! * [`mapreduce`] — a mini MapReduce framework running mappers per region
//!   in parallel (the paper's "MapReduce computing model … can apply some
//!   statistical analyses to workflow processes or instances stored in the
//!   DRA4WfMS cloud system")
//! * [`scan`] — typed bounded scans with family projection, predicate
//!   pushdown and per-region parallel execution (the monitoring-query path
//!   that replaces full-table reads)
//! * [`views`] — incrementally maintained fleet views with a differential
//!   `views ≡ scan` proof obligation
//!
//! Concurrency is reader-writer per region via `parking_lot`, with region
//! fan-out via `crossbeam` scoped threads — the document pool is the
//! scalability substrate for the cloud experiments (claims C4/C5 in
//! DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod journal;
pub mod mapreduce;
pub mod persist;
pub mod region;
pub mod row;
pub mod scan;
pub mod views;

pub use cluster::{HTable, PoolStats, TableConfig};
pub use journal::{Journal, PutOp};
pub use mapreduce::{map_reduce, map_reduce_scan};
pub use persist::PersistError;
pub use row::{Cell, Row, RowPredicate, RowSnapshot};
pub use scan::{Scan, ScanResult, ScanStats};
pub use views::FleetViews;
