//! Rows, column families and versioned cells — the HBase data model.

use bytes::Bytes;
use std::collections::BTreeMap;

/// One stored value with its version timestamp (a logical, monotonically
/// increasing sequence number assigned by the table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// The stored bytes.
    pub value: Bytes,
    /// Logical write timestamp (newer = larger).
    pub timestamp: u64,
}

/// A row: `family -> qualifier -> versions (newest first)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Row {
    pub(crate) families: BTreeMap<String, BTreeMap<String, Vec<Cell>>>,
}

/// A predicate pushed down to the regions: evaluated per `(key, row)` under
/// the region read lock, before any snapshot is cloned.
pub type RowPredicate<'a> = &'a (dyn Fn(&str, &Row) -> bool + Sync);

impl Row {
    /// Insert a cell version, keeping at most `max_versions` (newest first).
    pub fn put(
        &mut self,
        family: &str,
        qualifier: &str,
        value: Bytes,
        timestamp: u64,
        max_versions: usize,
    ) {
        let versions = self
            .families
            .entry(family.to_string())
            .or_default()
            .entry(qualifier.to_string())
            .or_default();
        versions.insert(0, Cell { value, timestamp });
        versions.truncate(max_versions.max(1));
    }

    /// Latest value of a qualified column.
    pub fn get(&self, family: &str, qualifier: &str) -> Option<&Cell> {
        self.families.get(family)?.get(qualifier)?.first()
    }

    /// All versions of a qualified column, newest first.
    pub fn versions(&self, family: &str, qualifier: &str) -> &[Cell] {
        self.families.get(family).and_then(|f| f.get(qualifier)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Latest value of a qualified column decoded as UTF-8 (lossless only
    /// if it was UTF-8). The predicate-pushdown accessor: scan predicates
    /// run against live [`Row`]s under the region read lock, *before* any
    /// snapshot is cloned.
    pub fn get_str(&self, family: &str, qualifier: &str) -> Option<String> {
        self.get(family, qualifier).map(|c| String::from_utf8_lossy(&c.value).into_owned())
    }

    /// Delete a qualified column; returns true if something was removed.
    pub fn delete(&mut self, family: &str, qualifier: &str) -> bool {
        if let Some(f) = self.families.get_mut(family) {
            let removed = f.remove(qualifier).is_some();
            if f.is_empty() {
                self.families.remove(family);
            }
            return removed;
        }
        false
    }

    /// True when the row holds no cells.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Immutable snapshot for scans and MapReduce.
    pub fn snapshot(&self) -> RowSnapshot {
        RowSnapshot { families: self.families.clone() }
    }

    /// Snapshot only the listed column families — the projection half of
    /// the scan API. Families the row does not hold are silently absent;
    /// an empty `families` list means "project nothing" and yields an
    /// empty snapshot (callers wanting everything use [`Row::snapshot`]).
    pub fn snapshot_projected(&self, families: &[String]) -> RowSnapshot {
        RowSnapshot {
            families: self
                .families
                .iter()
                .filter(|(f, _)| families.iter().any(|want| want == *f))
                .map(|(f, quals)| (f.clone(), quals.clone()))
                .collect(),
        }
    }

    /// Approximate memory footprint in bytes (used by split heuristics).
    pub fn approx_size(&self) -> usize {
        self.families
            .iter()
            .map(|(f, quals)| {
                f.len()
                    + quals
                        .iter()
                        .map(|(q, cells)| {
                            q.len() + cells.iter().map(|c| c.value.len() + 8).sum::<usize>()
                        })
                        .sum::<usize>()
            })
            .sum()
    }
}

/// An immutable copy of a row handed to scanners and mappers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSnapshot {
    families: BTreeMap<String, BTreeMap<String, Vec<Cell>>>,
}

impl RowSnapshot {
    /// Latest value of a qualified column.
    pub fn get(&self, family: &str, qualifier: &str) -> Option<&Bytes> {
        Some(&self.families.get(family)?.get(qualifier)?.first()?.value)
    }

    /// Latest value decoded as UTF-8 (lossless only if it was UTF-8).
    pub fn get_str(&self, family: &str, qualifier: &str) -> Option<String> {
        self.get(family, qualifier).map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// All versions of a column, newest first.
    pub fn versions(&self, family: &str, qualifier: &str) -> &[Cell] {
        self.families.get(family).and_then(|f| f.get(qualifier)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(family, qualifier, latest cell)`.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &str, &Cell)> {
        self.families.iter().flat_map(|(f, quals)| {
            quals
                .iter()
                .filter_map(move |(q, cells)| cells.first().map(|c| (f.as_str(), q.as_str(), c)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get() {
        let mut r = Row::default();
        r.put("doc", "xml", b("<a/>"), 1, 3);
        assert_eq!(r.get("doc", "xml").unwrap().value, b("<a/>"));
        assert!(r.get("doc", "missing").is_none());
        assert!(r.get("nofam", "xml").is_none());
    }

    #[test]
    fn versions_newest_first_and_capped() {
        let mut r = Row::default();
        for t in 1..=5 {
            r.put("doc", "xml", b(&format!("v{t}")), t, 3);
        }
        let vs = r.versions("doc", "xml");
        assert_eq!(vs.len(), 3, "capped at max_versions");
        assert_eq!(vs[0].value, b("v5"));
        assert_eq!(vs[2].value, b("v3"));
        assert_eq!(r.get("doc", "xml").unwrap().timestamp, 5);
    }

    #[test]
    fn delete_column() {
        let mut r = Row::default();
        r.put("doc", "xml", b("x"), 1, 1);
        r.put("meta", "status", b("open"), 2, 1);
        assert!(r.delete("doc", "xml"));
        assert!(!r.delete("doc", "xml"), "already gone");
        assert!(r.get("doc", "xml").is_none());
        assert!(!r.is_empty());
        assert!(r.delete("meta", "status"));
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_is_independent() {
        let mut r = Row::default();
        r.put("f", "q", b("1"), 1, 2);
        let snap = r.snapshot();
        r.put("f", "q", b("2"), 2, 2);
        assert_eq!(snap.get("f", "q").unwrap(), &b("1"));
        assert_eq!(snap.get_str("f", "q").unwrap(), "1");
        assert_eq!(r.get("f", "q").unwrap().value, b("2"));
    }

    #[test]
    fn snapshot_columns_iteration() {
        let mut r = Row::default();
        r.put("a", "x", b("1"), 1, 1);
        r.put("b", "y", b("2"), 2, 1);
        let snap = r.snapshot();
        let cols: Vec<(String, String)> =
            snap.columns().map(|(f, q, _)| (f.to_string(), q.to_string())).collect();
        assert_eq!(cols, vec![("a".into(), "x".into()), ("b".into(), "y".into())]);
    }

    #[test]
    fn approx_size_grows() {
        let mut r = Row::default();
        let s0 = r.approx_size();
        r.put("f", "q", b("0123456789"), 1, 3);
        assert!(r.approx_size() > s0 + 10);
    }
}
