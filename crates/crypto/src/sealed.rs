//! Hybrid authenticated encryption: sealed boxes (public-key) and secret
//! boxes (symmetric), both ChaCha20 + HMAC-SHA256 encrypt-then-MAC.
//!
//! These are the concrete mechanisms behind the paper's element-wise
//! encryption: a form field destined for participants {P1, P2} is encrypted
//! once under a fresh content key with [`secretbox_seal`], and the content
//! key is wrapped to each recipient's X25519 public key with [`seal`]. The
//! advanced operational model also seals fresh execution results to the TFC
//! server's public key (the paper's `{{R}}Pub(TFC)`).

use crate::chacha20::ChaCha20;
use crate::ct::ct_eq;
use crate::hmac::hmac_sha256;
use crate::sha2::Sha256;
use crate::x25519::{X25519PublicKey, X25519Secret};

/// Errors from opening a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Ciphertext is shorter than the fixed framing.
    Truncated,
    /// The authentication tag did not verify (wrong key or tampered data).
    BadTag,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "ciphertext truncated"),
            SealError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for SealError {}

const NONCE_LEN: usize = 12;
const TAG_LEN: usize = 32;
/// Sealed-box framing overhead: ephemeral pubkey + nonce + tag.
pub const SEAL_OVERHEAD: usize = 32 + NONCE_LEN + TAG_LEN;
/// Secret-box framing overhead: nonce + tag.
pub const SECRETBOX_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Derive (cipher key, mac key) from shared-secret material and context.
fn derive_keys(shared: &[u8; 32], context: &[u8]) -> ([u8; 32], [u8; 32]) {
    let mut h = Sha256::new();
    h.update(b"dra4wfms.enc.v1");
    h.update(shared);
    h.update(context);
    let enc = h.finalize();
    let mut h = Sha256::new();
    h.update(b"dra4wfms.mac.v1");
    h.update(shared);
    h.update(context);
    let mac = h.finalize();
    (enc, mac)
}

/// Encrypt `plaintext` to the holder of `recipient`'s secret key.
///
/// Layout: `ephemeral_pub(32) || nonce(12) || ciphertext || tag(32)`.
pub fn seal(recipient: &X25519PublicKey, plaintext: &[u8]) -> Vec<u8> {
    let eph = X25519Secret::generate();
    seal_with_ephemeral(&eph, recipient, plaintext)
}

/// Deterministic variant of [`seal`] taking the ephemeral secret explicitly
/// (exposed for tests and reproducible benchmarks).
pub fn seal_with_ephemeral(
    eph: &X25519Secret,
    recipient: &X25519PublicKey,
    plaintext: &[u8],
) -> Vec<u8> {
    let mut nonce = [0u8; NONCE_LEN];
    crate::random_bytes(&mut nonce);
    seal_with_parts(eph, nonce, recipient, plaintext)
}

/// Fully deterministic sealed box, synthetic-ephemeral (SIV-style): the
/// ephemeral secret and nonce are derived by hashing sender-held `seed`
/// material together with the recipient key, `context` and the plaintext.
/// Sealing the same message twice reproduces identical bytes, so a crashed
/// sender that re-executes converges to a byte-identical document — the
/// property crash recovery relies on for duplicate suppression by wire
/// digest.
///
/// `seed` must be secret to outsiders (e.g. a static Diffie-Hellman shared
/// secret with the recipient); otherwise the synthetic ephemeral key is
/// predictable. Note the determinism itself leaks plaintext *equality* to
/// anyone comparing two ciphertexts — acceptable here, where re-sent
/// documents are meant to be recognised as equal.
pub fn seal_deterministic(
    recipient: &X25519PublicKey,
    plaintext: &[u8],
    seed: &[u8; 32],
    context: &[u8],
) -> Vec<u8> {
    let transcript = |domain: &[u8]| {
        let mut h = Sha256::new();
        h.update(domain);
        h.update(seed);
        h.update(&recipient.0);
        h.update(&(context.len() as u64).to_be_bytes());
        h.update(context);
        h.update(plaintext);
        h.finalize()
    };
    let eph = X25519Secret::from_bytes(transcript(b"dra4wfms.det.eph.v1"));
    let nonce: [u8; NONCE_LEN] =
        transcript(b"dra4wfms.det.nonce.v1")[..NONCE_LEN].try_into().expect("12 <= 32");
    seal_with_parts(&eph, nonce, recipient, plaintext)
}

fn seal_with_parts(
    eph: &X25519Secret,
    nonce: [u8; NONCE_LEN],
    recipient: &X25519PublicKey,
    plaintext: &[u8],
) -> Vec<u8> {
    let eph_pub = eph.public_key();
    let shared = eph.diffie_hellman(recipient);
    let mut context = Vec::with_capacity(64);
    context.extend_from_slice(&eph_pub.0);
    context.extend_from_slice(&recipient.0);
    let (enc_key, mac_key) = derive_keys(&shared, &context);

    let mut out = Vec::with_capacity(SEAL_OVERHEAD + plaintext.len());
    out.extend_from_slice(&eph_pub.0);
    out.extend_from_slice(&nonce);
    let mut ct = plaintext.to_vec();
    ChaCha20::new(&enc_key, &nonce, 1).apply(&mut ct);
    out.extend_from_slice(&ct);

    let tag = hmac_sha256(&mac_key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Open a sealed box with the recipient's secret key.
pub fn open(recipient: &X25519Secret, boxed: &[u8]) -> Result<Vec<u8>, SealError> {
    if boxed.len() < SEAL_OVERHEAD {
        return Err(SealError::Truncated);
    }
    let (body, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    let eph_pub_bytes: [u8; 32] = body[..32].try_into().expect("framing");
    let eph_pub = X25519PublicKey(eph_pub_bytes);
    let nonce: [u8; NONCE_LEN] = body[32..32 + NONCE_LEN].try_into().expect("framing");

    let shared = recipient.diffie_hellman(&eph_pub);
    let mut context = Vec::with_capacity(64);
    context.extend_from_slice(&eph_pub.0);
    context.extend_from_slice(&recipient.public_key().0);
    let (enc_key, mac_key) = derive_keys(&shared, &context);

    if !ct_eq(&hmac_sha256(&mac_key, body), tag) {
        return Err(SealError::BadTag);
    }
    let mut pt = body[32 + NONCE_LEN..].to_vec();
    ChaCha20::new(&enc_key, &nonce, 1).apply(&mut pt);
    Ok(pt)
}

/// Symmetric authenticated encryption under a shared 32-byte key.
///
/// Layout: `nonce(12) || ciphertext || tag(32)`.
pub fn secretbox_seal(key: &[u8; 32], plaintext: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; NONCE_LEN];
    crate::random_bytes(&mut nonce);
    secretbox_seal_with_nonce(key, nonce, plaintext)
}

/// Deterministic variant of [`secretbox_seal`].
pub fn secretbox_seal_with_nonce(key: &[u8; 32], nonce: [u8; 12], plaintext: &[u8]) -> Vec<u8> {
    let (enc_key, mac_key) = derive_keys(key, b"secretbox");
    let mut out = Vec::with_capacity(SECRETBOX_OVERHEAD + plaintext.len());
    out.extend_from_slice(&nonce);
    let mut ct = plaintext.to_vec();
    ChaCha20::new(&enc_key, &nonce, 1).apply(&mut ct);
    out.extend_from_slice(&ct);
    let tag = hmac_sha256(&mac_key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Open a secret box.
pub fn secretbox_open(key: &[u8; 32], boxed: &[u8]) -> Result<Vec<u8>, SealError> {
    if boxed.len() < SECRETBOX_OVERHEAD {
        return Err(SealError::Truncated);
    }
    let (body, tag) = boxed.split_at(boxed.len() - TAG_LEN);
    let (enc_key, mac_key) = derive_keys(key, b"secretbox");
    if !ct_eq(&hmac_sha256(&mac_key, body), tag) {
        return Err(SealError::BadTag);
    }
    let nonce: [u8; NONCE_LEN] = body[..NONCE_LEN].try_into().expect("framing");
    let mut pt = body[NONCE_LEN..].to_vec();
    ChaCha20::new(&enc_key, &nonce, 1).apply(&mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recipient() -> X25519Secret {
        X25519Secret::from_bytes([11u8; 32])
    }

    #[test]
    fn seal_open_roundtrip() {
        let r = recipient();
        let boxed = seal(&r.public_key(), b"purchase order #4711");
        assert_eq!(open(&r, &boxed).unwrap(), b"purchase order #4711");
    }

    #[test]
    fn seal_empty_plaintext() {
        let r = recipient();
        let boxed = seal(&r.public_key(), b"");
        assert_eq!(boxed.len(), SEAL_OVERHEAD);
        assert_eq!(open(&r, &boxed).unwrap(), b"");
    }

    #[test]
    fn wrong_recipient_fails() {
        let r = recipient();
        let other = X25519Secret::from_bytes([12u8; 32]);
        let boxed = seal(&r.public_key(), b"secret");
        assert_eq!(open(&other, &boxed), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let r = recipient();
        let mut boxed = seal(&r.public_key(), b"secret data here");
        let idx = boxed.len() - TAG_LEN - 1;
        boxed[idx] ^= 1;
        assert_eq!(open(&r, &boxed), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_ephemeral_key_fails() {
        let r = recipient();
        let mut boxed = seal(&r.public_key(), b"secret data here");
        boxed[0] ^= 1;
        assert_eq!(open(&r, &boxed), Err(SealError::BadTag));
    }

    #[test]
    fn truncated_fails() {
        let r = recipient();
        assert_eq!(open(&r, &[0u8; 10]), Err(SealError::Truncated));
    }

    #[test]
    fn sealing_is_randomized() {
        let r = recipient();
        let a = seal(&r.public_key(), b"same message");
        let b = seal(&r.public_key(), b"same message");
        assert_ne!(a, b, "fresh ephemeral key + nonce each time");
    }

    #[test]
    fn secretbox_roundtrip() {
        let key = [42u8; 32];
        let boxed = secretbox_seal(&key, b"element content");
        assert_eq!(secretbox_open(&key, &boxed).unwrap(), b"element content");
    }

    #[test]
    fn secretbox_wrong_key_fails() {
        let boxed = secretbox_seal(&[1u8; 32], b"element content");
        assert_eq!(secretbox_open(&[2u8; 32], &boxed), Err(SealError::BadTag));
    }

    #[test]
    fn secretbox_tamper_fails() {
        let key = [3u8; 32];
        let mut boxed = secretbox_seal(&key, b"field value");
        boxed[NONCE_LEN] ^= 0x80;
        assert_eq!(secretbox_open(&key, &boxed), Err(SealError::BadTag));
    }

    #[test]
    fn secretbox_truncated_fails() {
        assert_eq!(secretbox_open(&[0u8; 32], &[0u8; 5]), Err(SealError::Truncated));
    }

    #[test]
    fn seal_deterministic_roundtrip_and_reproducible() {
        let r = recipient();
        let seed = [7u8; 32];
        let a = seal_deterministic(&r.public_key(), b"result payload", &seed, b"pid/A:0");
        let b = seal_deterministic(&r.public_key(), b"result payload", &seed, b"pid/A:0");
        assert_eq!(a, b, "same inputs reproduce identical bytes");
        assert_eq!(open(&r, &a).unwrap(), b"result payload");
        // any input change produces an unrelated box
        let c = seal_deterministic(&r.public_key(), b"result payload", &seed, b"pid/A:1");
        assert_ne!(a, c);
        let d = seal_deterministic(&r.public_key(), b"other payload", &seed, b"pid/A:0");
        assert_ne!(a, d);
        assert_eq!(open(&r, &d).unwrap(), b"other payload");
        let e = seal_deterministic(&r.public_key(), b"result payload", &[8u8; 32], b"pid/A:0");
        assert_ne!(a, e);
    }

    #[test]
    fn deterministic_variants_are_deterministic() {
        let key = [9u8; 32];
        let a = secretbox_seal_with_nonce(&key, [1; 12], b"x");
        let b = secretbox_seal_with_nonce(&key, [1; 12], b"x");
        assert_eq!(a, b);

        let eph = X25519Secret::from_bytes([5u8; 32]);
        let r = recipient();
        // nonce is still random inside seal_with_ephemeral, so only the
        // ephemeral pubkey prefix is deterministic.
        let s1 = seal_with_ephemeral(&eph, &r.public_key(), b"y");
        let s2 = seal_with_ephemeral(&eph, &r.public_key(), b"y");
        assert_eq!(&s1[..32], &s2[..32]);
    }
}
