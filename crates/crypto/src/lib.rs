//! # dra-crypto — cryptographic substrate for DRA4WfMS
//!
//! From-scratch implementations of every primitive the DRA4WfMS security
//! framework needs:
//!
//! * [`sha2`] — SHA-256 and SHA-512 (FIPS 180-4)
//! * [`hmac`] — HMAC (RFC 2104) over SHA-256
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439)
//! * [`ed25519`] — Ed25519 digital signatures (RFC 8032)
//! * [`x25519`] — X25519 Diffie–Hellman (RFC 7748)
//! * [`sealed`] — hybrid public-key encryption ("sealed boxes") and
//!   symmetric authenticated encryption ("secret boxes") built from
//!   X25519 + ChaCha20 + HMAC-SHA256 (encrypt-then-MAC)
//!
//! The paper's framework signs workflow documents with participants'
//! private keys (nonrepudiation cascade) and element-wise encrypts form
//! fields to the public keys of the participants allowed to read them.
//! The original implementation used the Java XML DSig API and Apache
//! Santuario (RSA/X.509); this crate supplies equivalent primitives with
//! modern curves so the framework layer above can be exercised end to end.
//!
//! ## Security caveats
//!
//! The implementations are validated against the RFC test vectors and are
//! algorithmically correct, but field arithmetic is not guaranteed to be
//! constant-time on every code path. For a research reproduction that is
//! acceptable; for production deployments swap in audited primitives behind
//! the same traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
pub mod chacha20;
pub mod ct;
pub mod ed25519;
pub mod field;
pub mod hex;
pub mod hmac;
pub mod sealed;
pub mod sha2;
pub mod x25519;

pub use chacha20::ChaCha20;
pub use ed25519::{verify_batch, BatchEntry, Keypair, PublicKey, SecretKey, Signature};
pub use sealed::{open, seal, secretbox_open, secretbox_seal, SealError};
pub use sha2::{sha256, sha512, Sha256, Sha512};
pub use x25519::{x25519, X25519PublicKey, X25519Secret};

/// Fill `buf` with cryptographically secure random bytes from the thread RNG.
pub fn random_bytes(buf: &mut [u8]) {
    use rand::RngCore;
    rand::thread_rng().fill_bytes(buf);
}

/// Generate a fresh random 32-byte array (key / nonce seed material).
pub fn random_array32() -> [u8; 32] {
    let mut b = [0u8; 32];
    random_bytes(&mut b);
    b
}
