//! Ed25519 signatures (RFC 8032).
//!
//! Every participant, workflow designer, TFC server and portal server in
//! DRA4WfMS owns an Ed25519 keypair. The cascade-based nonrepudiation scheme
//! of the paper embeds one signature per executed activity; each signature
//! covers the activity's encrypted execution result plus the signatures of
//! all predecessor activities.
//!
//! Point arithmetic uses extended twisted-Edwards coordinates with the
//! complete a = −1 formulas; scalar arithmetic mod the group order L uses a
//! byte-oriented schoolbook reduction (in the style of TweetNaCl's `modL`).

use crate::field::Fe;
use crate::sha2::Sha512;

/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;

/// Group order L = 2^252 + 27742317777372353535851937790883648493, as 32
/// little-endian bytes.
const L: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// A point on the Ed25519 curve in extended coordinates (X:Y:Z:T), with
/// x = X/Z, y = Y/Z, xy = T/Z.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// The curve constant d = −121665/121666.
fn d() -> Fe {
    use std::sync::OnceLock;
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| Fe::from_u64(121665).neg().mul(&Fe::from_u64(121666).invert()))
}

/// 2·d, used by the addition formulas.
fn d2() -> Fe {
    use std::sync::OnceLock;
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| d().add(&d()))
}

impl Point {
    /// The identity element (0, 1).
    pub fn identity() -> Point {
        Point { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// The standard basepoint B (y = 4/5, x positive), decoded from its
    /// well-known compressed form `0x58 0x66…66`.
    pub fn basepoint() -> Point {
        use std::sync::OnceLock;
        static CELL: OnceLock<Point> = OnceLock::new();
        *CELL.get_or_init(|| {
            let mut enc = [0x66u8; 32];
            enc[0] = 0x58;
            Point::decompress(&enc).expect("basepoint encoding is valid")
        })
    }

    /// Point addition (complete formulas for a = −1 twisted Edwards;
    /// "add-2008-hwcd-3").
    pub fn add(&self, other: &Point) -> Point {
        count_ec_op();
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&d2()).mul(&other.t);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        Point { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Point doubling ("dbl-2008-hwcd" with a = −1).
    pub fn double(&self) -> Point {
        count_ec_op();
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square();
        let c = c.add(&c);
        let dd = a.neg(); // a = −1
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = dd.add(&b);
        let f = g.sub(&c);
        let h = dd.sub(&b);
        Point { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Negate the point: (x, y) → (−x, y).
    pub fn neg(&self) -> Point {
        Point { x: self.x.neg(), y: self.y, z: self.z, t: self.t.neg() }
    }

    /// Addition against a precomputed [`CachedPoint`]: the same complete
    /// formulas as [`Point::add`] with the addend's `y±x` and `t·2d`
    /// factored out, saving two multiplications per addition — the form
    /// the multi-scalar bucket accumulation uses, where each input point
    /// is added many times.
    fn add_cached(&self, other: &CachedPoint) -> Point {
        count_ec_op();
        let a = self.y.sub(&self.x).mul(&other.y_minus_x);
        let b = self.y.add(&self.x).mul(&other.y_plus_x);
        let c = self.t.mul(&other.t2d);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        Point { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Scalar multiplication, MSB-first double-and-add over a 32-byte
    /// little-endian scalar.
    pub fn scalar_mul(&self, scalar: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for byte in scalar.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Compress to the 32-byte encoding: y with the sign of x in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zi = self.z.invert();
        let x = self.x.mul(&zi);
        let y = self.y.mul(&zi);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; `None` if it is not a curve point.
    pub fn decompress(enc: &[u8; 32]) -> Option<Point> {
        let sign = enc[31] >> 7;
        let y = Fe::from_bytes(enc); // masks the sign bit
                                     // x^2 = (y^2 - 1) / (d*y^2 + 1)
        let y2 = y.square();
        let u = y2.sub(&Fe::ONE);
        let v = d().mul(&y2).add(&Fe::ONE);
        // candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let vx2 = v.mul(&x.square());
        if vx2 != u {
            if vx2 == u.neg() {
                x = x.mul(&Fe::sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign == 1 {
            return None; // -0 is not a valid encoding
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Some(Point { x, y, z: Fe::ONE, t: x.mul(&y) })
    }

    /// [`Point::decompress`] through a thread-local memo. Decompression is
    /// a pure function whose cost is one field exponentiation, and
    /// verification workloads decode the same encodings over and over —
    /// every hop of a cascade re-checks the whole prefix, so each key and
    /// each signature's R point recurs on every later hop. Invalid
    /// encodings are memoized as `None` too. The memo is bounded: it is
    /// cleared wholesale when full (verification working sets are far
    /// smaller than the cap, so eviction order does not matter).
    pub fn decompress_cached(enc: &[u8; 32]) -> Option<Point> {
        const CAP: usize = 4096;
        DECOMPRESS_MEMO.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(hit) = m.get(enc) {
                return *hit;
            }
            let p = Point::decompress(enc);
            if m.len() >= CAP {
                m.clear();
            }
            m.insert(*enc, p);
            p
        })
    }

    /// Affine equality check.
    pub fn eq_affine(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  <=>  x1*z2 == x2*z1, same for y.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }

    /// True if this is the identity element (0, 1) — x = 0 and y = z in
    /// projective coordinates. No inversion needed.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y.sub(&self.z).is_zero()
    }
}

/// A point pre-arranged for repeated addition ("Niels coordinates"):
/// `(y+x, y−x, z, t·2d)`. Building one costs a single multiplication;
/// every subsequent [`Point::add_cached`] then runs two multiplications
/// cheaper than a generic add.
#[derive(Clone, Copy, Debug)]
struct CachedPoint {
    y_plus_x: Fe,
    y_minus_x: Fe,
    z: Fe,
    t2d: Fe,
}

impl CachedPoint {
    fn from_point(p: &Point) -> CachedPoint {
        CachedPoint {
            y_plus_x: p.y.add(&p.x),
            y_minus_x: p.y.sub(&p.x),
            z: p.z,
            t2d: p.t.mul(&d2()),
        }
    }

    /// Negation swaps `y+x`/`y−x` and flips `t·2d`.
    fn neg(&self) -> CachedPoint {
        CachedPoint {
            y_plus_x: self.y_minus_x,
            y_minus_x: self.y_plus_x,
            z: self.z,
            t2d: self.t2d.neg(),
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-scalar multiplication (the batch-verification workhorse)
// ---------------------------------------------------------------------------

thread_local! {
    /// Point operations (adds + doubles) performed by this thread — a
    /// deterministic, machine-independent cost measure for benches.
    static EC_OPS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };

    /// Memoized decompressions for [`Point::decompress_cached`].
    static DECOMPRESS_MEMO: std::cell::RefCell<std::collections::HashMap<[u8; 32], Option<Point>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

#[inline]
fn count_ec_op() {
    EC_OPS.with(|c| c.set(c.get() + 1));
}

/// Curve point operations (adds + doubles) performed by the current thread
/// so far. The counter is thread-local: single-threaded measurements are
/// byte-deterministic for a fixed workload, which is what the scaling bench
/// writes into `BENCH_scaling.json` instead of wall-clock noise.
pub fn ec_ops() -> u64 {
    EC_OPS.with(std::cell::Cell::get)
}

/// Reset the current thread's point-operation counter to zero.
pub fn ec_ops_reset() {
    EC_OPS.with(|c| c.set(0));
}

/// Extract `width` bits of a little-endian scalar starting at bit `pos`.
fn scalar_bits(s: &[u8; 32], pos: usize, width: usize) -> u32 {
    let mut v: u32 = 0;
    for i in 0..width {
        let bit = pos + i;
        if bit < 256 {
            v |= u32::from((s[bit / 8] >> (bit % 8)) & 1) << i;
        }
    }
    v
}

/// Recode a scalar into base-2^c signed digits in `[−2^(c−1), 2^(c−1))`,
/// least-significant first. One extra window absorbs the final carry, so
/// any 256-bit scalar recodes exactly.
fn recode_signed(s: &[u8; 32], c: usize) -> Vec<i32> {
    let windows = 256usize.div_ceil(c) + 1;
    let half = 1i32 << (c - 1);
    let full = 1i32 << c;
    let mut digits = vec![0i32; windows];
    let mut carry = 0i32;
    for (w, d) in digits.iter_mut().enumerate() {
        let mut v = carry + scalar_bits(s, w * c, c) as i32;
        if v >= half {
            v -= full;
            carry = 1;
        } else {
            carry = 0;
        }
        *d = v;
    }
    debug_assert_eq!(carry, 0, "a 256-bit scalar fits in the extra window");
    digits
}

/// Σ scalars[i]·points[i] via a signed-digit Pippenger bucket method: all
/// points share one run of doublings per window, so the per-point cost is a
/// handful of additions instead of a full double-and-add ladder. This is
/// what makes batch signature verification cheaper than checking each
/// signature alone.
pub fn multiscalar_mul(scalars: &[[u8; 32]], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "multiscalar_mul: length mismatch");
    let n = points.len();
    if n == 0 {
        return Point::identity();
    }
    // Window size tuned for the bucket-aggregation trade-off: larger
    // windows amortize better once there are enough points to fill them.
    let c: usize = match n {
        1..=7 => 4,
        8..=99 => 5,
        _ => 6,
    };
    let digits: Vec<Vec<i32>> = scalars.iter().map(|s| recode_signed(s, c)).collect();
    let windows = digits[0].len();
    let negs: Vec<Point> = points.iter().map(Point::neg).collect();
    // Niels form of every input (and its negation): one multiplication
    // each up front, two saved on every bucket accumulation below.
    let cached: Vec<CachedPoint> = points.iter().map(CachedPoint::from_point).collect();
    let cached_negs: Vec<CachedPoint> = cached.iter().map(CachedPoint::neg).collect();
    let half = 1usize << (c - 1);

    let mut acc: Option<Point> = None;
    let mut buckets: Vec<Option<Point>> = vec![None; half];
    for w in (0..windows).rev() {
        if let Some(a) = &acc {
            let mut d = *a;
            for _ in 0..c {
                d = d.double();
            }
            acc = Some(d);
        }
        buckets.fill(None);
        for i in 0..n {
            let d = digits[i][w];
            let (idx, first, rest) = match d.cmp(&0) {
                std::cmp::Ordering::Greater => ((d - 1) as usize, &points[i], &cached[i]),
                std::cmp::Ordering::Less => ((-d - 1) as usize, &negs[i], &cached_negs[i]),
                std::cmp::Ordering::Equal => continue,
            };
            buckets[idx] = Some(match &buckets[idx] {
                Some(b) => b.add_cached(rest),
                None => *first,
            });
        }
        // Σ (j+1)·buckets[j] via running partial sums, highest bucket first.
        let mut running: Option<Point> = None;
        let mut total: Option<Point> = None;
        for b in buckets.iter().rev() {
            if let Some(p) = b {
                running = Some(match &running {
                    Some(r) => r.add(p),
                    None => *p,
                });
            }
            if let Some(r) = &running {
                total = Some(match &total {
                    Some(t) => t.add(r),
                    None => *r,
                });
            }
        }
        if let Some(t) = total {
            acc = Some(match &acc {
                Some(a) => a.add(&t),
                None => t,
            });
        }
    }
    acc.unwrap_or_else(Point::identity)
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L (byte-oriented, TweetNaCl style)
// ---------------------------------------------------------------------------

/// Reduce a 64-coefficient little-endian byte expansion modulo L into 32
/// bytes. Coefficients are signed i64 to absorb intermediate products.
fn mod_l(x: &mut [i64; 64]) -> [u8; 32] {
    let l: [i64; 32] = core::array::from_fn(|i| L[i] as i64);
    let mut carry: i64;
    for i in (32..64).rev() {
        carry = 0;
        let mut j = i - 32;
        while j < i - 12 {
            x[j] += carry - 16 * x[i] * l[j - (i - 32)];
            carry = (x[j] + 128) >> 8;
            x[j] -= carry << 8;
            j += 1;
        }
        x[j] += carry;
        x[i] = 0;
    }
    carry = 0;
    for j in 0..32 {
        x[j] += carry - (x[31] >> 4) * l[j];
        carry = x[j] >> 8;
        x[j] &= 255;
    }
    for j in 0..32 {
        x[j] -= carry * l[j];
    }
    let mut r = [0u8; 32];
    for i in 0..32 {
        if i + 1 < 64 {
            x[i + 1] += x[i] >> 8;
        }
        r[i] = (x[i] & 255) as u8;
    }
    r
}

/// Reduce a 64-byte value (e.g. a SHA-512 digest) modulo L.
pub fn scalar_reduce(wide: &[u8; 64]) -> [u8; 32] {
    let mut x: [i64; 64] = core::array::from_fn(|i| wide[i] as i64);
    mod_l(&mut x)
}

/// Compute (a·b + c) mod L over 32-byte little-endian scalars.
pub fn scalar_muladd(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for i in 0..32 {
        x[i] = c[i] as i64;
    }
    for i in 0..32 {
        for j in 0..32 {
            x[i + j] += a[i] as i64 * b[j] as i64;
        }
    }
    mod_l(&mut x)
}

/// True if the 32-byte little-endian scalar is strictly less than L
/// (rejects malleable signatures).
fn scalar_is_canonical(s: &[u8; 32]) -> bool {
    for i in (0..32).rev() {
        if s[i] < L[i] {
            return true;
        }
        if s[i] > L[i] {
            return false;
        }
    }
    false // s == L
}

// ---------------------------------------------------------------------------
// Keys and signatures
// ---------------------------------------------------------------------------

/// An Ed25519 secret key (the 32-byte seed of RFC 8032).
#[derive(Clone)]
pub struct SecretKey {
    seed: [u8; 32],
}

/// An Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

/// A detached Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub [u8; 64]);

/// A secret/public keypair.
#[derive(Clone)]
pub struct Keypair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(..)")
    }
}

fn clamp(mut a: [u8; 32]) -> [u8; 32] {
    a[0] &= 248;
    a[31] &= 127;
    a[31] |= 64;
    a
}

impl SecretKey {
    /// Construct from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> SecretKey {
        SecretKey { seed }
    }

    /// Generate a fresh random secret key.
    pub fn generate() -> SecretKey {
        SecretKey { seed: crate::random_array32() }
    }

    /// Expose the seed (for serialization into key stores).
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Expand the seed into (clamped scalar a, prefix).
    fn expand(&self) -> ([u8; 32], [u8; 32]) {
        let h = crate::sha2::sha512(&self.seed);
        let mut a = [0u8; 32];
        a.copy_from_slice(&h[..32]);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        (clamp(a), prefix)
    }

    /// Derive the matching public key.
    pub fn public_key(&self) -> PublicKey {
        let (a, _) = self.expand();
        PublicKey(Point::basepoint().scalar_mul(&a).compress())
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let (a, prefix) = self.expand();
        let public = self.public_key();

        let mut h = Sha512::new();
        h.update(&prefix);
        h.update(message);
        let r = scalar_reduce(&h.finalize());

        let r_point = Point::basepoint().scalar_mul(&r).compress();

        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&public.0);
        h.update(message);
        let k = scalar_reduce(&h.finalize());

        let s = scalar_muladd(&k, &a, &r);

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s);
        Signature(sig)
    }
}

impl Keypair {
    /// Generate a fresh random keypair.
    pub fn generate() -> Keypair {
        let secret = SecretKey::generate();
        let public = secret.public_key();
        Keypair { secret, public }
    }

    /// Deterministic keypair from a seed (tests, reproducible workloads).
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public_key();
        Keypair { secret, public }
    }

    /// Sign a message with the secret half.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.secret.sign(message)
    }
}

impl PublicKey {
    /// Verify `signature` over `message`. Rejects non-canonical scalars and
    /// invalid point encodings.
    #[must_use]
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let r_enc: [u8; 32] = signature.0[..32].try_into().expect("split");
        let s: [u8; 32] = signature.0[32..].try_into().expect("split");
        if !scalar_is_canonical(&s) {
            return false;
        }
        let a = match Point::decompress_cached(&self.0) {
            Some(p) => p,
            None => return false,
        };
        let r = match Point::decompress_cached(&r_enc) {
            Some(p) => p,
            None => return false,
        };
        let mut h = Sha512::new();
        h.update(&r_enc);
        h.update(&self.0);
        h.update(message);
        let k = scalar_reduce(&h.finalize());

        // Check [S]B == R + [k]A.
        let lhs = Point::basepoint().scalar_mul(&s);
        let rhs = r.add(&a.scalar_mul(&k));
        lhs.eq_affine(&rhs)
    }

    /// Hex fingerprint (first 8 bytes) for logs and document attributes.
    pub fn fingerprint(&self) -> String {
        crate::hex::encode(&self.0[..8])
    }
}

// ---------------------------------------------------------------------------
// Batch verification
// ---------------------------------------------------------------------------

/// One batch-verification input: message, signature, and the public key the
/// signature must verify under.
pub type BatchEntry<'a> = (&'a [u8], Signature, PublicKey);

/// Verify a batch of independent Ed25519 signatures with one shared
/// multi-scalar multiplication.
///
/// Instead of checking `[Sᵢ]B == Rᵢ + [kᵢ]Aᵢ` once per signature, the batch
/// draws a deterministic 128-bit coefficient `zᵢ` per entry and checks the
/// aggregate
///
/// ```text
/// [Σ zᵢ·sᵢ]B − Σ [zᵢ]Rᵢ − Σ [zᵢ·kᵢ]Aᵢ == identity
/// ```
///
/// in a single [`multiscalar_mul`] over `2n+1` points, whose shared
/// doublings make the per-signature cost a few point additions. The
/// coefficients are derived by hashing the whole batch transcript (every
/// `Rᵢ`, `Aᵢ`, `sᵢ` and the message-binding scalar `kᵢ`), so an adversary
/// cannot pick signatures whose defects cancel without breaking SHA-512 —
/// the standard deterministic replacement for a random-coefficient batch.
///
/// Verdicts agree with [`PublicKey::verify`]: if every signature is
/// individually valid the aggregate holds identically, and a `false` here
/// means at least one entry is invalid — re-check entries individually to
/// identify the culprit (that is what `dra4wfms-core`'s verifier does on
/// fallback). An empty batch is vacuously valid; a singleton delegates to
/// the per-signature check.
#[must_use]
pub fn verify_batch(entries: &[BatchEntry<'_>]) -> bool {
    let n = entries.len();
    if n == 0 {
        return true;
    }
    if n == 1 {
        let (msg, sig, pk) = &entries[0];
        return pk.verify(msg, sig);
    }

    // Decode every entry, rejecting exactly what the single verifier
    // rejects (non-canonical s, invalid point encodings).
    let mut s_scalars = Vec::with_capacity(n);
    let mut r_points = Vec::with_capacity(n);
    let mut a_points = Vec::with_capacity(n);
    let mut ks = Vec::with_capacity(n);
    for (msg, sig, pk) in entries {
        let r_enc: [u8; 32] = sig.0[..32].try_into().expect("split");
        let s: [u8; 32] = sig.0[32..].try_into().expect("split");
        if !scalar_is_canonical(&s) {
            return false;
        }
        let Some(a) = Point::decompress_cached(&pk.0) else {
            return false;
        };
        let Some(r) = Point::decompress_cached(&r_enc) else {
            return false;
        };
        let mut h = Sha512::new();
        h.update(&r_enc);
        h.update(&pk.0);
        h.update(msg);
        ks.push(scalar_reduce(&h.finalize()));
        s_scalars.push(s);
        r_points.push(r);
        a_points.push(a);
    }

    // Batch transcript seed: binds n and every signature + key; the
    // per-entry kᵢ (hashed in below) binds the messages.
    let mut seed_h = Sha512::new();
    seed_h.update(b"dra4wfms.ed25519.batchv1");
    seed_h.update(&(n as u64).to_le_bytes());
    for (_, sig, pk) in entries {
        seed_h.update(&sig.0);
        seed_h.update(&pk.0);
    }
    let seed = seed_h.finalize();

    // zᵢ: 128-bit nonzero coefficients — half-width scalars keep the Rᵢ
    // columns out of the upper windows of the multi-scalar multiplication.
    let mut zs: Vec<[u8; 32]> = Vec::with_capacity(n);
    for (i, k) in ks.iter().enumerate() {
        let mut h = Sha512::new();
        h.update(&seed);
        h.update(&(i as u64).to_le_bytes());
        h.update(k);
        let wide = h.finalize();
        let mut z = [0u8; 32];
        z[..16].copy_from_slice(&wide[..16]);
        z[0] |= 1; // never zero — a zero coefficient would drop the entry
        zs.push(z);
    }

    // Scalars: Σ zᵢ·sᵢ on B, zᵢ on −Rᵢ, zᵢ·kᵢ on −Aᵢ.
    let zero = [0u8; 32];
    let mut s_coeff = zero;
    for i in 0..n {
        s_coeff = scalar_muladd(&zs[i], &s_scalars[i], &s_coeff);
    }
    let mut scalars = Vec::with_capacity(2 * n + 1);
    let mut points = Vec::with_capacity(2 * n + 1);
    scalars.push(s_coeff);
    points.push(Point::basepoint());
    for i in 0..n {
        scalars.push(zs[i]);
        points.push(r_points[i].neg());
        scalars.push(scalar_muladd(&zs[i], &ks[i], &zero));
        points.push(a_points[i].neg());
    }
    multiscalar_mul(&scalars, &points).is_identity()
}

impl Signature {
    /// Parse from raw bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Signature> {
        if b.len() != 64 {
            return None;
        }
        let mut s = [0u8; 64];
        s.copy_from_slice(b);
        Some(Signature(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed = hex::decode_array::<32>(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = kp.sign(b"");
        assert_eq!(
            hex::encode(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(b"", &sig));
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test2() {
        let seed = hex::decode_array::<32>(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = kp.sign(&[0x72]);
        assert_eq!(
            hex::encode(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(&[0x72], &sig));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let msg = b"workflow execution result of activity A3";
        let sig = kp.sign(msg);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = Keypair::from_seed([1u8; 32]);
        let sig = kp.sign(b"original");
        assert!(!kp.public.verify(b"0riginal", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([2u8; 32]);
        let mut sig = kp.sign(b"message");
        sig.0[10] ^= 0x40;
        assert!(!kp.public.verify(b"message", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed([3u8; 32]);
        let kp2 = Keypair::from_seed([4u8; 32]);
        let sig = kp1.sign(b"message");
        assert!(!kp2.public.verify(b"message", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        let kp = Keypair::from_seed([5u8; 32]);
        let sig = kp.sign(b"m");
        // Forge S' = S + L (same value mod L, non-canonical encoding).
        let mut s: [u8; 32] = sig.0[32..].try_into().unwrap();
        let mut carry = 0u16;
        for i in 0..32 {
            let v = s[i] as u16 + L[i] as u16 + carry;
            s[i] = v as u8;
            carry = v >> 8;
        }
        let mut forged = sig.0;
        forged[32..].copy_from_slice(&s);
        assert!(!kp.public.verify(b"m", &Signature(forged)));
    }

    #[test]
    fn identity_and_basepoint_ops() {
        let b = Point::basepoint();
        let id = Point::identity();
        assert!(b.add(&id).eq_affine(&b));
        assert!(b.add(&b).eq_affine(&b.double()));
        // B + (−B) = identity
        assert!(b.add(&b.neg()).eq_affine(&id));
    }

    #[test]
    fn basepoint_has_order_l() {
        // [L]B should be the identity.
        let lb = Point::basepoint().scalar_mul(&L);
        assert!(lb.eq_affine(&Point::identity()));
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let p = Point::decompress(&kp.public.0).unwrap();
        assert_eq!(p.compress(), kp.public.0);
    }

    #[test]
    fn decompress_rejects_garbage() {
        // y = 2 is not on the curve for either sign.
        let mut enc = [0u8; 32];
        enc[0] = 2;
        assert!(Point::decompress(&enc).is_none());
    }

    #[test]
    fn scalar_reduce_of_small_value_is_identity() {
        let mut wide = [0u8; 64];
        wide[0] = 77;
        let r = scalar_reduce(&wide);
        assert_eq!(r[0], 77);
        assert!(r[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn scalar_reduce_of_l_is_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&L);
        assert_eq!(scalar_reduce(&wide), [0u8; 32]);
    }

    #[test]
    fn scalar_muladd_matches_group_law() {
        // (2*3 + 4) mod L = 10
        let two = {
            let mut s = [0u8; 32];
            s[0] = 2;
            s
        };
        let three = {
            let mut s = [0u8; 32];
            s[0] = 3;
            s
        };
        let four = {
            let mut s = [0u8; 32];
            s[0] = 4;
            s
        };
        let r = scalar_muladd(&two, &three, &four);
        assert_eq!(r[0], 10);
        assert!(r[1..].iter().all(|&b| b == 0));
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test3() {
        let seed = hex::decode_array::<32>(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xaf, 0x82];
        let sig = kp.sign(&msg);
        assert_eq!(
            hex::encode(&sig.0),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(&msg, &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = Keypair::from_seed([77u8; 32]);
        assert_eq!(kp.sign(b"same message"), kp.sign(b"same message"));
    }

    #[test]
    fn verify_rejects_swapped_r_s() {
        let kp = Keypair::from_seed([8u8; 32]);
        let sig = kp.sign(b"m");
        let mut swapped = [0u8; 64];
        swapped[..32].copy_from_slice(&sig.0[32..]);
        swapped[32..].copy_from_slice(&sig.0[..32]);
        assert!(!kp.public.verify(b"m", &Signature(swapped)));
    }

    #[test]
    fn large_message_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let msg = vec![0x5au8; 100_000];
        let sig = kp.sign(&msg);
        assert!(kp.public.verify(&msg, &sig));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = Keypair::from_seed([6u8; 32]);
        let b = Keypair::from_seed([7u8; 32]);
        assert_ne!(a.public, b.public);
    }

    // --- multi-scalar multiplication ---

    fn scalar(v: u64) -> [u8; 32] {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&v.to_le_bytes());
        s
    }

    #[test]
    fn msm_empty_is_identity() {
        assert!(multiscalar_mul(&[], &[]).is_identity());
    }

    #[test]
    fn msm_matches_naive_small() {
        let b = Point::basepoint();
        let p2 = b.double();
        let p3 = p2.add(&b);
        // 5·B + 7·2B + 11·3B = 52·B
        let got = multiscalar_mul(&[scalar(5), scalar(7), scalar(11)], &[b, p2, p3]);
        assert!(got.eq_affine(&b.scalar_mul(&scalar(52))));
    }

    #[test]
    fn msm_matches_naive_wide_scalars() {
        // Full-width pseudo-random scalars across the small/large window cut.
        for n in [1usize, 2, 7, 8, 20] {
            let mut scalars = Vec::new();
            let mut points = Vec::new();
            let mut expect: Option<Point> = None;
            for i in 0..n {
                let s = scalar_reduce(&crate::sha2::sha512(&[i as u8, n as u8, 0x5a]));
                let p = Point::basepoint()
                    .scalar_mul(&scalar_reduce(&crate::sha2::sha512(&[i as u8, n as u8, 0xa5])));
                let term = p.scalar_mul(&s);
                expect = Some(match &expect {
                    Some(e) => e.add(&term),
                    None => term,
                });
                scalars.push(s);
                points.push(p);
            }
            let got = multiscalar_mul(&scalars, &points);
            assert!(got.eq_affine(&expect.unwrap()), "n={n}");
        }
    }

    #[test]
    fn msm_cancellation_hits_identity() {
        let b = Point::basepoint();
        // 3·B + 3·(−B) = identity
        let got = multiscalar_mul(&[scalar(3), scalar(3)], &[b, b.neg()]);
        assert!(got.is_identity());
    }

    #[test]
    fn recode_signed_roundtrip() {
        for c in [4usize, 5, 6] {
            for seed in 0u8..8 {
                let s = scalar_reduce(&crate::sha2::sha512(&[seed, c as u8]));
                let digits = recode_signed(&s, c);
                // Reconstruct the scalar as Σ dᵢ·2^(c·i) over i128 chunks and
                // compare against the little-endian value (fits: < 2^253).
                let mut acc = [0i64; 64];
                for (i, &d) in digits.iter().enumerate() {
                    let bit = i * c;
                    // add d · 2^bit in byte-granular pieces
                    let byte = bit / 8;
                    let shift = bit % 8;
                    let v = i64::from(d) << shift;
                    acc[byte] += v & 0xff;
                    acc[byte + 1] += (v >> 8) & 0xff;
                    acc[byte + 2] += v >> 16;
                }
                // normalize carries (signed)
                let mut carry = 0i64;
                let mut bytes = [0u8; 32];
                for i in 0..64 {
                    let v = acc[i] + carry;
                    let b = v & 0xff;
                    carry = (v - b) >> 8;
                    if i < 32 {
                        bytes[i] = b as u8;
                    } else {
                        assert_eq!(b, 0, "no overflow past 256 bits");
                    }
                }
                assert_eq!(carry, 0);
                assert_eq!(bytes, s, "c={c} seed={seed}");
            }
        }
    }

    // --- batch verification ---

    fn batch_of(n: usize) -> (Vec<Vec<u8>>, Vec<Signature>, Vec<PublicKey>) {
        let mut msgs = Vec::new();
        let mut sigs = Vec::new();
        let mut keys = Vec::new();
        for i in 0..n {
            let kp = Keypair::from_seed([i as u8 + 1; 32]);
            let msg = format!("activity A{i} execution result").into_bytes();
            sigs.push(kp.sign(&msg));
            keys.push(kp.public);
            msgs.push(msg);
        }
        (msgs, sigs, keys)
    }

    fn entries<'a>(
        msgs: &'a [Vec<u8>],
        sigs: &[Signature],
        keys: &[PublicKey],
    ) -> Vec<BatchEntry<'a>> {
        msgs.iter().zip(sigs).zip(keys).map(|((m, s), k)| (m.as_slice(), *s, *k)).collect()
    }

    #[test]
    fn batch_empty_and_singleton() {
        assert!(verify_batch(&[]));
        let (msgs, sigs, keys) = batch_of(1);
        assert!(verify_batch(&entries(&msgs, &sigs, &keys)));
    }

    #[test]
    fn batch_valid_batches_pass() {
        for n in [2usize, 3, 9, 33] {
            let (msgs, sigs, keys) = batch_of(n);
            assert!(verify_batch(&entries(&msgs, &sigs, &keys)), "n={n}");
        }
    }

    #[test]
    fn batch_detects_single_tamper() {
        for tampered in [0usize, 3, 7] {
            let (mut msgs, sigs, keys) = batch_of(8);
            msgs[tampered][0] ^= 1;
            assert!(!verify_batch(&entries(&msgs, &sigs, &keys)), "tampered={tampered}");
        }
    }

    #[test]
    fn batch_detects_tampered_signature_and_wrong_key() {
        let (msgs, mut sigs, mut keys) = batch_of(5);
        sigs[2].0[40] ^= 0x10;
        assert!(!verify_batch(&entries(&msgs, &sigs, &keys)));

        let (msgs, sigs2, _) = batch_of(5);
        keys[4] = Keypair::from_seed([99u8; 32]).public;
        assert!(!verify_batch(&entries(&msgs, &sigs2, &keys)));
    }

    #[test]
    fn batch_rejects_non_canonical_s() {
        let (msgs, mut sigs, keys) = batch_of(3);
        let mut s: [u8; 32] = sigs[1].0[32..].try_into().unwrap();
        let mut carry = 0u16;
        for i in 0..32 {
            let v = s[i] as u16 + L[i] as u16 + carry;
            s[i] = v as u8;
            carry = v >> 8;
        }
        sigs[1].0[32..].copy_from_slice(&s);
        assert!(!verify_batch(&entries(&msgs, &sigs, &keys)));
    }

    #[test]
    fn batch_rejects_bad_point_encoding() {
        let (msgs, sigs, mut keys) = batch_of(3);
        let mut enc = [0u8; 32];
        enc[0] = 2; // not on the curve
        keys[0] = PublicKey(enc);
        assert!(!verify_batch(&entries(&msgs, &sigs, &keys)));
    }

    #[test]
    fn batch_with_rfc8032_vectors() {
        // The three RFC test keys/messages batched together must pass.
        let cases: [(&str, &[u8]); 3] = [
            ("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60", b""),
            ("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb", &[0x72]),
            ("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7", &[0xaf, 0x82]),
        ];
        let mut msgs = Vec::new();
        let mut sigs = Vec::new();
        let mut keys = Vec::new();
        for (seed_hex, msg) in cases {
            let kp = Keypair::from_seed(hex::decode_array::<32>(seed_hex).unwrap());
            sigs.push(kp.sign(msg));
            keys.push(kp.public);
            msgs.push(msg.to_vec());
        }
        assert!(verify_batch(&entries(&msgs, &sigs, &keys)));
    }

    #[test]
    fn batch_shares_work() {
        // The whole point: batch verification must cost far fewer curve
        // operations than per-signature verification.
        let (msgs, sigs, keys) = batch_of(32);
        let es = entries(&msgs, &sigs, &keys);
        ec_ops_reset();
        for (m, s, k) in &es {
            assert!(k.verify(m, s));
        }
        let sequential = ec_ops();
        ec_ops_reset();
        assert!(verify_batch(&es));
        let batched = ec_ops();
        assert!(
            batched * 3 < sequential,
            "batch must be ≥3× cheaper in point ops: {batched} vs {sequential}"
        );
    }
}
