//! Ed25519 signatures (RFC 8032).
//!
//! Every participant, workflow designer, TFC server and portal server in
//! DRA4WfMS owns an Ed25519 keypair. The cascade-based nonrepudiation scheme
//! of the paper embeds one signature per executed activity; each signature
//! covers the activity's encrypted execution result plus the signatures of
//! all predecessor activities.
//!
//! Point arithmetic uses extended twisted-Edwards coordinates with the
//! complete a = −1 formulas; scalar arithmetic mod the group order L uses a
//! byte-oriented schoolbook reduction (in the style of TweetNaCl's `modL`).

use crate::field::Fe;
use crate::sha2::Sha512;

/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;

/// Group order L = 2^252 + 27742317777372353535851937790883648493, as 32
/// little-endian bytes.
const L: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// A point on the Ed25519 curve in extended coordinates (X:Y:Z:T), with
/// x = X/Z, y = Y/Z, xy = T/Z.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// The curve constant d = −121665/121666.
fn d() -> Fe {
    use std::sync::OnceLock;
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| Fe::from_u64(121665).neg().mul(&Fe::from_u64(121666).invert()))
}

/// 2·d, used by the addition formulas.
fn d2() -> Fe {
    use std::sync::OnceLock;
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| d().add(&d()))
}

impl Point {
    /// The identity element (0, 1).
    pub fn identity() -> Point {
        Point { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// The standard basepoint B (y = 4/5, x positive), decoded from its
    /// well-known compressed form `0x58 0x66…66`.
    pub fn basepoint() -> Point {
        use std::sync::OnceLock;
        static CELL: OnceLock<Point> = OnceLock::new();
        *CELL.get_or_init(|| {
            let mut enc = [0x66u8; 32];
            enc[0] = 0x58;
            Point::decompress(&enc).expect("basepoint encoding is valid")
        })
    }

    /// Point addition (complete formulas for a = −1 twisted Edwards;
    /// "add-2008-hwcd-3").
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&d2()).mul(&other.t);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        Point { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Point doubling ("dbl-2008-hwcd" with a = −1).
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square();
        let c = c.add(&c);
        let dd = a.neg(); // a = −1
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = dd.add(&b);
        let f = g.sub(&c);
        let h = dd.sub(&b);
        Point { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Negate the point: (x, y) → (−x, y).
    pub fn neg(&self) -> Point {
        Point { x: self.x.neg(), y: self.y, z: self.z, t: self.t.neg() }
    }

    /// Scalar multiplication, MSB-first double-and-add over a 32-byte
    /// little-endian scalar.
    pub fn scalar_mul(&self, scalar: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for byte in scalar.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Compress to the 32-byte encoding: y with the sign of x in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zi = self.z.invert();
        let x = self.x.mul(&zi);
        let y = self.y.mul(&zi);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; `None` if it is not a curve point.
    pub fn decompress(enc: &[u8; 32]) -> Option<Point> {
        let sign = enc[31] >> 7;
        let y = Fe::from_bytes(enc); // masks the sign bit
                                     // x^2 = (y^2 - 1) / (d*y^2 + 1)
        let y2 = y.square();
        let u = y2.sub(&Fe::ONE);
        let v = d().mul(&y2).add(&Fe::ONE);
        // candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let vx2 = v.mul(&x.square());
        if vx2 != u {
            if vx2 == u.neg() {
                x = x.mul(&Fe::sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign == 1 {
            return None; // -0 is not a valid encoding
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Some(Point { x, y, z: Fe::ONE, t: x.mul(&y) })
    }

    /// Affine equality check.
    pub fn eq_affine(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  <=>  x1*z2 == x2*z1, same for y.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L (byte-oriented, TweetNaCl style)
// ---------------------------------------------------------------------------

/// Reduce a 64-coefficient little-endian byte expansion modulo L into 32
/// bytes. Coefficients are signed i64 to absorb intermediate products.
fn mod_l(x: &mut [i64; 64]) -> [u8; 32] {
    let l: [i64; 32] = core::array::from_fn(|i| L[i] as i64);
    let mut carry: i64;
    for i in (32..64).rev() {
        carry = 0;
        let mut j = i - 32;
        while j < i - 12 {
            x[j] += carry - 16 * x[i] * l[j - (i - 32)];
            carry = (x[j] + 128) >> 8;
            x[j] -= carry << 8;
            j += 1;
        }
        x[j] += carry;
        x[i] = 0;
    }
    carry = 0;
    for j in 0..32 {
        x[j] += carry - (x[31] >> 4) * l[j];
        carry = x[j] >> 8;
        x[j] &= 255;
    }
    for j in 0..32 {
        x[j] -= carry * l[j];
    }
    let mut r = [0u8; 32];
    for i in 0..32 {
        if i + 1 < 64 {
            x[i + 1] += x[i] >> 8;
        }
        r[i] = (x[i] & 255) as u8;
    }
    r
}

/// Reduce a 64-byte value (e.g. a SHA-512 digest) modulo L.
pub fn scalar_reduce(wide: &[u8; 64]) -> [u8; 32] {
    let mut x: [i64; 64] = core::array::from_fn(|i| wide[i] as i64);
    mod_l(&mut x)
}

/// Compute (a·b + c) mod L over 32-byte little-endian scalars.
pub fn scalar_muladd(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let mut x = [0i64; 64];
    for i in 0..32 {
        x[i] = c[i] as i64;
    }
    for i in 0..32 {
        for j in 0..32 {
            x[i + j] += a[i] as i64 * b[j] as i64;
        }
    }
    mod_l(&mut x)
}

/// True if the 32-byte little-endian scalar is strictly less than L
/// (rejects malleable signatures).
fn scalar_is_canonical(s: &[u8; 32]) -> bool {
    for i in (0..32).rev() {
        if s[i] < L[i] {
            return true;
        }
        if s[i] > L[i] {
            return false;
        }
    }
    false // s == L
}

// ---------------------------------------------------------------------------
// Keys and signatures
// ---------------------------------------------------------------------------

/// An Ed25519 secret key (the 32-byte seed of RFC 8032).
#[derive(Clone)]
pub struct SecretKey {
    seed: [u8; 32],
}

/// An Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

/// A detached Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub [u8; 64]);

/// A secret/public keypair.
#[derive(Clone)]
pub struct Keypair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(..)")
    }
}

fn clamp(mut a: [u8; 32]) -> [u8; 32] {
    a[0] &= 248;
    a[31] &= 127;
    a[31] |= 64;
    a
}

impl SecretKey {
    /// Construct from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> SecretKey {
        SecretKey { seed }
    }

    /// Generate a fresh random secret key.
    pub fn generate() -> SecretKey {
        SecretKey { seed: crate::random_array32() }
    }

    /// Expose the seed (for serialization into key stores).
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Expand the seed into (clamped scalar a, prefix).
    fn expand(&self) -> ([u8; 32], [u8; 32]) {
        let h = crate::sha2::sha512(&self.seed);
        let mut a = [0u8; 32];
        a.copy_from_slice(&h[..32]);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        (clamp(a), prefix)
    }

    /// Derive the matching public key.
    pub fn public_key(&self) -> PublicKey {
        let (a, _) = self.expand();
        PublicKey(Point::basepoint().scalar_mul(&a).compress())
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let (a, prefix) = self.expand();
        let public = self.public_key();

        let mut h = Sha512::new();
        h.update(&prefix);
        h.update(message);
        let r = scalar_reduce(&h.finalize());

        let r_point = Point::basepoint().scalar_mul(&r).compress();

        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&public.0);
        h.update(message);
        let k = scalar_reduce(&h.finalize());

        let s = scalar_muladd(&k, &a, &r);

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s);
        Signature(sig)
    }
}

impl Keypair {
    /// Generate a fresh random keypair.
    pub fn generate() -> Keypair {
        let secret = SecretKey::generate();
        let public = secret.public_key();
        Keypair { secret, public }
    }

    /// Deterministic keypair from a seed (tests, reproducible workloads).
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public_key();
        Keypair { secret, public }
    }

    /// Sign a message with the secret half.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.secret.sign(message)
    }
}

impl PublicKey {
    /// Verify `signature` over `message`. Rejects non-canonical scalars and
    /// invalid point encodings.
    #[must_use]
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let r_enc: [u8; 32] = signature.0[..32].try_into().expect("split");
        let s: [u8; 32] = signature.0[32..].try_into().expect("split");
        if !scalar_is_canonical(&s) {
            return false;
        }
        let a = match Point::decompress(&self.0) {
            Some(p) => p,
            None => return false,
        };
        let r = match Point::decompress(&r_enc) {
            Some(p) => p,
            None => return false,
        };
        let mut h = Sha512::new();
        h.update(&r_enc);
        h.update(&self.0);
        h.update(message);
        let k = scalar_reduce(&h.finalize());

        // Check [S]B == R + [k]A.
        let lhs = Point::basepoint().scalar_mul(&s);
        let rhs = r.add(&a.scalar_mul(&k));
        lhs.eq_affine(&rhs)
    }

    /// Hex fingerprint (first 8 bytes) for logs and document attributes.
    pub fn fingerprint(&self) -> String {
        crate::hex::encode(&self.0[..8])
    }
}

impl Signature {
    /// Parse from raw bytes.
    pub fn from_bytes(b: &[u8]) -> Option<Signature> {
        if b.len() != 64 {
            return None;
        }
        let mut s = [0u8; 64];
        s.copy_from_slice(b);
        Some(Signature(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed = hex::decode_array::<32>(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = kp.sign(b"");
        assert_eq!(
            hex::encode(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(b"", &sig));
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test2() {
        let seed = hex::decode_array::<32>(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = kp.sign(&[0x72]);
        assert_eq!(
            hex::encode(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(&[0x72], &sig));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let msg = b"workflow execution result of activity A3";
        let sig = kp.sign(msg);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = Keypair::from_seed([1u8; 32]);
        let sig = kp.sign(b"original");
        assert!(!kp.public.verify(b"0riginal", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([2u8; 32]);
        let mut sig = kp.sign(b"message");
        sig.0[10] ^= 0x40;
        assert!(!kp.public.verify(b"message", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed([3u8; 32]);
        let kp2 = Keypair::from_seed([4u8; 32]);
        let sig = kp1.sign(b"message");
        assert!(!kp2.public.verify(b"message", &sig));
    }

    #[test]
    fn non_canonical_s_rejected() {
        let kp = Keypair::from_seed([5u8; 32]);
        let sig = kp.sign(b"m");
        // Forge S' = S + L (same value mod L, non-canonical encoding).
        let mut s: [u8; 32] = sig.0[32..].try_into().unwrap();
        let mut carry = 0u16;
        for i in 0..32 {
            let v = s[i] as u16 + L[i] as u16 + carry;
            s[i] = v as u8;
            carry = v >> 8;
        }
        let mut forged = sig.0;
        forged[32..].copy_from_slice(&s);
        assert!(!kp.public.verify(b"m", &Signature(forged)));
    }

    #[test]
    fn identity_and_basepoint_ops() {
        let b = Point::basepoint();
        let id = Point::identity();
        assert!(b.add(&id).eq_affine(&b));
        assert!(b.add(&b).eq_affine(&b.double()));
        // B + (−B) = identity
        assert!(b.add(&b.neg()).eq_affine(&id));
    }

    #[test]
    fn basepoint_has_order_l() {
        // [L]B should be the identity.
        let lb = Point::basepoint().scalar_mul(&L);
        assert!(lb.eq_affine(&Point::identity()));
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let p = Point::decompress(&kp.public.0).unwrap();
        assert_eq!(p.compress(), kp.public.0);
    }

    #[test]
    fn decompress_rejects_garbage() {
        // y = 2 is not on the curve for either sign.
        let mut enc = [0u8; 32];
        enc[0] = 2;
        assert!(Point::decompress(&enc).is_none());
    }

    #[test]
    fn scalar_reduce_of_small_value_is_identity() {
        let mut wide = [0u8; 64];
        wide[0] = 77;
        let r = scalar_reduce(&wide);
        assert_eq!(r[0], 77);
        assert!(r[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn scalar_reduce_of_l_is_zero() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&L);
        assert_eq!(scalar_reduce(&wide), [0u8; 32]);
    }

    #[test]
    fn scalar_muladd_matches_group_law() {
        // (2*3 + 4) mod L = 10
        let two = {
            let mut s = [0u8; 32];
            s[0] = 2;
            s
        };
        let three = {
            let mut s = [0u8; 32];
            s[0] = 3;
            s
        };
        let four = {
            let mut s = [0u8; 32];
            s[0] = 4;
            s
        };
        let r = scalar_muladd(&two, &three, &four);
        assert_eq!(r[0], 10);
        assert!(r[1..].iter().all(|&b| b == 0));
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test3() {
        let seed = hex::decode_array::<32>(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        )
        .unwrap();
        let kp = Keypair::from_seed(seed);
        assert_eq!(
            hex::encode(&kp.public.0),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xaf, 0x82];
        let sig = kp.sign(&msg);
        assert_eq!(
            hex::encode(&sig.0),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public.verify(&msg, &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = Keypair::from_seed([77u8; 32]);
        assert_eq!(kp.sign(b"same message"), kp.sign(b"same message"));
    }

    #[test]
    fn verify_rejects_swapped_r_s() {
        let kp = Keypair::from_seed([8u8; 32]);
        let sig = kp.sign(b"m");
        let mut swapped = [0u8; 64];
        swapped[..32].copy_from_slice(&sig.0[32..]);
        swapped[32..].copy_from_slice(&sig.0[..32]);
        assert!(!kp.public.verify(b"m", &Signature(swapped)));
    }

    #[test]
    fn large_message_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let msg = vec![0x5au8; 100_000];
        let sig = kp.sign(&msg);
        assert!(kp.public.verify(&msg, &sig));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = Keypair::from_seed([6u8; 32]);
        let b = Keypair::from_seed([7u8; 32]);
        assert_ne!(a.public, b.public);
    }
}
