//! SHA-256 and SHA-512 (FIPS 180-4), with both one-shot and incremental APIs.
//!
//! SHA-256 is the workhorse digest for signatures over canonicalized
//! document elements; SHA-512 is required internally by Ed25519 (RFC 8032).

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K256: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-512 round constants (first 64 bits of the fractional parts of the cube
/// roots of the first 80 primes).
const K512: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

const H256: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const H512: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H256, buf: [0; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // padding: 0x80, zeros, 8-byte big-endian bit length
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // manual length append (bypass total_len accounting)
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K256[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Incremental SHA-512 hasher.
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buf: [u8; 128],
    buf_len: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha512 { state: H512, buf: [0; 128], buf_len: 0, total_len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (128 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 128 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 128 {
            let (block, rest) = data.split_at(128);
            let mut b = [0u8; 128];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and return the 64-byte digest.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 112 {
            self.update(&[0]);
        }
        self.buf[112..128].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 64];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let mut w = [0u64; 80];
        for i in 0..16 {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&block[8 * i..8 * i + 8]);
            w[i] = u64::from_be_bytes(bytes);
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        // one round, with the working variables passed in rotated order so
        // the 8-way register shuffle of the textbook loop disappears
        macro_rules! round {
            ($a:ident $b:ident $c:ident $d:ident $e:ident $f:ident $g:ident $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(14) ^ $e.rotate_right(18) ^ $e.rotate_right(41);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 =
                    $h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K512[$i]).wrapping_add(w[$i]);
                let s0 = $a.rotate_right(28) ^ $a.rotate_right(34) ^ $a.rotate_right(39);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0).wrapping_add(maj);
            };
        }
        let mut i = 0;
        while i < 80 {
            round!(a b c d e f g h, i);
            round!(h a b c d e f g, i + 1);
            round!(g h a b c d e f, i + 2);
            round!(f g h a b c d e, i + 3);
            round!(e f g h a b c d, i + 4);
            round!(d e f g h a b c, i + 5);
            round!(c d e f g h a b, i + 6);
            round!(b c d e f g h a, i + 7);
            i += 8;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-512.
pub fn sha512(data: &[u8]) -> [u8; 64] {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn sha256_empty() {
        assert_eq!(
            hex::encode(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex::encode(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_blocks() {
        // NIST FIPS 180-4 example: 448-bit message
        assert_eq!(
            hex::encode(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex::encode(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha512_empty() {
        assert_eq!(
            hex::encode(&sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_abc() {
        assert_eq!(
            hex::encode(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 129, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");

            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha512(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55, 56, 57 exercise both padding branches of SHA-256.
        for len in [55usize, 56, 57, 63, 64, 65, 111, 112, 113, 119, 120, 127, 128] {
            let msg = vec![0xabu8; len];
            // compare against incremental to check internal consistency
            let mut h = Sha256::new();
            h.update(&msg);
            assert_eq!(h.finalize(), sha256(&msg), "len {len}");
        }
    }
}
