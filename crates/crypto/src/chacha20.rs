//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Supplies the symmetric layer of element-wise encryption: each encrypted
//! XML element in a DRA4WfMS document is ChaCha20-encrypted under a fresh
//! content key, and the content key is wrapped to each authorized recipient
//! (see [`crate::sealed`]).

/// "expand 32-byte k"
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// ChaCha20 keystream generator / XOR cipher.
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    /// Buffered keystream block and position within it.
    block: [u8; 64],
    block_pos: usize,
}

impl ChaCha20 {
    /// Create a cipher instance from a 256-bit key and a 96-bit nonce,
    /// starting at block counter `counter` (RFC 8439 uses 1 for encryption).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { key: k, nonce: n, counter, block: [0; 64], block_pos: 64 }
    }

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Compute one 64-byte keystream block for the current counter.
    fn block_fn(&self) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // column rounds
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let v = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// XOR the keystream into `data` in place (encryption == decryption).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.block_pos == 64 {
                self.block = self.block_fn();
                self.counter = self.counter.wrapping_add(1);
                self.block_pos = 0;
            }
            *byte ^= self.block[self.block_pos];
            self.block_pos += 1;
        }
    }

    /// Convenience: encrypt/decrypt `data` into a fresh vector.
    pub fn process(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce, counter).apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] =
            [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let c = ChaCha20::new(&key, &nonce, 1);
        let block = c.block_fn();
        assert_eq!(
            hex::encode(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
                .replace(char::is_whitespace, "")
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] =
            [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you o\
nly one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::process(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex::encode(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let ct = ChaCha20::process(&key, &nonce, 1, &msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::process(&key, &nonce, 1, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0x5au8; 200];
        let oneshot = ChaCha20::process(&key, &nonce, 1, &msg);
        let mut streamed = msg.clone();
        let mut c = ChaCha20::new(&key, &nonce, 1);
        for chunk in streamed.chunks_mut(17) {
            c.apply(chunk);
        }
        assert_eq!(streamed, oneshot);
    }

    #[test]
    fn different_nonce_different_keystream() {
        let key = [1u8; 32];
        let a = ChaCha20::process(&key, &[0u8; 12], 1, &[0u8; 64]);
        let b = ChaCha20::process(&key, &[1u8; 12], 1, &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        // encrypt 128 zero bytes; the two 64-byte halves must differ
        let ks = ChaCha20::process(&key, &nonce, 1, &[0u8; 128]);
        assert_ne!(&ks[..64], &ks[64..]);
        // and the second half equals a block generated at counter 2
        let second = ChaCha20::process(&key, &nonce, 2, &[0u8; 64]);
        assert_eq!(&ks[64..], &second[..]);
    }
}
