//! Constant-time comparison helpers.
//!
//! Signature and MAC verification must not leak, through timing, how many
//! prefix bytes of an attacker-supplied value matched the expected value.

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately when lengths differ (length is public in all
/// our uses: MAC tags and signatures have fixed sizes).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal() {
        assert!(ct_eq(b"hello", b"hello"));
        assert!(ct_eq(&[], &[]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(b"hello", b"hellp"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(b"hello", b"hell"));
        assert!(!ct_eq(b"", b"x"));
    }
}
