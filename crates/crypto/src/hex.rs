//! Minimal hex encoding/decoding helpers (used by tests, key fingerprints
//! and document serialization of binary values).

/// Encode bytes as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Some(out)
}

/// Decode a hex string into a fixed-size array. `None` if the length does
/// not match or the string is not valid hex.
pub fn decode_array<const N: usize>(s: &str) -> Option<[u8; N]> {
    let v = decode(s)?;
    if v.len() != N {
        return None;
    }
    let mut a = [0u8; N];
    a.copy_from_slice(&v);
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 2, 0xfe, 0xff, 0x7f, 0x80];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn invalid_rejected() {
        assert!(decode("abc").is_none(), "odd length");
        assert!(decode("zz").is_none(), "non-hex char");
        assert!(decode_array::<4>("deadbeefee").is_none(), "wrong length");
    }

    #[test]
    fn decode_array_ok() {
        let a: [u8; 2] = decode_array("beef").unwrap();
        assert_eq!(a, [0xbe, 0xef]);
    }
}
