//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used as the authentication tag of the encrypt-then-MAC construction in
//! [`crate::sealed`] and for keyed document fingerprints.

use crate::sha2::Sha256;

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Create a MAC keyed by `key` (any length; long keys are hashed first).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha2::sha256(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verify a tag in constant time.
    #[must_use]
    pub fn verify(self, tag: &[u8]) -> bool {
        crate::ct::ct_eq(&self.finalize(), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex::encode(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 case 6: 131-byte key
        let key = [0xaau8; 131];
        assert_eq!(
            hex::encode(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"key material";
        let data = b"some fairly long message body for the incremental test";
        let mut m = HmacSha256::new(key);
        m.update(&data[..10]);
        m.update(&data[10..]);
        assert_eq!(m.finalize(), hmac_sha256(key, data));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(HmacSha256::new(b"k").tap(b"m").verify(&tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::new(b"k").tap(b"m").verify(&bad));
        assert!(!HmacSha256::new(b"k").tap(b"m").verify(&tag[..31]));
    }

    trait Tap {
        fn tap(self, d: &[u8]) -> Self;
    }
    impl Tap for HmacSha256 {
        fn tap(mut self, d: &[u8]) -> Self {
            self.update(d);
            self
        }
    }
}
