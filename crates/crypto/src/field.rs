//! Arithmetic in GF(2^255 − 19), the base field of curve25519.
//!
//! Elements are kept fully reduced (`< p`) as four little-endian 64-bit
//! limbs. Multiplication uses schoolbook 4×4 with `u128` intermediates and
//! reduces via the identity `2^256 ≡ 38 (mod p)`. Simplicity and testability
//! are prioritized over raw limb-level speed; the curve layers above are the
//! hot path and remain comfortably fast for the paper's workloads.

/// p = 2^255 − 19, as little-endian limbs.
pub const P: [u64; 4] =
    [0xffff_ffff_ffff_ffed, 0xffff_ffff_ffff_ffff, 0xffff_ffff_ffff_ffff, 0x7fff_ffff_ffff_ffff];

/// An element of GF(2^255 − 19), always fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fe(pub(crate) [u64; 4]);

#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a >= b` over 4 little-endian limbs.
#[inline]
fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    // trial-subtract; no final borrow ⇔ a ≥ b
    let mut borrow = 0;
    for i in 0..4 {
        let (_, b_) = sbb(a[i], b[i], borrow);
        borrow = b_;
    }
    borrow == 0
}

/// Subtract p if the value is ≥ p (one pass, branchless — the limbs of a
/// freshly reduced product are uniform enough that a data-dependent branch
/// here mispredicts constantly).
#[inline]
fn cond_sub_p(v: &mut [u64; 4]) {
    let mut borrow = 0;
    let mut r = [0u64; 4];
    for i in 0..4 {
        let (d, b) = sbb(v[i], P[i], borrow);
        r[i] = d;
        borrow = b;
    }
    // keep the subtraction iff it did not underflow
    let keep = borrow.wrapping_sub(1); // all-ones when borrow == 0
    for i in 0..4 {
        v[i] = (r[i] & keep) | (v[i] & !keep);
    }
}

/// Multiply-accumulate: `acc + b·c + carry`, returning `(low, high)`.
#[inline(always)]
fn mac(acc: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// Build from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe([v, 0, 0, 0])
    }

    /// Decode 32 little-endian bytes; the top bit is ignored (masked) as in
    /// RFC 7748/8032, then the value is reduced mod p.
    #[allow(clippy::needless_range_loop)] // index i addresses both arrays
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[8 * i..8 * i + 8]);
            limbs[i] = u64::from_le_bytes(w);
        }
        limbs[3] &= 0x7fff_ffff_ffff_ffff;
        let mut fe = Fe(limbs);
        cond_sub_p(&mut fe.0);
        fe
    }

    /// Encode as 32 canonical little-endian bytes.
    #[allow(clippy::needless_range_loop)] // index i addresses both arrays
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Field addition.
    #[allow(clippy::needless_range_loop)] // index i addresses two arrays
    pub fn add(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 4];
        let mut carry = 0;
        for i in 0..4 {
            let (v, c) = adc(self.0[i], other.0[i], carry);
            r[i] = v;
            carry = c;
        }
        debug_assert_eq!(carry, 0, "a+b < 2p < 2^256 so no carry-out");
        cond_sub_p(&mut r);
        Fe(r)
    }

    /// Field subtraction.
    #[allow(clippy::needless_range_loop)] // index i addresses two arrays
    pub fn sub(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 4];
        let mut borrow = 0;
        for i in 0..4 {
            let (v, b) = sbb(self.0[i], other.0[i], borrow);
            r[i] = v;
            borrow = b;
        }
        if borrow != 0 {
            // wrapped: add p back (r currently holds a - b + 2^256 mod 2^256)
            let mut carry = 0;
            for i in 0..4 {
                let (v, c) = adc(r[i], P[i], carry);
                r[i] = v;
                carry = c;
            }
        }
        Fe(r)
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication: 4×4 schoolbook, hand-unrolled into explicit
    /// multiply-accumulate chains so the compiler emits straight-line
    /// widening multiplies instead of an indexed carry loop.
    pub fn mul(&self, other: &Fe) -> Fe {
        let a = &self.0;
        let b = &other.0;
        let (r0, c) = mac(0, a[0], b[0], 0);
        let (r1, c) = mac(0, a[0], b[1], c);
        let (r2, c) = mac(0, a[0], b[2], c);
        let (r3, r4) = mac(0, a[0], b[3], c);

        let (r1, c) = mac(r1, a[1], b[0], 0);
        let (r2, c) = mac(r2, a[1], b[1], c);
        let (r3, c) = mac(r3, a[1], b[2], c);
        let (r4, r5) = mac(r4, a[1], b[3], c);

        let (r2, c) = mac(r2, a[2], b[0], 0);
        let (r3, c) = mac(r3, a[2], b[1], c);
        let (r4, c) = mac(r4, a[2], b[2], c);
        let (r5, r6) = mac(r5, a[2], b[3], c);

        let (r3, c) = mac(r3, a[3], b[0], 0);
        let (r4, c) = mac(r4, a[3], b[1], c);
        let (r5, c) = mac(r5, a[3], b[2], c);
        let (r6, r7) = mac(r6, a[3], b[3], c);
        Self::reduce_wide([r0, r1, r2, r3, r4, r5, r6, r7])
    }

    /// Field squaring: the six cross products are computed once and
    /// doubled by a shift, so a square costs 10 widening multiplies to
    /// `mul`'s 16 — squares dominate the doubling-heavy point ladders and
    /// the decompression exponentiation.
    pub fn square(&self) -> Fe {
        let a = &self.0;
        // cross products a_i·a_j (i < j) into limbs 1..=6
        let (t1, c) = mac(0, a[0], a[1], 0);
        let (t2, c) = mac(0, a[0], a[2], c);
        let (t3, t4) = mac(0, a[0], a[3], c);
        let (t3, c) = mac(t3, a[1], a[2], 0);
        let (t4, t5) = mac(t4, a[1], a[3], c);
        let (t5, t6) = mac(t5, a[2], a[3], 0);
        // double them: the wide value is < 2^511, so the top bit is free
        let t7 = t6 >> 63;
        let t6 = (t6 << 1) | (t5 >> 63);
        let t5 = (t5 << 1) | (t4 >> 63);
        let t4 = (t4 << 1) | (t3 >> 63);
        let t3 = (t3 << 1) | (t2 >> 63);
        let t2 = (t2 << 1) | (t1 >> 63);
        let t1 = t1 << 1;
        // add the diagonal a_i² at limbs (2i, 2i+1)
        let d0 = a[0] as u128 * a[0] as u128;
        let d1 = a[1] as u128 * a[1] as u128;
        let d2 = a[2] as u128 * a[2] as u128;
        let d3 = a[3] as u128 * a[3] as u128;
        let r0 = d0 as u64;
        let (r1, c) = adc(t1, (d0 >> 64) as u64, 0);
        let (r2, c) = adc(t2, d1 as u64, c);
        let (r3, c) = adc(t3, (d1 >> 64) as u64, c);
        let (r4, c) = adc(t4, d2 as u64, c);
        let (r5, c) = adc(t5, (d2 >> 64) as u64, c);
        let (r6, c) = adc(t6, d3 as u64, c);
        let (r7, c) = adc(t7, (d3 >> 64) as u64, c);
        debug_assert_eq!(c, 0, "a² < 2^512 leaves no carry-out");
        Self::reduce_wide([r0, r1, r2, r3, r4, r5, r6, r7])
    }

    /// Reduce an 8-limb (512-bit) product modulo p using 2^256 ≡ 38.
    fn reduce_wide(t: [u64; 8]) -> Fe {
        // r = lo + hi*38, 5 limbs
        let mut r = [0u64; 4];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = t[i] as u128 + t[4 + i] as u128 * 38 + carry;
            r[i] = v as u64;
            carry = v >> 64;
        }
        // fold the overflow (≤ ~2^70 · ε) back in, possibly twice
        while carry != 0 {
            let mut c = carry * 38;
            for limb in r.iter_mut() {
                let v = *limb as u128 + c;
                *limb = v as u64;
                c = v >> 64;
                if c == 0 {
                    break;
                }
            }
            carry = c;
        }
        cond_sub_p(&mut r);
        cond_sub_p(&mut r);
        debug_assert!(!geq(&r, &P));
        Fe(r)
    }

    /// Exponentiation by a 256-bit little-endian exponent (square & multiply,
    /// MSB first).
    pub fn pow(&self, exp: &[u64; 4]) -> Fe {
        let mut result = Fe::ONE;
        let mut started = false;
        for i in (0..4).rev() {
            for bit in (0..64).rev() {
                if started {
                    result = result.square();
                }
                if (exp[i] >> bit) & 1 == 1 {
                    if started {
                        result = result.mul(self);
                    } else {
                        result = *self;
                        started = true;
                    }
                }
            }
        }
        result
    }

    /// `self^(2^n)` — n successive squarings.
    fn sqn(&self, n: u32) -> Fe {
        let mut r = *self;
        for _ in 0..n {
            r = r.square();
        }
        r
    }

    /// `self^(2^250 − 1)`, the shared prefix of the inversion and
    /// square-root addition chains (ref10's `pow22501` structure). Roughly
    /// 249 squarings + 11 multiplications, against ~500 multiplications for
    /// generic square-and-multiply — decompression and inversion sit on the
    /// verify hot path, so the chain matters.
    fn pow22501(&self) -> (Fe, Fe) {
        let z = *self;
        let z2 = z.square(); // 2
        let z9 = z2.sqn(2).mul(&z); // 9
        let z11 = z9.mul(&z2); // 11
        let z2_5_0 = z11.square().mul(&z9); // 2^5 - 1
        let z2_10_0 = z2_5_0.sqn(5).mul(&z2_5_0); // 2^10 - 1
        let z2_20_0 = z2_10_0.sqn(10).mul(&z2_10_0); // 2^20 - 1
        let z2_40_0 = z2_20_0.sqn(20).mul(&z2_20_0); // 2^40 - 1
        let z2_50_0 = z2_40_0.sqn(10).mul(&z2_10_0); // 2^50 - 1
        let z2_100_0 = z2_50_0.sqn(50).mul(&z2_50_0); // 2^100 - 1
        let z2_200_0 = z2_100_0.sqn(100).mul(&z2_100_0); // 2^200 - 1
        (z2_200_0.sqn(50).mul(&z2_50_0), z11) // (2^250 - 1, 11)
    }

    /// Multiplicative inverse via Fermat: a^(p−2). Returns zero for zero.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21 = (2^250 - 1)·2^5 + 11
        let (z2_250_0, z11) = self.pow22501();
        z2_250_0.sqn(5).mul(&z11)
    }

    /// a^((p−5)/8) = a^(2^252 − 3); used for square roots during point
    /// decompression (RFC 8032 §5.1.3).
    pub fn pow_p58(&self) -> Fe {
        // 2^252 - 3 = (2^250 - 1)·2^2 + 1
        let (z2_250_0, _) = self.pow22501();
        z2_250_0.sqn(2).mul(self)
    }

    /// True if the element is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Parity of the canonical representative (bit 0), the "sign" used in
    /// point compression.
    pub fn is_negative(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// sqrt(−1) mod p, computed once as 2^((p−1)/4).
    pub fn sqrt_m1() -> Fe {
        use std::sync::OnceLock;
        static CELL: OnceLock<Fe> = OnceLock::new();
        *CELL.get_or_init(|| {
            // (p-1)/4 = 2^253 - 5
            const EXP: [u64; 4] = [
                0xffff_ffff_ffff_fffb,
                0xffff_ffff_ffff_ffff,
                0xffff_ffff_ffff_ffff,
                0x1fff_ffff_ffff_ffff,
            ];
            Fe::from_u64(2).pow(&EXP)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_sub_basics() {
        let a = fe(5);
        let b = fe(3);
        assert_eq!(a.add(&b), fe(8));
        assert_eq!(a.sub(&b), fe(2));
        assert_eq!(b.sub(&a).add(&a), b, "wraparound subtraction");
    }

    #[test]
    fn neg_of_zero_is_zero() {
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn p_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[8 * i..8 * i + 8].copy_from_slice(&P[i].to_le_bytes());
        }
        assert_eq!(Fe::from_bytes(&bytes), Fe::ZERO);
    }

    #[test]
    fn p_minus_one_is_canonical() {
        let m1 = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(m1.0[0], P[0] - 1);
        assert_eq!(m1.add(&Fe::ONE), Fe::ZERO);
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(7).mul(&fe(6)), fe(42));
        assert_eq!(fe(0).mul(&fe(12345)), Fe::ZERO);
        assert_eq!(Fe::ONE.mul(&fe(99)), fe(99));
    }

    #[test]
    fn mul_wraps_correctly() {
        // (p-1)^2 mod p = 1
        let m1 = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(m1.mul(&m1), Fe::ONE);
        // (p-1) * 2 = p - 2
        assert_eq!(m1.mul(&fe(2)), Fe::ZERO.sub(&fe(2)));
    }

    #[test]
    fn invert() {
        for v in [1u64, 2, 3, 19, 485, u64::MAX] {
            let a = fe(v);
            assert_eq!(a.mul(&a.invert()), Fe::ONE, "v = {v}");
        }
        assert_eq!(Fe::ZERO.invert(), Fe::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert_eq!(i.square(), Fe::ZERO.sub(&Fe::ONE));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = fe(0xdead_beef).mul(&fe(0x1234_5678_9abc_def0));
        assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
    }

    #[test]
    fn high_bit_masked_on_decode() {
        let mut b = [0u8; 32];
        b[31] = 0x80; // only the masked bit set
        assert_eq!(Fe::from_bytes(&b), Fe::ZERO);
    }

    fn arb_fe() -> impl Strategy<Value = Fe> {
        proptest::array::uniform32(any::<u8>()).prop_map(|b| Fe::from_bytes(&b))
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_mul_commutes(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn prop_mul_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn prop_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_sub_add_inverse(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.sub(&b).add(&b), a);
        }

        #[test]
        fn prop_invert(a in arb_fe()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
        }

        #[test]
        fn prop_square_is_mul_self(a in arb_fe()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn prop_roundtrip(a in arb_fe()) {
            prop_assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
        }
    }
}
