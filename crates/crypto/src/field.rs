//! Arithmetic in GF(2^255 − 19), the base field of curve25519.
//!
//! Elements are kept fully reduced (`< p`) as four little-endian 64-bit
//! limbs. Multiplication uses schoolbook 4×4 with `u128` intermediates and
//! reduces via the identity `2^256 ≡ 38 (mod p)`. Simplicity and testability
//! are prioritized over raw limb-level speed; the curve layers above are the
//! hot path and remain comfortably fast for the paper's workloads.

/// p = 2^255 − 19, as little-endian limbs.
pub const P: [u64; 4] =
    [0xffff_ffff_ffff_ffed, 0xffff_ffff_ffff_ffff, 0xffff_ffff_ffff_ffff, 0x7fff_ffff_ffff_ffff];

/// An element of GF(2^255 − 19), always fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fe(pub(crate) [u64; 4]);

#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// `a >= b` over 4 little-endian limbs.
#[inline]
fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Subtract p if the value is ≥ p (one pass).
#[inline]
fn cond_sub_p(v: &mut [u64; 4]) {
    if geq(v, &P) {
        let mut borrow = 0;
        for i in 0..4 {
            let (r, b) = sbb(v[i], P[i], borrow);
            v[i] = r;
            borrow = b;
        }
    }
}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// Build from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe([v, 0, 0, 0])
    }

    /// Decode 32 little-endian bytes; the top bit is ignored (masked) as in
    /// RFC 7748/8032, then the value is reduced mod p.
    #[allow(clippy::needless_range_loop)] // index i addresses both arrays
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[8 * i..8 * i + 8]);
            limbs[i] = u64::from_le_bytes(w);
        }
        limbs[3] &= 0x7fff_ffff_ffff_ffff;
        let mut fe = Fe(limbs);
        cond_sub_p(&mut fe.0);
        fe
    }

    /// Encode as 32 canonical little-endian bytes.
    #[allow(clippy::needless_range_loop)] // index i addresses both arrays
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Field addition.
    #[allow(clippy::needless_range_loop)] // index i addresses two arrays
    pub fn add(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 4];
        let mut carry = 0;
        for i in 0..4 {
            let (v, c) = adc(self.0[i], other.0[i], carry);
            r[i] = v;
            carry = c;
        }
        debug_assert_eq!(carry, 0, "a+b < 2p < 2^256 so no carry-out");
        cond_sub_p(&mut r);
        Fe(r)
    }

    /// Field subtraction.
    #[allow(clippy::needless_range_loop)] // index i addresses two arrays
    pub fn sub(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 4];
        let mut borrow = 0;
        for i in 0..4 {
            let (v, b) = sbb(self.0[i], other.0[i], borrow);
            r[i] = v;
            borrow = b;
        }
        if borrow != 0 {
            // wrapped: add p back (r currently holds a - b + 2^256 mod 2^256)
            let mut carry = 0;
            for i in 0..4 {
                let (v, c) = adc(r[i], P[i], carry);
                r[i] = v;
                carry = c;
            }
        }
        Fe(r)
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, other: &Fe) -> Fe {
        // 4x4 schoolbook -> 8 limbs
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = t[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                t[i + j] = v as u64;
                carry = v >> 64;
            }
            t[i + 4] = carry as u64;
        }
        Self::reduce_wide(t)
    }

    /// Field squaring (delegates to `mul`; adequate for our workloads).
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Reduce an 8-limb (512-bit) product modulo p using 2^256 ≡ 38.
    fn reduce_wide(t: [u64; 8]) -> Fe {
        // r = lo + hi*38, 5 limbs
        let mut r = [0u64; 4];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = t[i] as u128 + t[4 + i] as u128 * 38 + carry;
            r[i] = v as u64;
            carry = v >> 64;
        }
        // fold the overflow (≤ ~2^70 · ε) back in, possibly twice
        while carry != 0 {
            let mut c = carry * 38;
            for limb in r.iter_mut() {
                let v = *limb as u128 + c;
                *limb = v as u64;
                c = v >> 64;
                if c == 0 {
                    break;
                }
            }
            carry = c;
        }
        cond_sub_p(&mut r);
        cond_sub_p(&mut r);
        debug_assert!(!geq(&r, &P));
        Fe(r)
    }

    /// Exponentiation by a 256-bit little-endian exponent (square & multiply,
    /// MSB first).
    pub fn pow(&self, exp: &[u64; 4]) -> Fe {
        let mut result = Fe::ONE;
        let mut started = false;
        for i in (0..4).rev() {
            for bit in (0..64).rev() {
                if started {
                    result = result.square();
                }
                if (exp[i] >> bit) & 1 == 1 {
                    if started {
                        result = result.mul(self);
                    } else {
                        result = *self;
                        started = true;
                    }
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: a^(p−2). Returns zero for zero.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21
        const EXP: [u64; 4] = [
            0xffff_ffff_ffff_ffeb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x7fff_ffff_ffff_ffff,
        ];
        self.pow(&EXP)
    }

    /// a^((p−5)/8) = a^(2^252 − 3); used for square roots during point
    /// decompression (RFC 8032 §5.1.3).
    pub fn pow_p58(&self) -> Fe {
        const EXP: [u64; 4] = [
            0xffff_ffff_ffff_fffd,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x0fff_ffff_ffff_ffff,
        ];
        self.pow(&EXP)
    }

    /// True if the element is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Parity of the canonical representative (bit 0), the "sign" used in
    /// point compression.
    pub fn is_negative(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// sqrt(−1) mod p, computed once as 2^((p−1)/4).
    pub fn sqrt_m1() -> Fe {
        use std::sync::OnceLock;
        static CELL: OnceLock<Fe> = OnceLock::new();
        *CELL.get_or_init(|| {
            // (p-1)/4 = 2^253 - 5
            const EXP: [u64; 4] = [
                0xffff_ffff_ffff_fffb,
                0xffff_ffff_ffff_ffff,
                0xffff_ffff_ffff_ffff,
                0x1fff_ffff_ffff_ffff,
            ];
            Fe::from_u64(2).pow(&EXP)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_sub_basics() {
        let a = fe(5);
        let b = fe(3);
        assert_eq!(a.add(&b), fe(8));
        assert_eq!(a.sub(&b), fe(2));
        assert_eq!(b.sub(&a).add(&a), b, "wraparound subtraction");
    }

    #[test]
    fn neg_of_zero_is_zero() {
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn p_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[8 * i..8 * i + 8].copy_from_slice(&P[i].to_le_bytes());
        }
        assert_eq!(Fe::from_bytes(&bytes), Fe::ZERO);
    }

    #[test]
    fn p_minus_one_is_canonical() {
        let m1 = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(m1.0[0], P[0] - 1);
        assert_eq!(m1.add(&Fe::ONE), Fe::ZERO);
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(7).mul(&fe(6)), fe(42));
        assert_eq!(fe(0).mul(&fe(12345)), Fe::ZERO);
        assert_eq!(Fe::ONE.mul(&fe(99)), fe(99));
    }

    #[test]
    fn mul_wraps_correctly() {
        // (p-1)^2 mod p = 1
        let m1 = Fe::ZERO.sub(&Fe::ONE);
        assert_eq!(m1.mul(&m1), Fe::ONE);
        // (p-1) * 2 = p - 2
        assert_eq!(m1.mul(&fe(2)), Fe::ZERO.sub(&fe(2)));
    }

    #[test]
    fn invert() {
        for v in [1u64, 2, 3, 19, 485, u64::MAX] {
            let a = fe(v);
            assert_eq!(a.mul(&a.invert()), Fe::ONE, "v = {v}");
        }
        assert_eq!(Fe::ZERO.invert(), Fe::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert_eq!(i.square(), Fe::ZERO.sub(&Fe::ONE));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = fe(0xdead_beef).mul(&fe(0x1234_5678_9abc_def0));
        assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
    }

    #[test]
    fn high_bit_masked_on_decode() {
        let mut b = [0u8; 32];
        b[31] = 0x80; // only the masked bit set
        assert_eq!(Fe::from_bytes(&b), Fe::ZERO);
    }

    fn arb_fe() -> impl Strategy<Value = Fe> {
        proptest::array::uniform32(any::<u8>()).prop_map(|b| Fe::from_bytes(&b))
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_mul_commutes(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn prop_mul_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn prop_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_sub_add_inverse(a in arb_fe(), b in arb_fe()) {
            prop_assert_eq!(a.sub(&b).add(&b), a);
        }

        #[test]
        fn prop_invert(a in arb_fe()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
        }

        #[test]
        fn prop_square_is_mul_self(a in arb_fe()) {
            prop_assert_eq!(a.square(), a.mul(&a));
        }

        #[test]
        fn prop_roundtrip(a in arb_fe()) {
            prop_assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
        }
    }
}
