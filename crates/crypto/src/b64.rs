//! Standard base64 (RFC 4648, with padding) — used for the bulk binary
//! payloads embedded in documents (ciphertexts, sealed blobs), where hex
//! would cost 2× instead of 1.33× expansion. XML Security tooling encodes
//! `CipherValue` contents the same way.

const TABLE: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(TABLE[(n >> 18) as usize & 63] as char);
        out.push(TABLE[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { TABLE[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { TABLE[n as usize & 63] as char } else { '=' });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode base64 (strict: padding required, no whitespace). `None` on any
/// malformed input.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pads = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return None;
        }
        let vals: Vec<u32> =
            chunk[..4 - pads].iter().map(|&c| value_of(c)).collect::<Option<_>>()?;
        match pads {
            0 => {
                let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
                out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8, n as u8]);
            }
            1 => {
                let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6);
                // the dropped bits must be zero (canonical encoding)
                if n & 0xff != 0 {
                    return None;
                }
                out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8]);
            }
            2 => {
                let n = (vals[0] << 18) | (vals[1] << 12);
                if n & 0xffff != 0 {
                    return None;
                }
                out.push((n >> 16) as u8);
            }
            _ => unreachable!(),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        for (enc, dec) in [
            ("", &b""[..]),
            ("Zg==", b"f"),
            ("Zm8=", b"fo"),
            ("Zm9v", b"foo"),
            ("Zm9vYg==", b"foob"),
            ("Zm9vYmE=", b"fooba"),
            ("Zm9vYmFy", b"foobar"),
        ] {
            assert_eq!(decode(enc).unwrap(), dec);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode("A").is_none(), "bad length");
        assert!(decode("AA=A").is_none(), "padding in the middle");
        assert!(decode("A===").is_none(), "too much padding");
        assert!(decode("AA =").is_none(), "whitespace");
        assert!(decode("AA.=").is_none(), "bad alphabet");
        assert!(decode("Zg==Zg==").is_none(), "padding before the end");
    }

    #[test]
    fn non_canonical_rejected() {
        // "Zh==" decodes the same first byte as "Zg==" but with nonzero
        // dropped bits — must be rejected to keep encodings unique.
        assert!(decode("Zh==").is_none());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_expansion_ratio(data in proptest::collection::vec(any::<u8>(), 1..200)) {
            let e = encode(&data);
            prop_assert_eq!(e.len(), data.len().div_ceil(3) * 4);
        }

        #[test]
        fn prop_decode_never_panics(s in "[A-Za-z0-9+/=]{0,64}") {
            let _ = decode(&s);
        }
    }
}
