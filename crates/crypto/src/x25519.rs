//! X25519 Diffie–Hellman (RFC 7748).
//!
//! Provides the key-agreement half of the hybrid "sealed box" construction
//! used for element-wise encryption of DRA4WfMS documents: content keys are
//! wrapped to recipient public keys via an ephemeral X25519 exchange.

use crate::field::Fe;

/// An X25519 secret scalar.
#[derive(Clone)]
pub struct X25519Secret([u8; 32]);

/// An X25519 public key (a u-coordinate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct X25519PublicKey(pub [u8; 32]);

impl std::fmt::Debug for X25519Secret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("X25519Secret(..)")
    }
}

fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

impl X25519Secret {
    /// Construct from raw bytes (clamped on use).
    pub fn from_bytes(b: [u8; 32]) -> X25519Secret {
        X25519Secret(b)
    }

    /// Generate a random secret.
    pub fn generate() -> X25519Secret {
        X25519Secret(crate::random_array32())
    }

    /// Raw bytes (for key stores).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Derive the public key: X25519(k, 9).
    pub fn public_key(&self) -> X25519PublicKey {
        let mut basepoint = [0u8; 32];
        basepoint[0] = 9;
        X25519PublicKey(x25519(&self.0, &basepoint))
    }

    /// Diffie–Hellman: compute the shared secret with a peer public key.
    pub fn diffie_hellman(&self, peer: &X25519PublicKey) -> [u8; 32] {
        x25519(&self.0, &peer.0)
    }
}

/// The raw X25519 function: scalar multiplication on the Montgomery
/// u-coordinate ladder. `scalar` is clamped per RFC 7748.
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;
    let a24 = Fe::from_u64(121665);

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        if swap == 1 {
            core::mem::swap(&mut x2, &mut x3);
            core::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    if swap == 1 {
        core::mem::swap(&mut x2, &mut x3);
        core::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(&z2.invert()).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = hex::decode_array::<32>(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        )
        .unwrap();
        let u = hex::decode_array::<32>(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        )
        .unwrap();
        assert_eq!(
            hex::encode(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    /// RFC 7748 §6.1 Diffie–Hellman vector.
    #[test]
    fn rfc7748_dh() {
        let alice = X25519Secret::from_bytes(
            hex::decode_array("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
                .unwrap(),
        );
        let bob = X25519Secret::from_bytes(
            hex::decode_array("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
                .unwrap(),
        );
        assert_eq!(
            hex::encode(&alice.public_key().0),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex::encode(&bob.public_key().0),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = alice.diffie_hellman(&bob.public_key());
        let shared_b = bob.diffie_hellman(&alice.public_key());
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex::encode(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    /// RFC 7748 §5.2 iteration test: applying the function iteratively,
    /// after 1 iteration the result is the published constant.
    #[test]
    fn rfc7748_one_iteration() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let u = k;
        let out = x25519(&k, &u);
        assert_eq!(
            hex::encode(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn all_zero_public_key_yields_zero_shared_secret() {
        // low-order/zero inputs map to the zero output (callers that need
        // contributory behaviour must check; sealed boxes rely on HMAC)
        let s = X25519Secret::from_bytes([42u8; 32]);
        let zero = X25519PublicKey([0u8; 32]);
        assert_eq!(s.diffie_hellman(&zero), [0u8; 32]);
    }

    #[test]
    fn dh_agreement_random_keys() {
        for seed in 0..4u8 {
            let a = X25519Secret::from_bytes([seed; 32]);
            let b = X25519Secret::from_bytes([seed + 100; 32]);
            assert_eq!(
                a.diffie_hellman(&b.public_key()),
                b.diffie_hellman(&a.public_key()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn distinct_secrets_distinct_publics() {
        let a = X25519Secret::from_bytes([1; 32]);
        let b = X25519Secret::from_bytes([2; 32]);
        assert_ne!(a.public_key(), b.public_key());
    }
}
