//! Criterion bench for the crypto substrate: the primitives underlying
//! every α/β/γ figure (useful when comparing against the paper's Java
//! RSA/Santuario stack and for regression tracking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dra_crypto::ed25519::Keypair;
use dra_crypto::sealed;
use dra_crypto::sha2::{sha256, sha512};
use dra_crypto::x25519::X25519Secret;
use dra_crypto::ChaCha20;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    g.sample_size(30);

    for size in [64usize, 4096] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| b.iter(|| sha256(d)));
        g.bench_with_input(BenchmarkId::new("sha512", size), &data, |b, d| b.iter(|| sha512(d)));
        g.bench_with_input(BenchmarkId::new("chacha20", size), &data, |b, d| {
            let key = [7u8; 32];
            let nonce = [9u8; 12];
            b.iter(|| ChaCha20::process(&key, &nonce, 1, d))
        });
    }

    let kp = Keypair::from_seed([1u8; 32]);
    let msg = vec![0x42u8; 1024];
    g.bench_function("ed25519_sign_1k", |b| b.iter(|| kp.sign(&msg)));
    let sig = kp.sign(&msg);
    g.bench_function("ed25519_verify_1k", |b| b.iter(|| assert!(kp.public.verify(&msg, &sig))));

    let alice = X25519Secret::from_bytes([2u8; 32]);
    let bob = X25519Secret::from_bytes([3u8; 32]);
    let bob_pub = bob.public_key();
    g.bench_function("x25519_dh", |b| b.iter(|| alice.diffie_hellman(&bob_pub)));

    let payload = vec![0x55u8; 256];
    g.bench_function("sealed_box_seal_256", |b| b.iter(|| sealed::seal(&bob_pub, &payload)));
    let boxed = sealed::seal(&bob_pub, &payload);
    g.bench_function("sealed_box_open_256", |b| b.iter(|| sealed::open(&bob, &boxed).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
