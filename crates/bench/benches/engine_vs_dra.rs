//! Criterion bench for claim C4: per-hop cost of the engine-based baseline
//! (plain state mutation + coherence) vs DRA4WfMS (cryptographic document
//! routing) on the same 3-hop cross-enterprise workflow, and the cost of an
//! engine instance migration as the instance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra4wfms_core::prelude::*;
use dra_engine::{DistributedWfms, WorkflowEngine};

fn def3() -> WorkflowDefinition {
    WorkflowDefinition::builder("cross-ent", "designer")
        .simple_activity("a0", "org0", &["f"])
        .simple_activity("a1", "org1", &["f"])
        .simple_activity("a2", "org2", &["f"])
        .flow("a0", "a1")
        .flow("a1", "a2")
        .flow_end("a2")
        .build()
        .unwrap()
}

fn bench_engine_vs_dra(c: &mut Criterion) {
    let def = def3();
    let mut g = c.benchmark_group("engine_vs_dra");
    g.sample_size(20);

    // engine: one full 3-hop instance, centralized (no migration)
    let engine = WorkflowEngine::new("bench");
    g.bench_function("engine_centralized_instance", |b| {
        b.iter(|| {
            let pid = engine.start_process(&def).unwrap();
            for (hop, org) in ["org0", "org1", "org2"].iter().enumerate() {
                engine
                    .execute_activity(pid, &format!("a{hop}"), org, &[("f".into(), "v".into())])
                    .unwrap();
            }
        })
    });

    // engine: distributed with a migration per hop (the coherence cost)
    let dist = DistributedWfms::new(3);
    g.bench_function("engine_distributed_instance", |b| {
        b.iter(|| {
            let (pid, _) = dist.start_process(&def).unwrap();
            for (hop, org) in ["org0", "org1", "org2"].iter().enumerate() {
                dist.execute_at(hop, pid, &format!("a{hop}"), org, &[("f".into(), "v".into())])
                    .unwrap();
            }
        })
    });

    // DRA4WfMS: one full 3-hop instance (crypto per hop, no shared state)
    let creds: Vec<Credentials> = ["designer", "org0", "org1", "org2"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("evd-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let agents: Vec<Aea> = creds[1..].iter().map(|c| Aea::new(c.clone(), dir.clone())).collect();
    let initial =
        DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "evd")
            .unwrap()
            .to_xml_string();
    g.bench_function("dra4wfms_instance", |b| {
        b.iter(|| {
            let mut xml = initial.clone();
            for (hop, aea) in agents.iter().enumerate() {
                let recv = aea.receive(&xml, &format!("a{hop}")).unwrap();
                xml = aea
                    .complete(&recv, &[("f".into(), "v".into())])
                    .unwrap()
                    .document
                    .to_xml_string();
            }
        })
    });
    g.finish();

    // migration cost as the stored instance grows (the paper: "process
    // instances must be transmitted during their execution")
    let mut g = c.benchmark_group("engine_migration_cost");
    g.sample_size(15);
    for steps in [1usize, 16, 64] {
        // build an instance with `steps` recorded results on engine 0
        let def_loop = WorkflowDefinition::builder("grow", "designer")
            .simple_activity("s", "p", &["f"])
            .flow_if("s", "s", Condition::field_equals("s", "f", "again"))
            .flow_end_if("s", Condition::field_not_equals("s", "f", "again"))
            .build()
            .unwrap();
        let dist = DistributedWfms::new(2);
        let (pid, start) = dist.start_process(&def_loop).unwrap();
        for i in 0..steps {
            let v = if i + 1 < steps { "again" } else { "done" };
            dist.execute_at(start, pid, "s", "p", &[("f".into(), format!("{v}-{i:04}"))]).unwrap();
        }
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            // ping-pong the instance between the two engines
            let mut at = start;
            b.iter(|| {
                at = 1 - at;
                // a read at the other engine forces a migration
                dist.execute_at(at, pid, "s", "p", &[("f".into(), "again".into())]).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_vs_dra);
criterion_main!(benches);
