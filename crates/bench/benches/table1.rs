//! Criterion bench for Table 1 (basic model): α (receive = parse + verify +
//! decrypt) and β (complete = encrypt + sign + route) at the first and last
//! steps of the Fig. 9A trace, plus a full-trace measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use dra4wfms_core::prelude::*;
use dra_bench::chain::finished_chain_document;
use dra_bench::fig9;

fn bench_table1(c: &mut Criterion) {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(false);
    let pol = fig9::policy(&def, false);
    let initial =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "bench").unwrap().to_xml_string();
    let aea_a = Aea::new(creds.iter().find(|c| c.name == "p_a").unwrap().clone(), dir.clone());

    let mut g = c.benchmark_group("table1");
    g.sample_size(20);

    // α at the first step (1 signature to verify)
    g.bench_function("alpha_first_step", |b| b.iter(|| aea_a.receive(&initial, "A").unwrap()));

    // β at the first step
    let received = aea_a.receive(&initial, "A").unwrap();
    g.bench_function("beta_first_step", |b| {
        b.iter(|| {
            aea_a.complete(&received, &[("attachment".into(), "contract.pdf".into())]).unwrap()
        })
    });

    // α at 9 CERs (full-document verify, like the X_D(0) row)
    let (xml9, dir9) = finished_chain_document(9, true);
    g.bench_function("alpha_nine_cers_verify", |b| {
        b.iter(|| {
            let doc = DraDocument::parse(&xml9).unwrap();
            dra4wfms_core::verify::Verifier::new(&dir9).run(&doc).unwrap()
        })
    });

    // the entire Fig. 9A trace (9 executions)
    g.bench_function("full_trace", |b| b.iter(|| fig9::run_fig9_trace(false)));
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
