//! Criterion bench for claim C1: verify time vs number of CERs (expected
//! linear) and sign time vs number of CERs (expected constant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dra4wfms_core::prelude::*;
use dra4wfms_core::verify::Verifier;
use dra_bench::chain::{chain_cast, finished_chain_document};

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/verify_vs_cers");
    g.sample_size(15);
    for n in [1usize, 4, 16, 48] {
        let (xml, dir) = finished_chain_document(n, true);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let doc = DraDocument::parse(&xml).unwrap();
                Verifier::new(&dir).run(&doc).unwrap()
            })
        });
    }
    g.finish();

    // β stays constant: completing the k-th step of a chain costs the same
    // regardless of k (one signature + field encryption).
    let mut g = c.benchmark_group("scaling/sign_vs_cers");
    g.sample_size(15);
    for n in [2usize, 16, 48] {
        // a chain with n-1 executed steps, measuring step n
        let (creds, dir) = chain_cast(n);
        let def = dra_bench::chain::chain_definition(n);
        let pol = dra_bench::chain::chain_policy(n, true);
        let mut doc = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "sc").unwrap();
        for i in 0..n - 1 {
            let aea = Aea::new(creds[i + 1].clone(), dir.clone());
            let recv = aea.receive(doc.to_xml_string(), &format!("S{i}")).unwrap();
            doc = aea
                .complete(&recv, &[("payload".into(), "v".into())])
                .unwrap()
                .document
                .into_document();
        }
        let aea = Aea::new(creds[n].clone(), dir.clone());
        let received = aea.receive(doc.to_xml_string(), &format!("S{}", n - 1)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| aea.complete(&received, &[("payload".into(), "v".into())]).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
