//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **parallel vs sequential verification** — the verify loop dominates α
//!   for long cascades; planning + parallel execution is our extension over
//!   the paper's sequential AEA (expect wins only with >1 core).
//! * **element-wise encryption fan-out** — one ciphertext + per-recipient
//!   key wraps (our design, following XML-Enc practice) scales with the
//!   audience size; this quantifies the per-recipient cost β pays.
//! * **cascade breadth** — signing all predecessor signatures at an
//!   AND-join versus a single chain link (what nonrepudiation costs).
//! * **full vs incremental α** — re-verifying the whole cascade on every
//!   hop (the paper's baseline, O(n) checks per hop) versus the
//!   verified-prefix trust mark (exactly one new CER per hop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dra4wfms_core::prelude::*;
use dra_bench::chain::finished_chain_document;
use dra_xml::enc::{encrypt_element, Recipient};
use dra_xml::Element;

fn bench_parallel_verify(c: &mut Criterion) {
    let (xml, dir) = finished_chain_document(32, true);
    let doc = DraDocument::parse(&xml).unwrap();
    let mut g = c.benchmark_group("ablation/verify_32cers");
    g.sample_size(15);
    g.bench_function("sequential", |b| {
        b.iter(|| Verifier::new(&dir).batched(false).run(&doc).unwrap())
    });
    g.bench_function("batched", |b| b.iter(|| Verifier::new(&dir).run(&doc).unwrap()));
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &threads| {
            b.iter(|| Verifier::new(&dir).batched(false).threads(threads).run(&doc).unwrap())
        });
    }
    g.finish();
}

fn bench_encryption_fanout(c: &mut Criterion) {
    let field = Element::new("Field").attr("name", "payload").text("x".repeat(256));
    let mut g = c.benchmark_group("ablation/encrypt_fanout");
    g.sample_size(15);
    for recipients in [1usize, 4, 16] {
        let recs: Vec<Recipient> = (0..recipients)
            .map(|i| {
                let c = Credentials::from_seed(format!("r{i}"), &format!("fanout-{i}"));
                Recipient::new(c.name.clone(), c.identity().enc)
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(recipients), &recs, |b, recs| {
            b.iter(|| encrypt_element(&field, recs))
        });
    }
    g.finish();
}

fn bench_cascade_breadth(c: &mut Criterion) {
    // diamond with k parallel branches joining: the join signature covers
    // k branch signatures; measure the join's complete() cost vs k.
    let mut g = c.benchmark_group("ablation/join_breadth");
    g.sample_size(15);
    for k in [1usize, 4, 8] {
        let mut creds = vec![Credentials::from_seed("designer", "jb-d")];
        creds.push(Credentials::from_seed("src", "jb-src"));
        for i in 0..k {
            creds.push(Credentials::from_seed(format!("b{i}"), &format!("jb-b{i}")));
        }
        creds.push(Credentials::from_seed("join", "jb-join"));
        let dir = Directory::from_credentials(&creds);

        let mut b_def =
            WorkflowDefinition::builder("join", "designer").simple_activity("src", "src", &["x"]);
        for i in 0..k {
            b_def = b_def
                .simple_activity(format!("B{i}"), format!("b{i}"), &["y"])
                .flow("src", format!("B{i}"));
        }
        b_def = b_def.activity(Activity {
            id: "J".into(),
            participant: "join".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec!["z".into()],
        });
        for i in 0..k {
            b_def = b_def.flow(format!("B{i}"), "J");
        }
        let def = b_def.flow_end("J").build().unwrap();

        // execute src + all branches
        let doc =
            DraDocument::new_initial_with_pid(&def, &SecurityPolicy::public(), &creds[0], "jb")
                .unwrap();
        let aea_src = Aea::new(creds[1].clone(), dir.clone());
        let recv = aea_src.receive(doc.to_xml_string(), "src").unwrap();
        let src_done = aea_src.complete(&recv, &[("x".into(), "1".into())]).unwrap();
        let mut branch_docs = Vec::new();
        for i in 0..k {
            let aea = Aea::new(creds[2 + i].clone(), dir.clone());
            let recv = aea.receive(src_done.document.to_xml_string(), &format!("B{i}")).unwrap();
            branch_docs.push(
                aea.complete(&recv, &[("y".into(), "2".into())]).unwrap().document.to_xml_string(),
            );
        }
        let aea_join = Aea::new(creds[2 + k].clone(), dir.clone());
        let branch_refs: Vec<&str> = branch_docs.iter().map(String::as_str).collect();
        let received = aea_join.receive_merged(&branch_refs, "J").unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, _| {
            bch.iter(|| aea_join.complete(&received, &[("z".into(), "3".into())]).unwrap())
        });
    }
    g.finish();
}

fn bench_incremental_verify(c: &mut Criterion) {
    // steady-state hand-off: the receiving hop holds a trust mark covering
    // every CER but the newest. Full α re-checks designer + n signatures;
    // incremental α re-checks exactly one.
    let mut g = c.benchmark_group("ablation/full_vs_incremental_alpha");
    g.sample_size(15);
    for n in [8usize, 32] {
        let (xml, dir) = finished_chain_document(n, true);
        let doc = DraDocument::parse(&xml).unwrap();
        let report = Verifier::new(&dir).run(&doc).unwrap().report;
        let mut mark = trust_mark_for(&doc, &report, 0).unwrap();
        mark.verified_cers = n - 1;
        mark.prefix_digest = prefix_digest(&doc, n - 1).unwrap();
        g.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| Verifier::new(&dir).run(&doc).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("incremental_1_new_cer", n), &n, |b, _| {
            b.iter(|| {
                let outcome = Verifier::new(&dir).with_mark(&mark).run(&doc).unwrap();
                assert!(!outcome.fell_back);
                outcome
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parallel_verify,
    bench_encryption_fanout,
    bench_cascade_breadth,
    bench_incremental_verify
);
criterion_main!(benches);
