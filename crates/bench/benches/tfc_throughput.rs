//! Criterion bench for claim C2: TFC server processing throughput over the
//! Fig. 9B intermediate documents — the TFC must keep pace with the AEAs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dra4wfms_core::prelude::*;
use dra_bench::fig9::{cast, fig9b_intermediate_documents};
use std::sync::Arc;

fn bench_tfc(c: &mut Criterion) {
    let inters = fig9b_intermediate_documents();
    let (creds, dir) = cast();
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = TfcServer::with_clock(tfc_creds, dir, Arc::new(|| 1));

    let mut g = c.benchmark_group("tfc");
    g.sample_size(15);
    // cost per document at different cascade depths (first vs last hop)
    for (idx, label) in [(0usize, "first_hop"), (4, "mid_hop"), (8, "last_hop")] {
        let xml = &inters[idx];
        g.throughput(Throughput::Bytes(xml.len() as u64));
        g.bench_with_input(BenchmarkId::new("process", label), xml, |b, xml| {
            b.iter(|| tfc.process(xml).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tfc);
criterion_main!(benches);
