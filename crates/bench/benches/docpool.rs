//! Criterion bench for claim C5: document pool operations — put, random
//! get, prefix scan and MapReduce — at a realistic pool size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dra_docpool::{map_reduce, HTable, TableConfig};

fn loaded_table(n: usize) -> HTable {
    let t = HTable::new(TableConfig { max_versions: 2, max_region_rows: 2048 });
    let xml = "x".repeat(2048);
    for i in 0..n {
        let pid = format!("proc-{i:07}");
        t.put(&format!("doc/{pid}/000000"), "doc", "xml", xml.clone());
        t.put(
            &format!("meta/{pid}"),
            "meta",
            "status",
            if i % 4 == 0 { "running" } else { "complete" },
        );
    }
    t
}

fn bench_docpool(c: &mut Criterion) {
    let n = 10_000usize;
    let table = loaded_table(n);

    let mut g = c.benchmark_group("docpool");
    g.sample_size(20);

    g.bench_function("put_2k_doc", |b| {
        let xml = "y".repeat(2048);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            table.put(&format!("bench/{i:09}"), "doc", "xml", xml.clone())
        })
    });

    g.bench_function("random_get", |b| {
        let mut x = 88172645463325252u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pid = format!("proc-{:07}", (x as usize) % n);
            table.get(&format!("meta/{pid}"), "meta", "status")
        })
    });

    g.bench_function("prefix_scan", |b| {
        let mut x = 1181783497276652981u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pid = format!("proc-{:07}", (x as usize) % n);
            table.scan_prefix(&format!("doc/{pid}/"))
        })
    });

    for threads in [1usize, 4] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("mapreduce_status_count", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    map_reduce(
                        &table,
                        threads,
                        |key, row| {
                            if !key.starts_with("meta/") {
                                return vec![];
                            }
                            match row.get_str("meta", "status") {
                                Some(s) => vec![(s, 1usize)],
                                None => vec![],
                            }
                        },
                        |_, vs| vs.len(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_docpool);
criterion_main!(benches);
