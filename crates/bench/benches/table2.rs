//! Criterion bench for Table 2 (advanced model): AEA seal-to-TFC (β), TFC
//! receive (α_TFC) and TFC finalize (γ), plus the full Fig. 9B trace.

use criterion::{criterion_group, criterion_main, Criterion};
use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use std::sync::Arc;

fn bench_table2(c: &mut Criterion) {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(true);
    let pol = fig9::policy(&def, true);
    let initial =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "bench2").unwrap().to_xml_string();
    let aea_a = Aea::new(creds.iter().find(|c| c.name == "p_a").unwrap().clone(), dir.clone());
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let tfc = TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1));

    let mut g = c.benchmark_group("table2");
    g.sample_size(20);

    let received = aea_a.receive(&initial, "A").unwrap();
    g.bench_function("beta_seal_to_tfc", |b| {
        b.iter(|| {
            aea_a
                .complete_via_tfc(&received, &[("attachment".into(), "contract.pdf".into())])
                .unwrap()
        })
    });

    let inter = aea_a
        .complete_via_tfc(&received, &[("attachment".into(), "contract.pdf".into())])
        .unwrap()
        .document
        .to_xml_string();
    g.bench_function("alpha_tfc_receive", |b| b.iter(|| tfc.receive(&inter).unwrap()));

    let tfc_received = tfc.receive(&inter).unwrap();
    g.bench_function("gamma_tfc_finalize", |b| b.iter(|| tfc.finalize(&tfc_received).unwrap()));

    g.bench_function("full_trace_advanced", |b| b.iter(|| fig9::run_fig9_trace(true)));
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
