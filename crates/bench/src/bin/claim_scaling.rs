//! Claim C1 (§4.1): "The size of the DRA4WfMS and the time for decrypting
//! and verifying signatures were proportional to the numbers of CERs and
//! signatures in the documents. However, only a constant time was needed to
//! encrypt and embed signatures."
//!
//! Sweep chain workflows of length 1…64 and print α, β, Σ per step count —
//! over the paper's baseline (every hop re-verifies the whole cascade, one
//! signature at a time), over the batched verifier (one aggregate equation
//! per hop), and over the sealed hand-off pipeline (each hop re-checks only
//! the one new CER).
//!
//! Wall-clock numbers go to stdout only. `BENCH_scaling.json` instead
//! records *deterministic* cost counters — elliptic-curve group operations
//! and canonicalization allocation bytes over a seeded synthetic workload —
//! so the file is byte-identical across runs and machines and can sit
//! behind the perf gate (`perf/BENCH_scaling.baseline.json`). The live
//! chain run cannot serve that purpose: ephemeral encryption keys and CER
//! timestamps randomize the scalars, which changes the MSM digit patterns
//! and therefore the op counts.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_scaling`
//!
//! Pass `--batch` to add the batched-verification cells (`batch_ec_ops`)
//! to the JSON — the mode CI double-runs and byte-compares. Pass
//! `--trace-out PATH` to additionally record the sealed-hand-off sweep as
//! a structured span trace (JSONL; `PATH.chrome.json` gets the Chrome
//! format) in deterministic logical time.

use dra_bench::chain::{
    receive_alpha_best_of, run_chain, run_chain_incremental, run_chain_incremental_traced,
    run_chain_with,
};
use dra_crypto::ed25519::{ec_ops, ec_ops_reset};
use dra_crypto::{verify_batch, BatchEntry, Keypair};
use dra_obs::{events_to_chrome, events_to_jsonl, Tracer};
use dra_xml::{canon_alloc_bytes, canon_alloc_reset, CanonArena, Element};

/// Chain lengths for the deterministic counter cells.
const CELLS: [usize; 8] = [1, 2, 4, 8, 16, 32, 48, 64];

/// Deterministic keypair `i` of cell `n` — fixed seeds, so the signatures
/// (RFC 8032 signing is deterministic) and every derived scalar are
/// identical on every run.
fn seeded_keypair(n: usize, i: usize) -> Keypair {
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(b"scaling!");
    seed[8..16].copy_from_slice(&(n as u64).to_le_bytes());
    seed[16..24].copy_from_slice(&(i as u64).to_le_bytes());
    Keypair::from_seed(seed)
}

/// Synthetic stand-in for an `n`-CER cascade prefix: fixed contents, so
/// canonical byte counts are exactly reproducible.
fn synthetic_parts(n: usize) -> Vec<Element> {
    (0..=n)
        .map(|i| {
            Element::new("cer")
                .attr("activity", format!("S{i}"))
                .child(Element::new("payload").text(format!("value-{i:04}")))
                .child(Element::new("signature").text("ab".repeat(64)))
        })
        .collect()
}

/// One deterministic measurement cell.
struct Cell {
    n: usize,
    sigs: usize,
    /// EC group ops to verify the cell's signatures one at a time.
    seq_ec_ops: u64,
    /// EC group ops for the same set through one batch equation (`--batch`).
    batch_ec_ops: Option<u64>,
    /// Canonicalization bytes allocated by the plain (fresh-`Vec`) path.
    canon_bytes: u64,
    /// Canonicalization bytes allocated by a warmed arena (expected 0).
    arena_steady_alloc: u64,
}

fn measure_cell(n: usize, batch: bool) -> Cell {
    // n CER signatures + the designer's definition signature
    let sigs = n + 1;
    let keys: Vec<Keypair> = (0..sigs).map(|i| seeded_keypair(n, i)).collect();
    let msgs: Vec<Vec<u8>> = (0..sigs)
        .map(|i| format!("dra4wfms scaling cell n={n} sig {i} ").repeat(4).into_bytes())
        .collect();
    let signatures: Vec<_> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();

    ec_ops_reset();
    for ((k, m), s) in keys.iter().zip(&msgs).zip(&signatures) {
        assert!(k.public.verify(m, s), "seeded signature must verify");
    }
    let seq_ec_ops = ec_ops();

    let batch_ec_ops = batch.then(|| {
        let entries: Vec<BatchEntry> = keys
            .iter()
            .zip(&msgs)
            .zip(&signatures)
            .map(|((k, m), s)| (m.as_slice(), *s, k.public))
            .collect();
        ec_ops_reset();
        assert!(verify_batch(&entries), "seeded batch must verify");
        ec_ops()
    });

    let parts = synthetic_parts(n);
    canon_alloc_reset();
    let cold = dra_xml::canon::canonicalize_all(&parts);
    let canon_bytes = canon_alloc_bytes();

    let mut arena = CanonArena::new();
    let warm = arena.canonicalize_all(&parts).to_vec();
    assert_eq!(cold, warm, "arena and allocating paths must agree");
    canon_alloc_reset();
    for _ in 0..3 {
        arena.canonicalize_all(&parts);
    }
    let arena_steady_alloc = canon_alloc_bytes();

    Cell { n, sigs, seq_ec_ops, batch_ec_ops, canon_bytes, arena_steady_alloc }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    let with_batch_cells = args.iter().any(|a| a == "--batch");

    println!("chain length sweep (element-wise encrypted payloads, 64-byte values)\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "step", "#sigs", "alpha(ms)", "batch-α(ms)", "inc-α(ms)", "beta(ms)", "size(B)"
    );
    let payload = "x".repeat(64);
    // one long chain gives every intermediate point of the sweep
    let records = run_chain(64, true, &payload);
    let batched = run_chain_with(64, true, &payload, true);
    let incremental = run_chain_incremental(64, true, &payload);
    for ((r, b), inc) in records
        .iter()
        .zip(batched.iter())
        .zip(incremental.iter())
        .filter(|((r, _), _)| r.step < 4 || (r.step + 1) % 8 == 0)
    {
        println!(
            "{:>6} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12}",
            r.step + 1,
            r.sigs_verified,
            r.alpha.as_secs_f64() * 1e3,
            b.alpha.as_secs_f64() * 1e3,
            inc.alpha.as_secs_f64() * 1e3,
            r.beta.as_secs_f64() * 1e3,
            r.size
        );
    }

    // linearity diagnostics. Σ is affine in the CER count (fixed definition
    // base + per-CER increment), so linearity is checked on the *marginal*
    // size per step, which must be constant.
    let a8 = records[7].alpha.as_secs_f64();
    let a64 = records[63].alpha.as_secs_f64();
    let b8 = records[7].beta.as_secs_f64();
    let b64 = records[63].beta.as_secs_f64();
    let i8_ = incremental[7].alpha.as_secs_f64();
    let i64_ = incremental[63].alpha.as_secs_f64();
    let bat64 = batched[63].alpha.as_secs_f64();
    let early_slope = (records[15].size - records[7].size) as f64 / 8.0;
    let late_slope = (records[63].size - records[55].size) as f64 / 8.0;
    println!("\nstep 8 → step 64 (8× more signatures to verify):");
    println!("  alpha grows {:.1}×      (claim: ∝ #signatures, expect ≈8×)", a64 / a8);
    println!(
        "  incremental alpha grows {:.1}×  (sealed hand-off: 1 new CER per hop, expect ≈1×)",
        i64_ / i8_
    );
    println!("  beta  grows {:.2}×     (claim: ~constant, expect ≈1×)", b64 / b8);
    println!(
        "  size slope early {:.0} B/CER vs late {:.0} B/CER, ratio {:.2} (claim: linear in #CERs, expect ≈1)",
        early_slope,
        late_slope,
        late_slope / early_slope
    );
    // one-shot per-hop α is at the mercy of scheduler jitter on a shared
    // box; the headline comparison re-receives the final hand-off and
    // takes the best of several reps for both modes
    let (seq_best, _) = receive_alpha_best_of(64, true, &payload, false, 5);
    let (bat_best, _) = receive_alpha_best_of(64, true, &payload, true, 5);
    println!("\nbatched verification at n=64:");
    println!(
        "  full α {:.3} ms sequential vs {:.3} ms batched — {:.1}× speedup (single hop)",
        a64 * 1e3,
        bat64 * 1e3,
        a64 / bat64
    );
    println!(
        "  full α {:.3} ms sequential vs {:.3} ms batched — {:.1}× speedup (best of 5)",
        seq_best.as_secs_f64() * 1e3,
        bat_best.as_secs_f64() * 1e3,
        seq_best.as_secs_f64() / bat_best.as_secs_f64()
    );
    println!(
        "  EC ops {} sequential vs {} batched — {:.1}× fewer group operations",
        records[63].ec_ops,
        batched[63].ec_ops,
        records[63].ec_ops as f64 / batched[63].ec_ops as f64
    );
    println!(
        "  incremental canonicalization alloc at step 64: {} B (warm prefix arena)",
        incremental[63].canon_alloc
    );

    // machine-readable, byte-deterministic cost cells for the perf gate:
    // the sequential EC-op column grows ∝ n while the batched column grows
    // with a much flatter slope, and the warm arena allocates nothing.
    let cells: Vec<Cell> = CELLS.iter().map(|&n| measure_cell(n, with_batch_cells)).collect();
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let batch_field =
            c.batch_ec_ops.map_or(String::new(), |b| format!(" \"batch_ec_ops\": {b},"));
        json.push_str(&format!(
            "  {{\"cell\": \"n={}\", \"sigs\": {}, \"seq_ec_ops\": {},{} \
             \"canon_bytes\": {}, \"arena_steady_alloc\": {}}}{}\n",
            c.n,
            c.sigs,
            c.seq_ec_ops,
            batch_field,
            c.canon_bytes,
            c.arena_steady_alloc,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => println!(
            "\nwrote BENCH_scaling.json ({} deterministic cells{})",
            cells.len(),
            if with_batch_cells { ", with batch cells" } else { "" }
        ),
        Err(e) => eprintln!("\ncould not write BENCH_scaling.json: {e}"),
    }
    let metrics = dra_obs::MetricsRegistry::new();
    metrics.incr("scaling.sweep_rows", records.len() as u64);
    metrics.incr("scaling.counter_cells", cells.len() as u64);

    if let Some(path) = trace_out {
        // deterministic logical-time trace of the sealed hand-off sweep:
        // same arguments → byte-identical files
        let tracer = Tracer::sequential();
        run_chain_incremental_traced(64, true, &payload, &tracer);
        let events = tracer.events();
        let chrome_path = format!("{path}.chrome.json");
        match std::fs::write(&path, events_to_jsonl(&events))
            .and_then(|()| std::fs::write(&chrome_path, events_to_chrome(&events)))
        {
            Ok(()) => println!("wrote {} events to {path} and {chrome_path}", events.len()),
            Err(e) => eprintln!("could not write trace: {e}"),
        }
        metrics.incr("scaling.trace_spans", events.len() as u64);
    }

    let slope_ratio = late_slope / early_slope;
    let batch_cell_64 = cells.last().expect("cells");
    let pass = a64 / a8 > 3.0
        && b64 / b8 < 2.5
        && (0.7..1.4).contains(&slope_ratio)
        && i64_ / i8_ < a64 / a8
        && bat_best < seq_best
        && batch_cell_64.arena_steady_alloc == 0;
    println!("\nC1 verdict: {}", if pass { "SHAPE REPRODUCED" } else { "SHAPE NOT REPRODUCED" });
    dra_bench::enforce_metric_invariants(&metrics);
}
