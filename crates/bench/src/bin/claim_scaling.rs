//! Claim C1 (§4.1): "The size of the DRA4WfMS and the time for decrypting
//! and verifying signatures were proportional to the numbers of CERs and
//! signatures in the documents. However, only a constant time was needed to
//! encrypt and embed signatures."
//!
//! Sweep chain workflows of length 1…64 and print α, β, Σ per step count —
//! once over the paper's baseline (every hop re-parses and re-verifies the
//! whole cascade, Σα = O(n²) signature checks) and once over the sealed
//! hand-off pipeline (each hop re-checks only the one new CER, Σα = O(n)).
//! Writes the sweep to `BENCH_scaling.json`.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_scaling`
//!
//! Pass `--trace-out PATH` to additionally record the sealed-hand-off
//! sweep as a structured span trace (JSONL, one event per line; see
//! `dra-obs`) in deterministic logical time. `PATH.chrome.json` gets the
//! same trace in Chrome-trace format for `chrome://tracing`.

use dra_bench::chain::{run_chain, run_chain_incremental, run_chain_incremental_traced};
use dra_obs::{events_to_chrome, events_to_jsonl, Tracer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    println!("chain length sweep (element-wise encrypted payloads, 64-byte values)\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "step", "#sigs", "alpha(ms)", "inc-α(ms)", "beta(ms)", "size(B)"
    );
    let payload = "x".repeat(64);
    // one long chain gives every intermediate point of the sweep
    let records = run_chain(64, true, &payload);
    let incremental = run_chain_incremental(64, true, &payload);
    for (r, inc) in
        records.iter().zip(incremental.iter()).filter(|(r, _)| r.step < 4 || (r.step + 1) % 8 == 0)
    {
        println!(
            "{:>6} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12}",
            r.step + 1,
            r.sigs_verified,
            r.alpha.as_secs_f64() * 1e3,
            inc.alpha.as_secs_f64() * 1e3,
            r.beta.as_secs_f64() * 1e3,
            r.size
        );
    }

    // linearity diagnostics. Σ is affine in the CER count (fixed definition
    // base + per-CER increment), so linearity is checked on the *marginal*
    // size per step, which must be constant.
    let a8 = records[7].alpha.as_secs_f64();
    let a64 = records[63].alpha.as_secs_f64();
    let b8 = records[7].beta.as_secs_f64();
    let b64 = records[63].beta.as_secs_f64();
    let i8_ = incremental[7].alpha.as_secs_f64();
    let i64_ = incremental[63].alpha.as_secs_f64();
    let early_slope = (records[15].size - records[7].size) as f64 / 8.0;
    let late_slope = (records[63].size - records[55].size) as f64 / 8.0;
    println!("\nstep 8 → step 64 (8× more signatures to verify):");
    println!("  alpha grows {:.1}×      (claim: ∝ #signatures, expect ≈8×)", a64 / a8);
    println!(
        "  incremental alpha grows {:.1}×  (sealed hand-off: 1 new CER per hop, expect ≈1×)",
        i64_ / i8_
    );
    println!("  beta  grows {:.2}×     (claim: ~constant, expect ≈1×)", b64 / b8);
    println!(
        "  size slope early {:.0} B/CER vs late {:.0} B/CER, ratio {:.2} (claim: linear in #CERs, expect ≈1)",
        early_slope,
        late_slope,
        late_slope / early_slope
    );

    // machine-readable sweep for plotting / regression tracking: the full-α
    // column grows with n while the incremental-α column stays flat.
    let mut json = String::from("[\n");
    for (i, (r, inc)) in records.iter().zip(incremental.iter()).enumerate() {
        json.push_str(&format!(
            "  {{\"n\": {}, \"sigs_full\": {}, \"sigs_incremental\": {}, \
             \"full_alpha_ms\": {:.4}, \"incremental_alpha_ms\": {:.4}, \
             \"beta_ms\": {:.4}, \"size_bytes\": {}}}{}\n",
            r.step + 1,
            r.sigs_verified,
            inc.sigs_verified,
            r.alpha.as_secs_f64() * 1e3,
            inc.alpha.as_secs_f64() * 1e3,
            r.beta.as_secs_f64() * 1e3,
            r.size,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scaling.json ({} rows)", records.len()),
        Err(e) => eprintln!("\ncould not write BENCH_scaling.json: {e}"),
    }
    let metrics = dra_obs::MetricsRegistry::new();
    metrics.incr("scaling.sweep_rows", records.len() as u64);

    if let Some(path) = trace_out {
        // deterministic logical-time trace of the sealed hand-off sweep:
        // same arguments → byte-identical files
        let tracer = Tracer::sequential();
        run_chain_incremental_traced(64, true, &payload, &tracer);
        let events = tracer.events();
        let chrome_path = format!("{path}.chrome.json");
        match std::fs::write(&path, events_to_jsonl(&events))
            .and_then(|()| std::fs::write(&chrome_path, events_to_chrome(&events)))
        {
            Ok(()) => println!("wrote {} events to {path} and {chrome_path}", events.len()),
            Err(e) => eprintln!("could not write trace: {e}"),
        }
        metrics.incr("scaling.trace_spans", events.len() as u64);
    }

    let slope_ratio = late_slope / early_slope;
    let pass = a64 / a8 > 3.0
        && b64 / b8 < 2.5
        && (0.7..1.4).contains(&slope_ratio)
        && i64_ / i8_ < a64 / a8;
    println!("\nC1 verdict: {}", if pass { "SHAPE REPRODUCED" } else { "SHAPE NOT REPRODUCED" });
    dra_bench::enforce_metric_invariants(&metrics);
}
