//! Regenerate **Table 2** of the paper: per-step execution times and
//! document sizes of the Fig. 9B workflow (the same process routed through
//! the TFC server — the advanced operational model).
//!
//! Run with: `cargo run --release -p dra-bench --bin table2 [runs]`

use dra_bench::fig9::run_fig9_trace;
use dra_bench::table::{average_traces, render_table2};
use std::time::Duration;

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    eprintln!("warm-up…");
    let _ = run_fig9_trace(true);
    eprintln!("measuring {runs} run(s)…");
    let traces: Vec<_> = (0..runs).map(|_| run_fig9_trace(true)).collect();
    let avg = average_traces(&traces);

    println!("{}", render_table2(&avg));

    // Paper reference rows (Table 2): 19 document rows, sizes 7119→47406 B,
    // α 0.0021→0.0431 s, β ≈ 0.008–0.014 s, γ ≈ 0.0080–0.0123 s.
    println!("paper-reported envelope (2012 testbed): sizes 7,119 → 47,406 bytes over 19");
    println!("documents; alpha grows 0.0021 → 0.0431 s; beta and gamma stay ~constant");
    println!("(0.008–0.016 s). Key claim: 'the TFC was not the bottleneck'.");

    // shape checks
    let gammas: Vec<f64> =
        avg[1..].iter().filter_map(|r| r.gamma.map(|d| d.as_secs_f64())).collect();
    let gamma_spread = gammas.iter().cloned().fold(f64::MIN, f64::max)
        / gammas.iter().cloned().fold(f64::MAX, f64::min);
    let aea_total: Duration = avg[1..].iter().map(|r| r.alpha_aea + r.beta).sum();
    let tfc_total: Duration = avg[1..]
        .iter()
        .map(|r| r.alpha_tfc.unwrap_or_default() + r.gamma.unwrap_or_default())
        .sum();
    println!("\nshape checks:");
    println!("  gamma max/min spread: {gamma_spread:.2}× (TFC work ~constant per step)");
    println!(
        "  total AEA time {:.4}s vs total TFC time {:.4}s — TFC/AEA = {:.2} (paper: 'very similar total processing times', and the TFC holds no participant session ⇒ not the bottleneck)",
        aea_total.as_secs_f64(),
        tfc_total.as_secs_f64(),
        tfc_total.as_secs_f64() / aea_total.as_secs_f64()
    );
    println!(
        "  advanced final size {} B vs basic final size {} B (paper: 22,910 vs 47,406)",
        avg.last().unwrap().size,
        dra_bench::fig9::run_fig9_trace(false).last().unwrap().size
    );
}
