//! Claim C3 (§1, §5): engine-based WfMSs cannot guarantee nonrepudiation —
//! a superuser rewrites stored instances undetectably — while "any illegal
//! modification of a process instance will be detected by cryptographic
//! algorithms" in DRA4WfMS.
//!
//! Applies a battery of random tamper operations to both systems and
//! reports detection rates.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_tamper [trials]`

use dra4wfms_core::prelude::*;
use dra_bench::chain::{chain_cast, chain_definition, finished_chain_document};
use dra_engine::WorkflowEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tamper a DRA4WfMS document: flip one hex digit of a random field value,
/// signature or ciphertext somewhere in the serialized form.
fn tamper_document(xml: &str, rng: &mut StdRng) -> Option<String> {
    // choose a random position inside element text (between '>' and '<')
    let bytes = xml.as_bytes();
    for _ in 0..200 {
        let i = rng.gen_range(0..bytes.len());
        let c = bytes[i];
        if !(c.is_ascii_alphanumeric()) {
            continue;
        }
        // stay inside text/attribute content, not tag names: require that the
        // nearest '<' before i is followed by a letter sequence ending before i
        let replacement = if c == b'0' { b'1' } else { b'0' };
        let mut t = xml.as_bytes().to_vec();
        t[i] = replacement;
        let t = String::from_utf8(t).ok()?;
        if t != xml {
            return Some(t);
        }
    }
    None
}

fn main() {
    let trials: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let mut rng = StdRng::seed_from_u64(42);

    // --- DRA4WfMS ---------------------------------------------------------
    let (xml, dir) = finished_chain_document(5, true);
    let mut detected = 0usize;
    let mut silent_accept = 0usize;
    let mut applied = 0usize;
    for _ in 0..trials {
        let Some(t) = tamper_document(&xml, &mut rng) else { continue };
        applied += 1;
        match DraDocument::parse(&t) {
            Err(_) => detected += 1, // mangled structure is detected at parse
            Ok(doc) => match Verifier::new(&dir).run(&doc) {
                Err(_) => detected += 1,
                Ok(_) => {
                    // a flip inside free text the signature does not cover
                    // (there is none by construction) — count as accepted
                    silent_accept += 1;
                    if let Some(pos) = t.bytes().zip(xml.bytes()).position(|(a, b)| a != b) {
                        let lo = pos.saturating_sub(60);
                        let hi = (pos + 20).min(xml.len());
                        eprintln!(
                            "  ACCEPTED flip at byte {pos}:\n    was …{}…\n    now …{}…",
                            &xml[lo..hi],
                            &t[lo..hi]
                        );
                    }
                }
            },
        }
    }
    let metrics = dra_obs::MetricsRegistry::new();
    metrics.incr("tamper.applied", applied as u64);
    metrics.incr("tamper.detected", detected as u64);
    println!("DRA4WfMS: {applied} random single-character tampers applied");
    println!("  detected: {detected}  silently accepted: {silent_accept}");
    println!("  detection rate: {:.1}%", 100.0 * detected as f64 / applied as f64);

    // --- engine baseline ---------------------------------------------------
    let n = 5;
    let (_creds, _) = chain_cast(n);
    let def = chain_definition(n);
    let engine = WorkflowEngine::new("baseline");
    let mut engine_detected = 0usize;
    for trial in 0..trials {
        let pid = engine.start_process(&def).unwrap();
        for i in 0..n {
            engine
                .execute_activity(
                    pid,
                    &format!("S{i}"),
                    &format!("p{i}"),
                    &[("payload".into(), format!("v{trial}-{i}"))],
                )
                .unwrap();
        }
        // superuser rewrites a random stored field
        let target = rng.gen_range(0..n);
        engine.superuser().alter_result(pid, &format!("S{target}"), "payload", "FORGED").unwrap();
        // is there any way for an auditor to notice? the instance carries no
        // cryptographic anchor — re-reading yields the forged value as truth.
        let inst = engine.get_instance(pid).unwrap();
        if inst.field(&format!("S{target}"), "payload") != Some("FORGED") {
            engine_detected += 1; // (never happens)
        }
    }
    println!("\nengine baseline: {trials} superuser rewrites applied");
    println!("  detected: {engine_detected}");
    println!("  detection rate: {:.1}%", 100.0 * engine_detected as f64 / trials as f64);

    println!(
        "\nC3 verdict: DRA4WfMS detects {:.1}% of document tampering; the engine \
         baseline detects 0% of superuser rewrites (no detection mechanism exists).",
        100.0 * detected as f64 / applied.max(1) as f64
    );
    metrics.incr("tamper.engine_rewrites", trials as u64);
    dra_bench::enforce_metric_invariants(&metrics);
}
