//! Claim C6 (§1): "the engine-based system readily suffers from a
//! denial-of-service attack because the workflow engine always has a fixed
//! location (or domain name) … overloading the physical resources."
//!
//! An architectural simulation (the paper gives no numbers): legitimate
//! work arrives at rate λ, attack traffic at rate α targeting *one*
//! endpoint. The engine-based deployment has exactly one endpoint per
//! process instance (the owning engine); DRA4WfMS has `n` interchangeable
//! stateless portals plus AEAs at the participants' own machines, so the
//! attacker saturates one portal and goodput flows through the rest.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_dos [portals]`

fn main() {
    let portals: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let metrics = dra_obs::MetricsRegistry::new();
    metrics.incr("dos.portals", portals as u64);

    // simple capacity model: each server processes CAP requests per tick,
    // FIFO, attacker requests are indistinguishable until processed.
    const CAP: f64 = 1000.0; // requests/tick per server
    let legit = 800.0; // legitimate requests/tick, deployment-wide

    println!("capacity model: {CAP} req/tick per server, {legit} legit req/tick total\n");
    println!(
        "{:>12} {:>22} {:>22}",
        "attack rate",
        "engine goodput",
        format!("DRA goodput ({portals} portals)"),
    );
    for attack in [0.0f64, 500.0, 1000.0, 2000.0, 4000.0, 8000.0] {
        metrics.incr("dos.attack_rates_swept", 1);
        // Engine: the process's owning engine is a single fixed endpoint.
        // All legit + all attack traffic hits it; goodput = CAP scaled by
        // the legitimate fraction of arrivals (FIFO sharing).
        let engine_arrivals = legit + attack;
        let engine_goodput =
            if engine_arrivals <= CAP { legit } else { CAP * legit / engine_arrivals };

        // DRA4WfMS: the attacker targets one portal (they are
        // interchangeable; saturating all of them requires n× the traffic).
        // Legit traffic load-balances over the remaining healthy portals.
        let per_portal_legit = legit / portals as f64;
        let attacked_arrivals = per_portal_legit + attack;
        let attacked_goodput = if attacked_arrivals <= CAP {
            per_portal_legit
        } else {
            CAP * per_portal_legit / attacked_arrivals
        };
        let healthy_goodput: f64 = (portals - 1) as f64 * per_portal_legit.min(CAP);
        let dra_goodput = attacked_goodput + healthy_goodput;

        println!(
            "{:>12.0} {:>18.0} ({:>3.0}%) {:>16.0} ({:>3.0}%)",
            attack,
            engine_goodput,
            100.0 * engine_goodput / legit,
            dra_goodput,
            100.0 * dra_goodput / legit
        );
    }

    println!();
    println!("C6 verdict: with the attack at 10× capacity, the fixed-endpoint engine");
    println!(
        "retains ~{:.0}% goodput while the portal deployment retains ~{:.0}%+ —",
        100.0 * (CAP * legit / (legit + 8000.0)) / legit,
        100.0 * ((portals - 1) as f64 / portals as f64)
    );
    println!("the engine-based WfMS is a single fixed target, the document-routing");
    println!("deployment degrades by at most one portal's share. (Architectural model,");
    println!("no absolute numbers claimed — matching the paper's qualitative argument.)");
    dra_bench::enforce_metric_invariants(&metrics);
}
