//! Claim C9: the observability layer is *checkable and cheap* — every
//! Fig. 9 run (basic and advanced model, lossless and hostile channels,
//! with and without injected crashes) produces a span trace that the
//! document-anchored differential oracle (`dra4wfms_core::reconcile`)
//! accepts, the end-of-run metrics satisfy the cross-layer accounting
//! invariants, and instrumenting the hot path costs ≤ 5% wall-clock on the
//! C1 chain workload.
//!
//! The trace is stamped in virtual time, so for a fixed seed the exported
//! `BENCH_obs_trace.jsonl` / `BENCH_obs_trace.chrome.json` are
//! byte-identical across re-runs — CI executes the bin twice and diffs
//! them. `BENCH_obs.json` carries the sweep (deterministic fields) plus
//! the wall-clock overhead measurement (machine-dependent, not diffed).
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_obs [seeds…]`

use dra4wfms_core::prelude::*;
use dra4wfms_core::reconcile::reconcile;
use dra_bench::chain::run_chain_incremental_traced;
use dra_bench::fig9;
use dra_cloud::{
    check_metric_invariants, tracer_for, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, InstanceRun, NetworkSim,
};
use dra_obs::{events_to_chrome, events_to_jsonl, MetricsRegistry, Tracer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct Cell {
    mode: &'static str,
    channel: &'static str,
    crash: bool,
    seed: u64,
    steps: usize,
    events: usize,
    hops_matched: usize,
    crashed_attempts: usize,
    crashes_injected: u64,
    reconciled: bool,
    invariants: Result<(), String>,
}

/// Drive one fully instrumented Fig. 9 instance and reconcile its trace
/// against the final document. Returns the cell plus the recorded events
/// (the canonical cell's events become the exported trace files).
fn run_cell(
    mode: &'static str,
    advanced: bool,
    channel: &'static str,
    hostile: bool,
    crash: bool,
    seed: u64,
) -> (Cell, Vec<dra_obs::TraceEvent>) {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(advanced);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = MetricsRegistry::new();

    // a single-crash schedule that always fires: the nth AEA signing visit,
    // n drawn from the seed within the 9 hops of one Fig. 9 instance
    let plan = if crash {
        CrashPlan::once(CrashPoint::AeaBeforeSign, 1 + seed % 9)
    } else {
        CrashPlan::none()
    };
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
        .with_crash_plan(Arc::clone(&plan))
        .with_tracer(tracer.clone());
    let delivery = if hostile {
        Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            seed,
        )
        .expect("valid profile")
    } else {
        Delivery::lossless(Arc::clone(&network))
    }
    .with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone())
                .with_crash_hook(plan.hook())
                .with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let tfc = advanced.then(|| {
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").expect("TFC creds").clone();
        TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1_700_000_000_000))
            .with_crash_hook(plan.hook())
            .with_tracer(tracer.clone())
    });
    let policy = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };

    let initial = DraDocument::new_initial_with_pid(
        &def, &policy, &creds[0],
        // seed-independent pid: the trace must vary only through the
        // fault/crash schedule, never through the document bytes
        "obs-fig9",
    )
    .expect("initial");
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .network(&delivery)
        .tracer(tracer.clone())
        .metrics(&metrics);
    if let Some(server) = tfc.as_ref() {
        run = run.tfc(server);
    }
    let out = run.run().expect("instrumented run completes");
    Verifier::new(&dir).run(out.document.document()).expect("final document verifies");

    let events = tracer.events();
    let report = reconcile(&events, out.document.document());
    let invariants = check_metric_invariants(&metrics.snapshot());
    let cell = Cell {
        mode,
        channel,
        crash,
        seed,
        steps: out.steps,
        events: events.len(),
        hops_matched: report.as_ref().map(|r| r.hops_matched).unwrap_or(0),
        crashed_attempts: report.as_ref().map(|r| r.crashed_attempts).unwrap_or(0),
        crashes_injected: plan.crashes_injected(),
        reconciled: report.is_ok(),
        invariants,
    };
    if let Err(e) = &report {
        eprintln!("  reconcile FAILED [{mode}/{channel}/crash={crash}/seed={seed}]: {e}");
    }
    (cell, events)
}

/// Best-of-`reps` wall-clock of the sealed chain workload, instrumented or
/// not. Chains run on no network, so the traced variant uses logical time.
fn chain_secs(n: usize, reps: usize, traced: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let tracer = if traced { Tracer::sequential() } else { Tracer::disabled() };
        let t0 = Instant::now();
        let records = run_chain_incremental_traced(n, true, "x", &tracer);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(records.len(), n);
        best = best.min(dt);
    }
    best
}

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args().skip(1).filter_map(|s| s.parse().ok()).collect();
        if args.is_empty() {
            vec![1, 7, 42]
        } else {
            args
        }
    };

    println!("observability matrix: 1 Fig. 9 instance per cell, seeds {seeds:?}\n");
    println!(
        "{:>6} {:>9} {:>6} {:>5} {:>6} {:>7} {:>5} {:>8} {:>10} {:>10}",
        "mode",
        "channel",
        "crash",
        "seed",
        "steps",
        "events",
        "hops",
        "crashed",
        "reconcile",
        "invariants"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut canonical_events: Option<Vec<dra_obs::TraceEvent>> = None;
    for (mode, advanced) in [("basic", false), ("tfc", true)] {
        for (channel, hostile) in [("lossless", false), ("hostile", true)] {
            for crash in [false, true] {
                for &seed in &seeds {
                    let (cell, events) = run_cell(mode, advanced, channel, hostile, crash, seed);
                    // canonical trace: first advanced-model lossless
                    // crash-free cell — the richest fault-free timeline
                    if canonical_events.is_none() && advanced && !hostile && !crash {
                        canonical_events = Some(events);
                    }
                    println!(
                        "{:>6} {:>9} {:>6} {:>5} {:>6} {:>7} {:>5} {:>8} {:>10} {:>10}",
                        cell.mode,
                        cell.channel,
                        cell.crash,
                        cell.seed,
                        cell.steps,
                        cell.events,
                        cell.hops_matched,
                        cell.crashed_attempts,
                        if cell.reconciled { "ok" } else { "FAILED" },
                        if cell.invariants.is_ok() { "ok" } else { "VIOLATED" },
                    );
                    if let Err(e) = &cell.invariants {
                        eprintln!("  invariant violated: {e}");
                    }
                    cells.push(cell);
                }
            }
        }
    }

    // instrumentation overhead on the C1 chain workload (wall clock,
    // best-of-5 — the only machine-dependent numbers in this bin)
    const CHAIN_N: usize = 48;
    const REPS: usize = 5;
    let plain = chain_secs(CHAIN_N, REPS, false);
    let traced = chain_secs(CHAIN_N, REPS, true);
    let overhead_pct = (traced - plain) / plain * 100.0;
    println!(
        "\nchain({CHAIN_N}) best-of-{REPS}: plain {:.1} ms, traced {:.1} ms, overhead {:+.2}%",
        plain * 1e3,
        traced * 1e3,
        overhead_pct
    );

    // deterministic trace exports: CI runs this bin twice and byte-compares
    let events = canonical_events.expect("canonical cell ran");
    let jsonl_ok = std::fs::write("BENCH_obs_trace.jsonl", events_to_jsonl(&events))
        .and_then(|()| std::fs::write("BENCH_obs_trace.chrome.json", events_to_chrome(&events)));
    match jsonl_ok {
        Ok(()) => println!(
            "wrote BENCH_obs_trace.jsonl + BENCH_obs_trace.chrome.json ({} events)",
            events.len()
        ),
        Err(e) => eprintln!("could not write trace files: {e}"),
    }

    let mut json = String::from("{\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"channel\": \"{}\", \"crash\": {}, \"seed\": {}, \
             \"steps\": {}, \"events\": {}, \"hops_matched\": {}, \"crashed_attempts\": {}, \
             \"crashes_injected\": {}, \"reconciled\": {}, \"invariants_ok\": {}}}{}\n",
            c.mode,
            c.channel,
            c.crash,
            c.seed,
            c.steps,
            c.events,
            c.hops_matched,
            c.crashed_attempts,
            c.crashes_injected,
            c.reconciled,
            c.invariants.is_ok(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"overhead\": {{\"chain_n\": {CHAIN_N}, \"reps\": {REPS}, \
         \"plain_ms\": {:.3}, \"traced_ms\": {:.3}, \"overhead_pct\": {:.3}}}\n}}\n",
        plain * 1e3,
        traced * 1e3,
        overhead_pct
    ));
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json ({} cells)", cells.len()),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }

    let all_reconciled = cells.iter().all(|c| c.reconciled);
    let all_invariants = cells.iter().all(|c| c.invariants.is_ok());
    let crashes_fired = cells.iter().filter(|c| c.crash).all(|c| c.crashes_injected == 1);
    let all_complete = cells.iter().all(|c| c.steps == 9);
    let overhead_ok = overhead_pct <= 5.0;
    println!("\nall cells reconciled against the signed document: {all_reconciled}");
    println!("metric invariants hold in every cell: {all_invariants}");
    println!("every crash cell injected exactly one crash: {crashes_fired}");
    println!("instrumentation overhead ≤ 5%: {overhead_ok} ({overhead_pct:+.2}%)");

    let pass = all_reconciled && all_invariants && crashes_fired && all_complete && overhead_ok;
    println!("\nC9 verdict: {}", if pass { "OBSERVABILITY RECONCILED" } else { "NOT REPRODUCED" });
    if !pass {
        std::process::exit(1);
    }
}
