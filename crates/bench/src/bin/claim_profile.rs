//! Claim C10: per-stage latency attribution is *deterministic and
//! gateable* — sweeping the Fig. 9 workflow over basic/tfc × lossless/
//! hostile cells under a live `HealthMonitor` yields byte-identical
//! `BENCH_profile.json` / `BENCH_alerts.jsonl` for a fixed seed, the
//! lossless cells raise zero alerts, and the profile numbers feed the CI
//! `perf-gate` job (see the `perf_gate` bin and `perf/`).
//!
//! Everything written here is virtual-time integer arithmetic — no wall
//! clock — so CI runs the bin twice and `cmp`s both outputs, then holds
//! the fresh profile against `perf/BENCH_profile.baseline.json` with the
//! tolerances in `perf/perf_tolerances.json`.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_profile [seed]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{
    alerts_to_jsonl, check_metric_invariants, tracer_for, Alert, CloudSystem, Delivery,
    DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
};
use dra_obs::{LatencyProfile, MetricsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct CellResult {
    cell: String,
    steps: usize,
    events: usize,
    profile: LatencyProfile,
    alerts: Vec<Alert>,
    invariants: Result<(), String>,
}

/// One fully instrumented, monitored Fig. 9 instance; returns the cell's
/// latency profile plus the alert stream it produced.
fn run_cell(mode: &str, advanced: bool, channel: &str, hostile: bool, seed: u64) -> CellResult {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(advanced);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = MetricsRegistry::new();
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network)).with_tracer(tracer.clone());
    let delivery = if hostile {
        Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            seed,
        )
        .expect("valid profile")
    } else {
        Delivery::lossless(Arc::clone(&network))
    }
    .with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone()).with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let tfc = advanced.then(|| {
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").expect("TFC creds").clone();
        TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1_700_000_000_000))
            .with_tracer(tracer.clone())
    });
    let policy = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };

    // per-cell pid: the alert stream names the cell it came from
    let pid = format!("profile-{mode}-{channel}");
    let initial =
        DraDocument::new_initial_with_pid(&def, &policy, &creds[0], &pid).expect("initial");
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(100)
        .network(&delivery)
        .tracer(tracer.clone())
        .metrics(&metrics)
        .monitor(&monitor)
        // a 25 ms end-to-end SLO: comfortable on a lossless channel,
        // deterministically blown by the hostile one (backoff is charged
        // in virtual time) — so the sweep demonstrates SloBreach too
        .slo_us(25_000);
    if let Some(server) = tfc.as_ref() {
        run = run.tfc(server);
    }
    let out = run.run().expect("instrumented run completes");
    Verifier::new(&dir).run(out.document.document()).expect("final document verifies");

    let events = tracer.events();
    CellResult {
        cell: format!("{mode}/{channel}"),
        steps: out.steps,
        events: events.len(),
        profile: LatencyProfile::from_events(&events),
        alerts: monitor.alerts(),
        invariants: check_metric_invariants(&metrics.snapshot()),
    }
}

fn main() {
    let seed: u64 = std::env::args().skip(1).find_map(|s| s.parse().ok()).unwrap_or(7);

    println!("latency-attribution sweep: 1 monitored Fig. 9 instance per cell, seed {seed}\n");

    let mut cells: Vec<CellResult> = Vec::new();
    for (mode, advanced) in [("basic", false), ("tfc", true)] {
        for (channel, hostile) in [("lossless", false), ("hostile", true)] {
            let cell = run_cell(mode, advanced, channel, hostile, seed);
            println!(
                "{:>14}: {} steps, {} spans, {} alert(s), invariants {}",
                cell.cell,
                cell.steps,
                cell.events,
                cell.alerts.len(),
                if cell.invariants.is_ok() { "ok" } else { "VIOLATED" }
            );
            if let Err(e) = &cell.invariants {
                eprintln!("  invariant violated: {e}");
            }
            println!("  hottest stages by self time:");
            for s in cell.profile.top_k(3) {
                println!(
                    "    {:<14} self {:>8} µs  (count {}, p95 {} µs)",
                    s.stage, s.self_us, s.count, s.p95_us
                );
            }
            cells.push(cell);
        }
    }

    // deterministic profile JSON: one cell header / one stage per line,
    // fixed key order — the exact shape `perf_gate` parses back
    let mut json = format!("{{\n\"claim\": \"C10\",\n\"seed\": {seed},\n\"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "{{\"cell\": \"{}\", \"steps\": {}, \"spans\": {}, \"alerts\": {}, \"stages\": [\n",
            c.cell,
            c.steps,
            c.events,
            c.alerts.len()
        ));
        for (j, s) in c.profile.stages.iter().enumerate() {
            json.push_str(&format!(
                "{{\"stage\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}, \
                 \"child_us\": {}, \"max_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}}}{}\n",
                s.stage,
                s.count,
                s.total_us,
                s.self_us,
                s.child_us,
                s.max_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                if j + 1 == c.profile.stages.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!("]}}{}\n", if i + 1 == cells.len() { "" } else { "," }));
    }
    json.push_str("]\n}\n");
    match std::fs::write("BENCH_profile.json", &json) {
        Ok(()) => println!("\nwrote BENCH_profile.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_profile.json: {e}"),
    }

    // the concatenated alert streams, byte-deterministic like the traces
    let all_alerts: Vec<Alert> = cells.iter().flat_map(|c| c.alerts.clone()).collect();
    match std::fs::write("BENCH_alerts.jsonl", alerts_to_jsonl(&all_alerts)) {
        Ok(()) => println!("wrote BENCH_alerts.jsonl ({} alerts)", all_alerts.len()),
        Err(e) => eprintln!("could not write BENCH_alerts.jsonl: {e}"),
    }

    // verdict: every cell completes and balances its books, lossless cells
    // are silent, and the attribution accounts for every span
    let all_complete = cells.iter().all(|c| c.steps == 9);
    let all_invariants = cells.iter().all(|c| c.invariants.is_ok());
    let lossless_silent =
        cells.iter().filter(|c| c.cell.ends_with("lossless")).all(|c| c.alerts.is_empty());
    let attribution_balanced = cells.iter().all(|c| {
        let total: u64 = c.profile.stages.iter().map(|s| s.total_us).sum();
        c.profile.total_self_us() <= total
    });
    println!("\nall cells completed 9 steps: {all_complete}");
    println!("metric invariants hold in every cell: {all_invariants}");
    println!("lossless cells raised zero alerts: {lossless_silent}");
    println!("self-time attribution bounded by totals: {attribution_balanced}");

    let pass = all_complete && all_invariants && lossless_silent && attribution_balanced;
    println!(
        "\nC10 verdict: {}",
        if pass { "LATENCY ATTRIBUTION REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !pass {
        std::process::exit(1);
    }
}
