//! Claim C8: crash-fault recovery — under every single-crash schedule at
//! every injection point (AEA after-verify / before-sign / after-sign, TFC
//! between timestamp and re-encrypt, portal between seen-row and document
//! row), every Fig. 9 instance still completes and the final document pool
//! is **byte-identical** to the crash-free run: no CER lost, none appended
//! twice, no double timestamp.
//!
//! The machinery under test: the portals' write-ahead journal (replayed on
//! restart), the TFC redo log (re-emits the same timestamped document), the
//! runner's lease-based hop takeover (re-dispatches from the pool copy) and
//! deterministic signing + sealing (the re-executed hop is byte-identical,
//! so the wire-digest idempotency suppresses any copy the dead agent did
//! land).
//!
//! The sweep is fully deterministic (virtual time only, seeded crash
//! schedules) and writes `BENCH_crash.json` — running the bin twice must
//! produce byte-identical JSON, which CI checks.
//!
//! Every cell runs under a live [`HealthMonitor`]: stalls caused by a
//! crashed hop surface as `stuck_instance` alerts *during* the run, the
//! alert books are balanced against the runner's takeover counters by
//! `check_metric_invariants`, and the crash-free baselines must stay
//! alert-silent. Pass `--trace-out PATH` to export the span stream of the
//! first crashed tfc cell, `--alerts-out PATH` for the sweep's alert JSONL.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_crash [seeds…]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{
    alerts_to_jsonl, check_metric_invariants, tracer_for, Alert, CloudSystem, CrashPlan,
    CrashPoint, Delivery, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
};
use dra_obs::{events_to_jsonl, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const INSTANCES: usize = 4;
/// The scheduled crash visit is drawn from the seed in `[1, MAX_NTH]`;
/// every injection point is visited ≥ 36 times per cell, so the schedule
/// always fires exactly once.
const MAX_NTH: u64 = 12;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct Cell {
    mode: &'static str,
    point: String,
    seed: u64,
    nth: u64,
    completed: usize,
    crashes: u64,
    leases_expired: u64,
    journal_replays: u64,
    sends: u64,
    attempts: u64,
    duplicates_suppressed: u64,
    virtual_time_us: u64,
    pool_sha256: String,
    alerts: Vec<Alert>,
    invariants: Result<(), String>,
    events: Vec<TraceEvent>,
}

/// Run `INSTANCES` Fig. 9 instances on a fresh deployment under `plan`.
fn run_cell(mode: &'static str, advanced: bool, plan: Arc<CrashPlan>, seed: u64) -> Cell {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(advanced);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = dra_obs::MetricsRegistry::new();
    // one monitor watches the whole cell: per-pid state keeps the
    // instances separate, and the stuck/crash-loop alerts it raises are
    // reconciled against the runner's takeover counters below
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
        .with_crash_plan(Arc::clone(&plan))
        .with_tracer(tracer.clone());
    let delivery = Delivery::lossless(Arc::clone(&network)).with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone()).with_crash_hook(plan.hook());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    // fresh deterministic clock per cell: crash-free and crashed runs draw
    // the same timestamps (the redo log guarantees one draw per hop)
    let draws = Arc::new(AtomicU64::new(0));
    let tfc = advanced.then(|| {
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").expect("TFC creds").clone();
        let draws = Arc::clone(&draws);
        TfcServer::with_clock(
            tfc_creds,
            dir.clone(),
            Arc::new(move || 1_000 + draws.fetch_add(1, Ordering::Relaxed)),
        )
        .with_crash_hook(plan.hook())
    });
    let policy = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };

    let mut completed = 0usize;
    let mut leases_expired = 0u64;
    for i in 0..INSTANCES {
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &policy,
            &creds[0],
            // seed-independent pid: the stored bytes must depend only on
            // the workflow, never on the crash schedule
            &format!("crash-{i:02}"),
        )
        .expect("initial");
        let mut run = InstanceRun::new(&sys, &initial)
            .agents(&agents)
            .respond(&respond)
            .max_steps(100)
            .network(&delivery)
            .tracer(tracer.clone())
            .metrics(&metrics)
            .monitor(&monitor);
        if let Some(server) = tfc.as_ref() {
            run = run.tfc(server);
        }
        if let Ok(out) = run.run() {
            if out.steps == 9 {
                Verifier::new(&dir).run(&out.document).expect("final document verifies");
                completed += 1;
            }
            leases_expired += out.delivery.map(|s| s.leases_expired).unwrap_or(0);
        }
    }

    let stats = delivery.stats();
    let (point, nth) = match plan.scheduled() {
        Some((p, n)) => (p.site().to_string(), n),
        None => ("none".to_string(), 0),
    };
    Cell {
        mode,
        point,
        seed,
        nth,
        completed,
        crashes: plan.crashes_injected(),
        leases_expired,
        journal_replays: sys.journal_replays(),
        sends: stats.sends,
        attempts: stats.attempts,
        duplicates_suppressed: stats.duplicates_suppressed,
        virtual_time_us: stats.virtual_time_us,
        pool_sha256: sys.pool_digest(),
        alerts: monitor.alerts(),
        invariants: check_metric_invariants(&metrics.snapshot()),
        events: tracer.events(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    let alerts_out =
        args.iter().position(|a| a == "--alerts-out").and_then(|i| args.get(i + 1)).cloned();
    let seeds: Vec<u64> = {
        let nums: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
        if nums.is_empty() {
            vec![1, 7, 42]
        } else {
            nums
        }
    };

    println!("crash-matrix: {INSTANCES} Fig. 9 instances per cell, seeds {seeds:?}\n");
    println!(
        "{:>6} {:>28} {:>5} {:>4} {:>5} {:>7} {:>7} {:>8} {:>5} {:>6} {:>4} {:>9}",
        "mode",
        "point",
        "seed",
        "nth",
        "done",
        "crashes",
        "leases",
        "replays",
        "dups",
        "alerts",
        "inv",
        "baseline"
    );

    let mut cells = Vec::new();
    let mut all_ok = true;
    for (mode, advanced) in [("basic", false), ("tfc", true)] {
        // crash-free baseline fixes the byte-identity target for this mode
        let baseline = run_cell(mode, advanced, CrashPlan::none(), 0);
        let target = baseline.pool_sha256.clone();
        // crash-free baseline: the monitor must stay completely silent
        let baseline_ok = baseline.completed == INSTANCES
            && baseline.crashes == 0
            && baseline.alerts.is_empty()
            && baseline.invariants.is_ok();
        all_ok &= baseline_ok;
        println!(
            "{:>6} {:>28} {:>5} {:>4} {:>2}/{:<2} {:>7} {:>7} {:>8} {:>5} {:>6} {:>4} {:>9}",
            baseline.mode,
            baseline.point,
            "-",
            "-",
            baseline.completed,
            INSTANCES,
            baseline.crashes,
            baseline.leases_expired,
            baseline.journal_replays,
            baseline.duplicates_suppressed,
            baseline.alerts.len(),
            if baseline.invariants.is_ok() { "ok" } else { "BAD" },
            "(target)"
        );
        cells.push(baseline);

        let points: &[CrashPoint] = if advanced { &CrashPoint::ALL } else { &CrashPoint::BASIC };
        for &point in points {
            for &seed in &seeds {
                let cell = run_cell(mode, advanced, CrashPlan::seeded(point, seed, MAX_NTH), seed);
                let identical = cell.pool_sha256 == target;
                let ok = cell.completed == INSTANCES
                    && cell.crashes == 1
                    && identical
                    && cell.invariants.is_ok();
                all_ok &= ok;
                println!(
                    "{:>6} {:>28} {:>5} {:>4} {:>2}/{:<2} {:>7} {:>7} {:>8} {:>5} {:>6} {:>4} {:>9}",
                    cell.mode,
                    cell.point,
                    cell.seed,
                    cell.nth,
                    cell.completed,
                    INSTANCES,
                    cell.crashes,
                    cell.leases_expired,
                    cell.journal_replays,
                    cell.duplicates_suppressed,
                    cell.alerts.len(),
                    if cell.invariants.is_ok() { "ok" } else { "BAD" },
                    if identical { "identical" } else { "DIVERGED" }
                );
                if let Err(e) = &cell.invariants {
                    eprintln!("  invariant violated: {e}");
                }
                cells.push(cell);
            }
        }
    }

    // deterministic JSON: virtual-time accounting only, no wall clock —
    // re-running with the same seeds must reproduce these bytes exactly
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"mode\": \"{}\", \"point\": \"{}\", \"seed\": {}, \"nth\": {}, \
             \"instances\": {}, \"completed\": {}, \"crashes_injected\": {}, \
             \"leases_expired\": {}, \"journal_replays\": {}, \
             \"sends\": {}, \"attempts\": {}, \"duplicates_suppressed\": {}, \
             \"virtual_time_us\": {}, \"pool_sha256\": \"{}\", \
             \"alerts\": {}, \"invariants\": \"{}\"}}{}\n",
            c.mode,
            c.point,
            c.seed,
            c.nth,
            INSTANCES,
            c.completed,
            c.crashes,
            c.leases_expired,
            c.journal_replays,
            c.sends,
            c.attempts,
            c.duplicates_suppressed,
            c.virtual_time_us,
            c.pool_sha256,
            c.alerts.len(),
            if c.invariants.is_ok() { "ok" } else { "violated" },
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_crash.json", &json) {
        Ok(()) => println!("\nwrote BENCH_crash.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_crash.json: {e}"),
    }

    // optional exports: span stream of the first crashed tfc cell (the
    // richest trace: crash + takeover + TFC redo), and the sweep's alerts
    if let Some(path) = &trace_out {
        let canonical =
            cells.iter().find(|c| c.mode == "tfc" && c.crashes > 0).unwrap_or(&cells[0]);
        match std::fs::write(path, events_to_jsonl(&canonical.events)) {
            Ok(()) => println!(
                "wrote {path} ({} spans, {} cell seed {})",
                canonical.events.len(),
                canonical.point,
                canonical.seed
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let Some(path) = &alerts_out {
        let all: Vec<Alert> = cells.iter().flat_map(|c| c.alerts.clone()).collect();
        match std::fs::write(path, alerts_to_jsonl(&all)) {
            Ok(()) => println!("wrote {path} ({} alerts)", all.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    println!(
        "\nC8 verdict: {}",
        if all_ok { "CRASH RECOVERY REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
