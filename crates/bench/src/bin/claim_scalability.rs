//! Claim C4 (§1): engine-based distributed WfMSs bottleneck on "the accesses
//! and coherence of shared workflow process instances", while DRA4WfMS has
//! no shared mutable instance at all — documents route independently.
//!
//! Workload: P cross-enterprise process instances, each with 3 activities
//! executed at 3 different organizations, driven by T worker threads.
//!
//! * engine baseline: every hop migrates the instance between engines under
//!   the global ownership lock;
//! * DRA4WfMS: every hop is an independent AEA receive+complete, with the
//!   final document stored into the (sharded) pool.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_scalability [instances]`

use dra4wfms_core::prelude::*;
use dra_engine::DistributedWfms;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn def3() -> WorkflowDefinition {
    WorkflowDefinition::builder("cross-ent", "designer")
        .simple_activity("a0", "org0", &["f"])
        .simple_activity("a1", "org1", &["f"])
        .simple_activity("a2", "org2", &["f"])
        .flow("a0", "a1")
        .flow("a1", "a2")
        .flow_end("a2")
        .build()
        .unwrap()
}

fn engine_run(instances: usize, threads: usize) -> (f64, usize) {
    let def = def3();
    let d = Arc::new(DistributedWfms::new(3));
    let pids: Vec<u64> = (0..instances).map(|_| d.start_process(&def).unwrap().0).collect();
    let counter = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let d = Arc::clone(&d);
            let pids = &pids;
            let counter = &counter;
            s.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= pids.len() {
                    break;
                }
                let pid = pids[i];
                for (hop, org) in ["org0", "org1", "org2"].iter().enumerate() {
                    d.execute_at(hop, pid, &format!("a{hop}"), org, &[("f".into(), "v".into())])
                        .unwrap();
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    (instances as f64 * 3.0 / wall, d.migrations.load(Ordering::Relaxed))
}

fn dra_run(instances: usize, threads: usize) -> f64 {
    let creds: Vec<Credentials> = ["designer", "org0", "org1", "org2"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("c4-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    let def = def3();
    let pol = SecurityPolicy::public();
    let agents: Vec<Aea> = creds[1..].iter().map(|c| Aea::new(c.clone(), dir.clone())).collect();
    // pre-create the initial documents (start cost is the designer's, not the hops')
    let initials: Vec<String> = (0..instances)
        .map(|i| {
            DraDocument::new_initial_with_pid(&def, &pol, &creds[0], &format!("c4-{i}"))
                .unwrap()
                .to_xml_string()
        })
        .collect();
    let counter = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let agents = &agents;
            let initials = &initials;
            let counter = &counter;
            s.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= initials.len() {
                    break;
                }
                let mut xml = initials[i].clone();
                for (hop, aea) in agents.iter().enumerate() {
                    let recv = aea.receive(&xml, &format!("a{hop}")).unwrap();
                    xml = aea
                        .complete(&recv, &[("f".into(), "v".into())])
                        .unwrap()
                        .document
                        .to_xml_string();
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    instances as f64 * 3.0 / wall
}

fn main() {
    let instances: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "cross-enterprise workload: {instances} instances × 3 hops across 3 organizations ({cores} core(s))\n"
    );
    println!(
        "{:>8} {:>18} {:>14} {:>18}",
        "threads", "engine exec/s", "migrations", "DRA4WfMS exec/s"
    );
    let metrics = dra_obs::MetricsRegistry::new();
    for threads in [1usize, 2, 4, 8] {
        let (engine_tput, migrations) = engine_run(instances, threads);
        let dra_tput = dra_run(instances, threads);
        metrics.incr("scalability.instances", instances as u64);
        metrics.incr("scalability.hops", (instances * 3) as u64);
        metrics.incr("scalability.engine_migrations", migrations as u64);
        println!("{threads:>8} {engine_tput:>18.0} {migrations:>14} {dra_tput:>18.0}");
    }
    println!("\nNote: raw engine hops are cheap (no cryptography) but serialized by the");
    println!("ownership lock + full-instance migration per cross-org hop; DRA4WfMS pays");
    println!("per-hop cryptography yet every instance routes independently — add engines");
    println!("and the coherence cost stays, add AEAs and DRA4WfMS scales linearly.");
    println!("The structural point (C4): engine migrations = 3×instances (every hop");
    println!("crosses organizations); DRA4WfMS shared-state accesses = 0.");
    dra_bench::enforce_metric_invariants(&metrics);
}
