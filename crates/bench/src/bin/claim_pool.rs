//! Claim C5 (§4.2): the pool of DRA4WfMS documents supports search /
//! retrieve / store / notify and MapReduce statistics over large document
//! sets with real-time random access.
//!
//! Loads N finished-workflow documents into the pool, then measures mixed
//! random access and MapReduce statistics at several thread counts.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_pool [documents]`

use dra_bench::chain::finished_chain_document;
use dra_docpool::{map_reduce, HTable, TableConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let (xml, _) = finished_chain_document(4, false);
    println!("document template: {} bytes; loading {n} documents…", xml.len());

    let table = HTable::new(TableConfig { max_versions: 2, max_region_rows: 2048 });
    let t = Instant::now();
    for i in 0..n {
        let pid = format!("proc-{i:07}");
        table.put(&format!("doc/{pid}/000000"), "doc", "xml", xml.clone());
        table.put(
            &format!("meta/{pid}"),
            "meta",
            "status",
            if i % 5 == 0 { "running" } else { "complete" },
        );
        table.put(&format!("meta/{pid}"), "meta", "steps", "4");
    }
    let load = t.elapsed();
    let stats = table.stats();
    let metrics = dra_obs::MetricsRegistry::new();
    metrics.incr("pool.documents_loaded", n as u64);
    metrics.incr("pool.rows", stats.rows as u64);
    metrics.incr("pool.regions", stats.regions as u64);
    println!(
        "loaded in {:.2?} ({:.0} puts/s) — {} rows across {} regions ({} splits)\n",
        load,
        (3 * n) as f64 / load.as_secs_f64(),
        stats.rows,
        stats.regions,
        stats.splits
    );

    // mixed random access: 80% get, 20% prefix scan
    println!("{:>8} {:>14} {:>16}", "threads", "random ops/s", "mapreduce (ms)");
    for threads in [1usize, 2, 4, 8] {
        let ops = 40_000usize;
        metrics.incr("pool.random_ops", ops as u64);
        let counter = AtomicUsize::new(0);
        let t = Instant::now();
        std::thread::scope(|s| {
            for w in 0..threads {
                let table = &table;
                let counter = &counter;
                s.spawn(move || {
                    let mut x = w as u64 * 2654435761 + 1;
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= ops {
                            break;
                        }
                        // xorshift
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let pid = format!("proc-{:07}", (x as usize) % n);
                        if i.is_multiple_of(5) {
                            let _ = table.scan_prefix(&format!("doc/{pid}/"));
                        } else {
                            let _ = table.get(&format!("meta/{pid}"), "meta", "status");
                        }
                    }
                });
            }
        });
        let access = t.elapsed();

        let t = Instant::now();
        let counts = map_reduce(
            &table,
            threads,
            |key, row| {
                if !key.starts_with("meta/") {
                    return vec![];
                }
                match row.get_str("meta", "status") {
                    Some(s) => vec![(s, 1usize)],
                    None => vec![],
                }
            },
            |_, vs| vs.len(),
        );
        let mr = t.elapsed();
        assert_eq!(counts.values().sum::<usize>(), n);
        println!(
            "{:>8} {:>14.0} {:>16.1}",
            threads,
            ops as f64 / access.as_secs_f64(),
            mr.as_secs_f64() * 1e3
        );
    }
    println!("\nC5 verdict: random access stays flat as documents grow (range-partitioned");
    println!("regions) and MapReduce statistics scale with threads — matching the role");
    println!("HBase+Hadoop played in the paper's deployment.");
    dra_bench::enforce_metric_invariants(&metrics);
}
