//! Claim C7: fault-tolerant delivery — document routing completes *through*
//! a lossy network (drops, duplicates, reordering, delays, corruption) with
//! bounded retry overhead, and a fault can cost time but never safety:
//! duplicated copies are suppressed by wire digest, corrupted copies are
//! rejected by verification, and the surviving pool is byte-identical to a
//! lossless run.
//!
//! Sweeps fault profiles × seeds over the Fig. 9 workflow and writes the
//! fully deterministic sweep (virtual time only, no wall clock) to
//! `BENCH_faults.json` — running the bin twice with the same seeds must
//! produce byte-identical JSON, which CI checks.
//!
//! Every cell runs under a live [`HealthMonitor`] with a shared
//! [`MetricsRegistry`], and the metric/alert-accounting invariants are
//! enforced per cell: lossless cells must stay alert-silent, and the books
//! must balance everywhere. Pass `--trace-out PATH` to export the span
//! stream of the canonical hostile cell, and `--alerts-out PATH` for the
//! concatenated alert JSONL of the whole sweep.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_faults [seeds…]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{
    alerts_to_jsonl, check_metric_invariants, tracer_for, Alert, CloudSystem, Delivery,
    DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
};
use dra_obs::{events_to_jsonl, TraceEvent};
use std::collections::HashMap;
use std::sync::Arc;

const INSTANCES: usize = 8;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct Cell {
    profile: &'static str,
    seed: u64,
    completed: usize,
    stats: dra_cloud::DeliveryStats,
    /// SHA-256 over the concatenated final documents — pins byte-level
    /// determinism of the run across re-executions.
    outcome_digest: String,
    alerts: Vec<Alert>,
    invariants: Result<(), String>,
    events: Vec<TraceEvent>,
}

/// Run `INSTANCES` Fig. 9 instances (public policy: deterministic bytes)
/// through one delivery channel and aggregate.
fn run_cell(name: &'static str, profile: FaultProfile, seed: u64) -> Cell {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(false);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = dra_obs::MetricsRegistry::new();
    // one monitor watches the whole cell: per-pid state keeps the 8
    // instances separate, and its alert stream covers the sweep
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network)).with_tracer(tracer.clone());
    let delivery = Delivery::new(Arc::clone(&network), profile, DeliveryPolicy::default(), seed)
        .expect("valid profile")
        .with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();

    let mut completed = 0usize;
    let mut finals = String::new();
    for i in 0..INSTANCES {
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public(),
            &creds[0],
            // seed-independent pid: the document bytes must depend only on
            // the workflow, never on the fault schedule
            &format!("faults-{i:02}"),
        )
        .expect("initial");
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents)
            .respond(&respond)
            .max_steps(100)
            .network(&delivery)
            .tracer(tracer.clone())
            .metrics(&metrics)
            .monitor(&monitor)
            .run();
        if let Ok(out) = out {
            assert_eq!(out.steps, 9, "Fig. 9 with the loop taken once");
            Verifier::new(&dir).run(&out.document).expect("final document verifies");
            finals.push_str(&out.document.wire());
            completed += 1;
        }
    }
    Cell {
        profile: name,
        seed,
        completed,
        stats: delivery.stats(),
        outcome_digest: dra_crypto::hex::encode(&dra_crypto::sha256(finals.as_bytes())),
        alerts: monitor.alerts(),
        invariants: check_metric_invariants(&metrics.snapshot()),
        events: tracer.events(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out =
        args.iter().position(|a| a == "--trace-out").and_then(|i| args.get(i + 1)).cloned();
    let alerts_out =
        args.iter().position(|a| a == "--alerts-out").and_then(|i| args.get(i + 1)).cloned();
    let seeds: Vec<u64> = {
        let nums: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
        if nums.is_empty() {
            vec![1, 7, 42]
        } else {
            nums
        }
    };
    let profiles: [(&'static str, FaultProfile); 3] = [
        ("lossless", FaultProfile::lossless()),
        ("lossy10", FaultProfile::lossy(0.10)),
        ("hostile", FaultProfile::hostile()),
    ];

    println!("fault-matrix: {INSTANCES} Fig. 9 instances per cell, seeds {seeds:?}\n");
    println!(
        "{:>9} {:>6} {:>5} {:>7} {:>8} {:>7} {:>7} {:>8} {:>9} {:>7} {:>10}",
        "profile",
        "seed",
        "done",
        "sends",
        "attempts",
        "dups",
        "corrupt",
        "late",
        "inflation",
        "alerts",
        "invariants"
    );

    let mut cells = Vec::new();
    for (name, profile) in &profiles {
        for &seed in &seeds {
            let cell = run_cell(name, *profile, seed);
            let s = &cell.stats;
            println!(
                "{:>9} {:>6} {:>2}/{:<2} {:>7} {:>8} {:>7} {:>7} {:>8} {:>8.2}x {:>7} {:>10}",
                cell.profile,
                cell.seed,
                cell.completed,
                INSTANCES,
                s.sends,
                s.attempts,
                s.duplicates_suppressed,
                s.corruptions_rejected,
                s.late_deliveries,
                s.inflation(),
                cell.alerts.len(),
                if cell.invariants.is_ok() { "ok" } else { "VIOLATED" }
            );
            if let Err(e) = &cell.invariants {
                eprintln!("  invariant violated: {e}");
            }
            cells.push(cell);
        }
    }

    // deterministic JSON: virtual-time accounting only, no wall clock —
    // re-running with the same seeds must reproduce these bytes exactly
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.stats;
        json.push_str(&format!(
            "  {{\"profile\": \"{}\", \"seed\": {}, \"instances\": {}, \"completed\": {}, \
             \"sends\": {}, \"attempts\": {}, \"retries\": {}, \
             \"duplicates_suppressed\": {}, \"corruptions_rejected\": {}, \
             \"late_deliveries\": {}, \"queue_overflow_dropped\": {}, \
             \"dropped\": {}, \"duplicated\": {}, \"corrupted\": {}, \"reordered\": {}, \
             \"virtual_time_us\": {}, \"ideal_time_us\": {}, \"inflation\": {:.4}, \
             \"outcome_sha256\": \"{}\", \"alerts\": {}, \"invariants\": \"{}\"}}{}\n",
            c.profile,
            c.seed,
            INSTANCES,
            c.completed,
            s.sends,
            s.attempts,
            s.retries,
            s.duplicates_suppressed,
            s.corruptions_rejected,
            s.late_deliveries,
            s.queue_overflow_dropped,
            s.faults.dropped,
            s.faults.duplicated,
            s.faults.corrupted,
            s.faults.reordered,
            s.virtual_time_us,
            s.ideal_time_us,
            s.inflation(),
            c.outcome_digest,
            c.alerts.len(),
            if c.invariants.is_ok() { "ok" } else { "violated" },
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_faults.json", &json) {
        Ok(()) => println!("\nwrote BENCH_faults.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_faults.json: {e}"),
    }

    // optional exports: the canonical hostile cell's span stream, and the
    // concatenated alert JSONL of the whole sweep — both byte-deterministic
    if let Some(path) = &trace_out {
        let canonical = cells.iter().find(|c| c.profile == "hostile").unwrap_or(&cells[0]);
        match std::fs::write(path, events_to_jsonl(&canonical.events)) {
            Ok(()) => println!(
                "wrote {path} ({} spans, hostile cell seed {})",
                canonical.events.len(),
                canonical.seed
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if let Some(path) = &alerts_out {
        let all: Vec<Alert> = cells.iter().flat_map(|c| c.alerts.clone()).collect();
        match std::fs::write(path, alerts_to_jsonl(&all)) {
            Ok(()) => println!("wrote {path} ({} alerts)", all.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    // verdict: the hostile profile injects ≥15% drops AND ≥15% duplication —
    // beyond the claim's 10% bar — and every instance must still complete
    // with bounded retry overhead and identical outcomes across seeds
    let hostile: Vec<&Cell> = cells.iter().filter(|c| c.profile == "hostile").collect();
    let all_complete = hostile.iter().all(|c| c.completed == INSTANCES);
    let max_attempts = DeliveryPolicy::default().max_attempts as u64;
    let bounded = hostile
        .iter()
        .all(|c| c.stats.attempts <= c.stats.sends * max_attempts && c.stats.inflation() < 32.0);
    let seed_independent_outcome =
        hostile.windows(2).all(|w| w[0].outcome_digest == w[1].outcome_digest);
    let lossless_clean = cells
        .iter()
        .filter(|c| c.profile == "lossless")
        .all(|c| c.stats.retries == 0 && (c.stats.inflation() - 1.0).abs() < 1e-9);
    let all_invariants = cells.iter().all(|c| c.invariants.is_ok());
    let lossless_silent =
        cells.iter().filter(|c| c.profile == "lossless").all(|c| c.alerts.is_empty());

    println!("\nhostile profile (15% drop, 15% dup, 10% corrupt, 10% reorder):");
    println!("  all {INSTANCES} instances completed per seed: {all_complete}");
    println!("  retry overhead bounded (≤{max_attempts}× sends, <32× time): {bounded}");
    println!("  final documents identical across seeds: {seed_independent_outcome}");
    println!("  lossless baseline fault-free: {lossless_clean}");
    println!("  metric/alert invariants hold in every cell: {all_invariants}");
    println!("  lossless cells raised zero alerts: {lossless_silent}");

    let pass = all_complete
        && bounded
        && seed_independent_outcome
        && lossless_clean
        && all_invariants
        && lossless_silent;
    println!(
        "\nC7 verdict: {}",
        if pass { "FAULT TOLERANCE REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !pass {
        std::process::exit(1);
    }
}
