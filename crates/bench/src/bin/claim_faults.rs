//! Claim C7: fault-tolerant delivery — document routing completes *through*
//! a lossy network (drops, duplicates, reordering, delays, corruption) with
//! bounded retry overhead, and a fault can cost time but never safety:
//! duplicated copies are suppressed by wire digest, corrupted copies are
//! rejected by verification, and the surviving pool is byte-identical to a
//! lossless run.
//!
//! Sweeps fault profiles × seeds over the Fig. 9 workflow and writes the
//! fully deterministic sweep (virtual time only, no wall clock) to
//! `BENCH_faults.json` — running the bin twice with the same seeds must
//! produce byte-identical JSON, which CI checks.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_faults [seeds…]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{CloudSystem, Delivery, DeliveryPolicy, FaultProfile, InstanceRun, NetworkSim};
use std::collections::HashMap;
use std::sync::Arc;

const INSTANCES: usize = 8;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct Cell {
    profile: &'static str,
    seed: u64,
    completed: usize,
    stats: dra_cloud::DeliveryStats,
    /// SHA-256 over the concatenated final documents — pins byte-level
    /// determinism of the run across re-executions.
    outcome_digest: String,
}

/// Run `INSTANCES` Fig. 9 instances (public policy: deterministic bytes)
/// through one delivery channel and aggregate.
fn run_cell(name: &'static str, profile: FaultProfile, seed: u64) -> Cell {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(false);
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network));
    let delivery = Delivery::new(Arc::clone(&network), profile, DeliveryPolicy::default(), seed)
        .expect("valid profile");
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();

    let mut completed = 0usize;
    let mut finals = String::new();
    for i in 0..INSTANCES {
        let initial = DraDocument::new_initial_with_pid(
            &def,
            &SecurityPolicy::public(),
            &creds[0],
            // seed-independent pid: the document bytes must depend only on
            // the workflow, never on the fault schedule
            &format!("faults-{i:02}"),
        )
        .expect("initial");
        let out = InstanceRun::new(&sys, &initial)
            .agents(&agents)
            .respond(&respond)
            .max_steps(100)
            .network(&delivery)
            .run();
        if let Ok(out) = out {
            assert_eq!(out.steps, 9, "Fig. 9 with the loop taken once");
            verify_document(&out.document, &dir).expect("final document verifies");
            finals.push_str(&out.document.wire());
            completed += 1;
        }
    }
    Cell {
        profile: name,
        seed,
        completed,
        stats: delivery.stats(),
        outcome_digest: dra_crypto::hex::encode(&dra_crypto::sha256(finals.as_bytes())),
    }
}

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args().skip(1).filter_map(|s| s.parse().ok()).collect();
        if args.is_empty() {
            vec![1, 7, 42]
        } else {
            args
        }
    };
    let profiles: [(&'static str, FaultProfile); 3] = [
        ("lossless", FaultProfile::lossless()),
        ("lossy10", FaultProfile::lossy(0.10)),
        ("hostile", FaultProfile::hostile()),
    ];

    println!("fault-matrix: {INSTANCES} Fig. 9 instances per cell, seeds {seeds:?}\n");
    println!(
        "{:>9} {:>6} {:>5} {:>7} {:>8} {:>7} {:>7} {:>8} {:>9}",
        "profile", "seed", "done", "sends", "attempts", "dups", "corrupt", "late", "inflation"
    );

    let mut cells = Vec::new();
    for (name, profile) in &profiles {
        for &seed in &seeds {
            let cell = run_cell(name, *profile, seed);
            let s = &cell.stats;
            println!(
                "{:>9} {:>6} {:>2}/{:<2} {:>7} {:>8} {:>7} {:>7} {:>8} {:>8.2}x",
                cell.profile,
                cell.seed,
                cell.completed,
                INSTANCES,
                s.sends,
                s.attempts,
                s.duplicates_suppressed,
                s.corruptions_rejected,
                s.late_deliveries,
                s.inflation()
            );
            cells.push(cell);
        }
    }

    // deterministic JSON: virtual-time accounting only, no wall clock —
    // re-running with the same seeds must reproduce these bytes exactly
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.stats;
        json.push_str(&format!(
            "  {{\"profile\": \"{}\", \"seed\": {}, \"instances\": {}, \"completed\": {}, \
             \"sends\": {}, \"attempts\": {}, \"retries\": {}, \
             \"duplicates_suppressed\": {}, \"corruptions_rejected\": {}, \
             \"late_deliveries\": {}, \"queue_overflow_dropped\": {}, \
             \"dropped\": {}, \"duplicated\": {}, \"corrupted\": {}, \"reordered\": {}, \
             \"virtual_time_us\": {}, \"ideal_time_us\": {}, \"inflation\": {:.4}, \
             \"outcome_sha256\": \"{}\"}}{}\n",
            c.profile,
            c.seed,
            INSTANCES,
            c.completed,
            s.sends,
            s.attempts,
            s.retries,
            s.duplicates_suppressed,
            s.corruptions_rejected,
            s.late_deliveries,
            s.queue_overflow_dropped,
            s.faults.dropped,
            s.faults.duplicated,
            s.faults.corrupted,
            s.faults.reordered,
            s.virtual_time_us,
            s.ideal_time_us,
            s.inflation(),
            c.outcome_digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_faults.json", &json) {
        Ok(()) => println!("\nwrote BENCH_faults.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_faults.json: {e}"),
    }

    // verdict: the hostile profile injects ≥15% drops AND ≥15% duplication —
    // beyond the claim's 10% bar — and every instance must still complete
    // with bounded retry overhead and identical outcomes across seeds
    let hostile: Vec<&Cell> = cells.iter().filter(|c| c.profile == "hostile").collect();
    let all_complete = hostile.iter().all(|c| c.completed == INSTANCES);
    let max_attempts = DeliveryPolicy::default().max_attempts as u64;
    let bounded = hostile
        .iter()
        .all(|c| c.stats.attempts <= c.stats.sends * max_attempts && c.stats.inflation() < 32.0);
    let seed_independent_outcome =
        hostile.windows(2).all(|w| w[0].outcome_digest == w[1].outcome_digest);
    let lossless_clean = cells
        .iter()
        .filter(|c| c.profile == "lossless")
        .all(|c| c.stats.retries == 0 && (c.stats.inflation() - 1.0).abs() < 1e-9);

    println!("\nhostile profile (15% drop, 15% dup, 10% corrupt, 10% reorder):");
    println!("  all {INSTANCES} instances completed per seed: {all_complete}");
    println!("  retry overhead bounded (≤{max_attempts}× sends, <32× time): {bounded}");
    println!("  final documents identical across seeds: {seed_independent_outcome}");
    println!("  lossless baseline fault-free: {lossless_clean}");

    let pass = all_complete && bounded && seed_independent_outcome && lossless_clean;
    println!(
        "\nC7 verdict: {}",
        if pass { "FAULT TOLERANCE REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !pass {
        std::process::exit(1);
    }
}
