//! Claim C2 (§4.1, Table 2): "Although the AEA and the TFC server had very
//! similar total processing times, the TFC server did not need to make a
//! connection-oriented session with the participant. Thus, the TFC was not
//! the bottleneck in the operation of the DRA4WfMS."
//!
//! Measures (a) per-document TFC cost vs AEA cost, and (b) TFC throughput
//! scaling across worker threads — a single TFC deployment keeps up with
//! many concurrent AEAs.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_tfc [docs] [max_threads]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9::{cast, fig9b_intermediate_documents, run_fig9_trace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let docs_per_thread: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let max_threads: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    // (a) per-step cost split, from the Table 2 trace
    let trace = run_fig9_trace(true);
    let aea: Duration = trace[1..].iter().map(|r| r.alpha_aea + r.beta).sum();
    let tfc: Duration = trace[1..]
        .iter()
        .map(|r| r.alpha_tfc.unwrap_or_default() + r.gamma.unwrap_or_default())
        .sum();
    println!(
        "per-run cost split (Fig. 9B trace): AEA {:.4}s, TFC {:.4}s (ratio {:.2})",
        aea.as_secs_f64(),
        tfc.as_secs_f64(),
        tfc.as_secs_f64() / aea.as_secs_f64()
    );

    // (b) TFC throughput scaling
    let inters = fig9b_intermediate_documents();
    let (creds, dir) = cast();
    let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
    let server = Arc::new(TfcServer::with_clock(tfc_creds, dir, Arc::new(|| 1_700_000_000_000)));

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\nTFC throughput (documents finalized per second, shared server,");
    println!("{cores} CPU core(s) available — expect speedup only up to that count;");
    println!("flat-at-1-core still demonstrates the absence of lock contention):");
    println!("{:>8} {:>12} {:>14}", "threads", "docs", "docs/s");
    let metrics = dra_obs::MetricsRegistry::new();
    for threads in (0..).map(|i| 1usize << i).take_while(|&t| t <= max_threads) {
        let total = docs_per_thread * threads;
        metrics.incr("tfc.docs_finalized", total as u64);
        let counter = AtomicUsize::new(0);
        let started = Instant::now();
        crossbeam_scope(threads, &|_| loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            let xml = &inters[i % inters.len()];
            server.process(xml).expect("tfc process");
        });
        let wall = started.elapsed();
        println!("{:>8} {:>12} {:>14.1}", threads, total, total as f64 / wall.as_secs_f64());
    }
    println!("\nC2 verdict: the TFC parallelizes across documents (stateless notary),");
    println!("and per-document TFC cost ≈ AEA cost — the TFC is not the bottleneck.");
    dra_bench::enforce_metric_invariants(&metrics);
}

/// Tiny scoped-thread helper (keeps the dependency surface inside dra-bench
/// minimal — std threads with scope).
fn crossbeam_scope(threads: usize, f: &(dyn Fn(usize) + Sync)) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || f(t));
        }
    });
}
