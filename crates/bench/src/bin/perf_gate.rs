//! The CI perf-regression tripwire: hold a fresh `BENCH_profile.json`
//! against the checked-in baseline under explicit tolerances, and exit
//! nonzero on any violation.
//!
//! Profiles are virtual-time, hence deterministic: a failure is a real
//! behavioural regression (more hops, more retries, longer waits), never
//! machine noise. Regenerate the baseline deliberately after an intended
//! change:
//!
//! ```sh
//! cargo run --release -p dra-bench --bin claim_profile
//! cp BENCH_profile.json perf/BENCH_profile.baseline.json
//! ```
//!
//! Run with: `cargo run --release -p dra-bench --bin perf_gate -- \
//!     BENCH_profile.json perf/BENCH_profile.baseline.json perf/perf_tolerances.json`
//!
//! The gate also accepts the scaling counter file (`BENCH_scaling.json` vs
//! `perf/BENCH_scaling.baseline.json`): a document starting with `[` is a
//! scaling cell array, anything else a profile. Scaling counters are
//! EC-op and allocation counts — deterministic by construction, so their
//! stage tolerances can be 0.

use dra_bench::perfgate::{
    gate, parse_profile, parse_scaling, parse_tolerances, report, ProfileIndex,
};

/// Sniff the document format: scaling cell arrays are `[ … ]`, profiles
/// are `{ … }`.
fn parse_any(text: &str) -> ProfileIndex {
    if text.trim_start().starts_with('[') {
        parse_scaling(text)
    } else {
        parse_profile(text)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [new_path, base_path, tol_path] = match args.as_slice() {
        [a, b, c] => [a.clone(), b.clone(), c.clone()],
        _ => {
            eprintln!("usage: perf_gate <new-profile.json> <baseline.json> <tolerances.json>");
            std::process::exit(2);
        }
    };

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let new = parse_any(&read(&new_path));
    let baseline = parse_any(&read(&base_path));
    let tol = parse_tolerances(&read(&tol_path)).unwrap_or_else(|| {
        eprintln!("perf_gate: {tol_path} is malformed (no default_pct)");
        std::process::exit(2);
    });

    if baseline.is_empty() {
        eprintln!("perf_gate: baseline {base_path} contains no stages");
        std::process::exit(2);
    }

    println!(
        "perf gate: {} baseline stages, default tolerance +{}%\n",
        baseline.len(),
        tol.default_pct
    );
    print!("{}", report(&baseline, &new, &tol));

    let violations = gate(&baseline, &new, &tol);
    if violations.is_empty() {
        println!("\nperf gate: PASS");
    } else {
        println!("\nperf gate: FAIL ({} violation(s))", violations.len());
        std::process::exit(1);
    }
}
