//! Claim C15: pool-side monitoring is **cheap, live and honest** — the
//! typed scan API answers fleet queries touching strictly fewer rows than
//! a full table read, the incrementally maintained fleet views are
//! byte-identical to a fresh MapReduce recompute in every cell, and the
//! continuous nonrepudiation auditor catches 100% of seeded stored-row
//! forgeries with zero false positives on honest cells — on federated
//! deployments pumping the divergence alert straight into quarantine.
//!
//! Three cell families:
//!
//! * `fleet-NNNN` (honest) — N Fig. 9A instances through the scheduler,
//!   then: the status aggregation's scan-counter delta vs the pool's row
//!   count, the `views ≡ scan` differential (map equality *and* byte
//!   equality of the rendered pool view), and a full auditor sweep that
//!   must stay silent;
//! * `tamper-S` (seeded) — a small fleet, then 3 stored **non-latest**
//!   rows forged in place via `pool.put` (rows nobody ever serves); a full
//!   auditor sweep must flag exactly the forged keys;
//! * `federated-quarantine` — a 2-cloud fleet with one forged row on the
//!   active cloud: the auditor's typed alert, pumped through the
//!   `FederationController`, quarantines every portal of the indicted
//!   cloud and fails the deployment over.
//!
//! All numbers are virtual-time; the bin writes `BENCH_dashboard.json`
//! (flat cell array in the shape `perf_gate` parses), the 300-instance
//! cell's `fleet_dashboard.json`, and `--alerts-out PATH` for the alert
//! JSONL — CI runs the bin twice and `cmp`s all three.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_dashboard [seeds…]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{
    alerts_to_jsonl, check_metric_invariants, tracer_for, Alert, AuditConfig, CloudSystem,
    Delivery, DeliveryPolicy, FaultProfile, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
    PoolAuditor, Scheduler, Topology,
};
use dra_docpool::Scan;
use dra_obs::MetricsRegistry;
use std::collections::HashMap;
use std::sync::Arc;

const AUDIT_BATCH: usize = 32;
const AUDIT_PERIOD_US: u64 = 10_000;
const FORGED_PER_TAMPER_CELL: usize = 3;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

/// Admit `n` Fig. 9A instances into one scheduler and drain the bus.
#[allow(clippy::too_many_arguments)]
fn drive_fleet(
    sys: &CloudSystem,
    creds: &[Credentials],
    dir: &Directory,
    n: usize,
    pid_prefix: &str,
    delivery: Option<&Delivery>,
    monitor: &Arc<HealthMonitor>,
    metrics: &MetricsRegistry,
    network: &Arc<NetworkSim>,
) -> usize {
    let def = fig9::definition(false);
    let policy = SecurityPolicy::public();
    let tracer = tracer_for(network);
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let initials: Vec<DraDocument> = (0..n)
        .map(|i| {
            DraDocument::new_initial_with_pid(
                &def,
                &policy,
                &creds[0],
                &format!("{pid_prefix}{i:04}"),
            )
            .expect("initial document")
        })
        .collect();
    let mut sched = Scheduler::new(sys);
    for doc in &initials {
        let mut run = InstanceRun::new(sys, doc)
            .agents(&agents)
            .respond(&respond)
            .max_steps(100)
            .tracer(tracer.clone())
            .monitor(monitor)
            .metrics(metrics);
        if let Some(d) = delivery {
            run = run.network(d);
        }
        sched.admit_instance(run).expect("admission succeeds");
    }
    sched.run_to_completion().iter().filter(|(_, r)| r.as_ref().map(|o| o.steps) == Ok(9)).count()
}

/// Drive the auditor through one complete sweep of every member cloud in
/// virtual time: enough periodic passes to wrap the largest `doc/` range.
fn full_audit_sweep(
    auditor: &PoolAuditor,
    sys: &CloudSystem,
    monitor: &HealthMonitor,
    network: &Arc<NetworkSim>,
) {
    let doc_rows = sys
        .audit_pools()
        .iter()
        .map(|(_, _, pool)| pool.query_count(&Scan::prefix("doc/")))
        .max()
        .unwrap_or(0);
    let passes = doc_rows.div_ceil(AUDIT_BATCH) + 1;
    for _ in 0..passes {
        let now = network.virtual_time_us();
        assert!(auditor.due(now), "periodic schedule kept");
        auditor.run_pass(sys, Some(monitor), now);
        network.advance(AUDIT_PERIOD_US);
    }
}

/// In-place forgery of one stored row: ASCII case-flip of the first
/// alphabetic byte past the midpoint (same byte-budget as the federation
/// sweep's serve tamper, but applied to the *pool*, not the serve path).
fn forge(xml: &str) -> String {
    let bytes = xml.as_bytes();
    let mid = bytes.len() / 2;
    let mut out = bytes.to_vec();
    for i in (mid..bytes.len()).chain(0..mid) {
        if out[i].is_ascii_alphabetic() {
            out[i] ^= 0x20;
            break;
        }
    }
    String::from_utf8(out).expect("case flip preserves utf8")
}

/// The stored `doc/` keys that are *not* the latest version of their
/// process — rows the serve path never touches, in key order.
fn non_latest_doc_keys(pool: &dra_docpool::HTable) -> Vec<String> {
    let rows = pool.query(&Scan::prefix("doc/").family("doc"));
    let keys: Vec<String> = rows.rows.into_iter().map(|(k, _)| k).collect();
    keys.iter()
        .filter(|k| {
            let pid_prefix = match k.rfind('/') {
                Some(i) => &k[..=i],
                None => return false,
            };
            // not the last key of its pid group
            keys.iter().filter(|o| o.starts_with(pid_prefix)).max() != Some(k)
        })
        .cloned()
        .collect()
}

struct Cell {
    cell: String,
    instances: usize,
    completed: usize,
    pool_rows: u64,
    agg_scanned_rows: u64,
    agg_scanned_regions: u64,
    audit_passes: u64,
    audit_sampled: u64,
    tampered_rows: u64,
    detected: u64,
    false_positives: u64,
    audit_alerts: u64,
    quarantines: u64,
    failovers: u64,
    views_identical: bool,
    invariants: Result<(), String>,
    alerts: Vec<Alert>,
    dashboard: String,
}

/// Honest fleet cell: scan-backed aggregation efficiency, `views ≡ scan`
/// byte identity, and a silent full auditor sweep.
fn run_fleet_cell(n: usize) -> Cell {
    let (creds, dir) = fig9::cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 4, Arc::clone(&network));
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let metrics = MetricsRegistry::new();
    let completed = drive_fleet(&sys, &creds, &dir, n, "dash-", None, &monitor, &metrics, &network);

    // the monitoring aggregation's scan cost, isolated as a counter delta
    let (rows_before, regions_before) = sys.pool.scan_counters();
    let statuses = sys.statistics_by_status(4);
    let (rows_after, regions_after) = sys.pool.scan_counters();
    let complete_statuses = statuses.get("complete").copied().unwrap_or(0);

    // incremental views vs a fresh full recompute: map and byte identity
    let views_identical = sys.views_match_scan(4).is_ok()
        && sys.fleet_views().pool_view_json() == sys.recompute_pool_view_json(4)
        && complete_statuses == completed;

    let auditor = PoolAuditor::new(AuditConfig {
        batch: AUDIT_BATCH,
        period_us: AUDIT_PERIOD_US,
        threads: 4,
    });
    full_audit_sweep(&auditor, &sys, &monitor, &network);

    sys.export_metrics(&metrics);
    auditor.export_metrics(&metrics);
    monitor.export_metrics(&metrics);
    let snap = metrics.snapshot();
    Cell {
        cell: format!("fleet-{n:04}"),
        instances: n,
        completed,
        pool_rows: sys.pool.row_count() as u64,
        agg_scanned_rows: (rows_after - rows_before) as u64,
        agg_scanned_regions: (regions_after - regions_before) as u64,
        audit_passes: snap.counter("audit.passes"),
        audit_sampled: snap.counter("audit.sampled"),
        tampered_rows: 0,
        detected: snap.counter("audit.divergences"),
        false_positives: snap.counter("audit.divergences"),
        audit_alerts: snap.counter("alerts.audit_divergence"),
        quarantines: 0,
        failovers: 0,
        views_identical,
        invariants: check_metric_invariants(&snap),
        alerts: monitor.alerts(),
        dashboard: sys.fleet_dashboard_json(),
    }
}

/// Seeded tamper cell: forge stored non-latest rows, then prove the sweep
/// flags exactly those keys.
fn run_tamper_cell(seed: u64) -> Cell {
    let (creds, dir) = fig9::cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 2, Arc::clone(&network));
    let monitor = HealthMonitor::new(MonitorConfig::default());
    let metrics = MetricsRegistry::new();
    let n = 6;
    let completed = drive_fleet(
        &sys,
        &creds,
        &dir,
        n,
        &format!("tam{seed}-"),
        None,
        &monitor,
        &metrics,
        &network,
    );

    // forge FORGED_PER_TAMPER_CELL distinct non-latest rows, seed-picked
    let candidates = non_latest_doc_keys(&sys.pool);
    let mut forged: Vec<String> = Vec::new();
    let mut idx = seed as usize;
    while forged.len() < FORGED_PER_TAMPER_CELL && forged.len() < candidates.len() {
        idx = (idx.wrapping_mul(31).wrapping_add(17)) % candidates.len();
        let key = &candidates[idx];
        if !forged.contains(key) {
            let xml = sys.pool.get_str(key, "doc", "xml").expect("doc cell");
            sys.pool.put(key, "doc", "xml", forge(&xml));
            forged.push(key.clone());
        }
    }
    forged.sort();

    let auditor = PoolAuditor::new(AuditConfig {
        batch: AUDIT_BATCH,
        period_us: AUDIT_PERIOD_US,
        threads: 2,
    });
    full_audit_sweep(&auditor, &sys, &monitor, &network);

    let mut caught: Vec<String> =
        auditor.divergent_rows().into_iter().map(|(_, key)| key).collect();
    caught.sort();
    let detected = caught.iter().filter(|k| forged.contains(k)).count() as u64;
    let false_positives = caught.iter().filter(|k| !forged.contains(k)).count() as u64;

    sys.export_metrics(&metrics);
    auditor.export_metrics(&metrics);
    monitor.export_metrics(&metrics);
    metrics.set_counter("audit.tampered_rows", forged.len() as u64);
    let snap = metrics.snapshot();
    Cell {
        cell: format!("tamper-{seed}"),
        instances: n,
        completed,
        pool_rows: sys.pool.row_count() as u64,
        agg_scanned_rows: 0,
        agg_scanned_regions: 0,
        audit_passes: snap.counter("audit.passes"),
        audit_sampled: snap.counter("audit.sampled"),
        tampered_rows: forged.len() as u64,
        detected,
        false_positives,
        audit_alerts: snap.counter("alerts.audit_divergence"),
        quarantines: 0,
        failovers: 0,
        views_identical: sys.views_match_scan(2).is_ok(),
        invariants: check_metric_invariants(&snap),
        alerts: monitor.alerts(),
        dashboard: String::new(),
    }
}

/// Federated cell: one forged row on the active cloud; the pumped alert
/// must quarantine that whole cloud and fail the deployment over.
fn run_federated_cell() -> Cell {
    let (creds, dir) = fig9::cast();
    let network = Arc::new(NetworkSim::lan());
    let topology = Topology::new().cloud("east", 2).cloud("west", 2);
    let sys = CloudSystem::federated(dir.clone(), topology, Arc::clone(&network))
        .expect("valid topology");
    let ctrl = Arc::clone(sys.federation_controller().expect("federated"));
    let monitor = HealthMonitor::new(MonitorConfig::default());
    ctrl.set_monitor(&monitor);
    let delivery =
        Delivery::new(Arc::clone(&network), FaultProfile::lossless(), DeliveryPolicy::default(), 1)
            .expect("lossless profile");
    let metrics = MetricsRegistry::new();
    let n = 4;
    let completed =
        drive_fleet(&sys, &creds, &dir, n, "fedq-", Some(&delivery), &monitor, &metrics, &network);

    // forge one non-latest row on the active cloud's pool
    let pools = sys.audit_pools();
    let active = ctrl.stats().active_cloud;
    let (_, _, active_pool) = &pools[active];
    let key = non_latest_doc_keys(active_pool).first().cloned().expect("non-latest row");
    let xml = active_pool.get_str(&key, "doc", "xml").expect("doc cell");
    active_pool.put(&key, "doc", "xml", forge(&xml));

    let auditor = PoolAuditor::new(AuditConfig {
        batch: AUDIT_BATCH,
        period_us: AUDIT_PERIOD_US,
        threads: 2,
    });
    full_audit_sweep(&auditor, &sys, &monitor, &network);
    // the scheduler normally polls between dispatches; the background
    // auditor's alert is consumed on the next poll
    sys.federation_poll();

    sys.export_metrics(&metrics);
    auditor.export_metrics(&metrics);
    monitor.export_metrics(&metrics);
    metrics.set_counter("audit.tampered_rows", 1);
    let snap = metrics.snapshot();
    let stats = ctrl.stats();
    Cell {
        cell: "federated-quarantine".to_string(),
        instances: n,
        completed,
        pool_rows: snap.counter("pool.rows"),
        agg_scanned_rows: 0,
        agg_scanned_regions: 0,
        audit_passes: snap.counter("audit.passes"),
        audit_sampled: snap.counter("audit.sampled"),
        tampered_rows: 1,
        detected: snap.counter("audit.divergences"),
        false_positives: snap.counter("audit.divergences").saturating_sub(1),
        audit_alerts: snap.counter("alerts.audit_divergence"),
        quarantines: stats.quarantines,
        failovers: stats.failovers,
        views_identical: sys.views_match_scan(2).is_ok(),
        invariants: check_metric_invariants(&snap),
        alerts: monitor.alerts(),
        dashboard: String::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let alerts_out =
        args.iter().position(|a| a == "--alerts-out").and_then(|i| args.get(i + 1)).cloned();
    let seeds: Vec<u64> = {
        let nums: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
        if nums.is_empty() {
            vec![1, 7, 42]
        } else {
            nums
        }
    };

    println!("dashboard-matrix: scan API + incremental views + continuous auditor\n");
    println!(
        "{:>22} {:>5} {:>9} {:>9} {:>8} {:>7} {:>6} {:>5} {:>5} {:>4}",
        "cell", "done", "pool_rows", "agg_rows", "sampled", "forged", "caught", "fp", "quar", "inv"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for n in [100usize, 300] {
        cells.push(run_fleet_cell(n));
    }
    for &seed in &seeds {
        cells.push(run_tamper_cell(seed));
    }
    cells.push(run_federated_cell());

    let mut dashboard_out: Option<String> = None;
    for c in &cells {
        println!(
            "{:>22} {:>2}/{:<2} {:>9} {:>9} {:>8} {:>7} {:>6} {:>5} {:>5} {:>4}",
            c.cell,
            c.completed,
            c.instances,
            c.pool_rows,
            c.agg_scanned_rows,
            c.audit_sampled,
            c.tampered_rows,
            c.detected,
            c.false_positives,
            c.quarantines,
            if c.invariants.is_ok() { "ok" } else { "BAD" }
        );
        if let Err(e) = &c.invariants {
            eprintln!("  invariant violated: {e}");
        }
        if c.cell == "fleet-0300" {
            dashboard_out = Some(c.dashboard.clone());
        }
    }

    // deterministic flat cell array in the exact shape perf_gate parses
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"cell\": \"{}\", \"instances\": {}, \"completed\": {}, \"pool_rows\": {}, \
             \"agg_scanned_rows\": {}, \"agg_scanned_regions\": {}, \"audit_passes\": {}, \
             \"audit_sampled\": {}, \"tampered_rows\": {}, \"detected\": {}, \
             \"false_positives\": {}, \"audit_alerts\": {}, \"quarantines\": {}, \
             \"failovers\": {}, \"views_identical\": \"{}\", \"invariants\": \"{}\"}}{}\n",
            c.cell,
            c.instances,
            c.completed,
            c.pool_rows,
            c.agg_scanned_rows,
            c.agg_scanned_regions,
            c.audit_passes,
            c.audit_sampled,
            c.tampered_rows,
            c.detected,
            c.false_positives,
            c.audit_alerts,
            c.quarantines,
            c.failovers,
            if c.views_identical { "yes" } else { "NO" },
            if c.invariants.is_ok() { "ok" } else { "violated" },
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_dashboard.json", &json) {
        Ok(()) => println!("\nwrote BENCH_dashboard.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_dashboard.json: {e}"),
    }

    if let Some(dashboard) = &dashboard_out {
        match std::fs::write("fleet_dashboard.json", dashboard) {
            Ok(()) => println!("wrote fleet_dashboard.json"),
            Err(e) => eprintln!("could not write fleet_dashboard.json: {e}"),
        }
    }
    if let Some(path) = &alerts_out {
        let all: Vec<Alert> = cells.iter().flat_map(|c| c.alerts.clone()).collect();
        match std::fs::write(path, alerts_to_jsonl(&all)) {
            Ok(()) => println!("wrote {path} ({} alerts)", all.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    // verdicts
    let all_complete = cells.iter().all(|c| c.completed == c.instances);
    let scans_cheaper = cells
        .iter()
        .filter(|c| c.cell.starts_with("fleet-"))
        .all(|c| c.agg_scanned_rows > 0 && c.agg_scanned_rows < c.pool_rows);
    let views_ok = cells.iter().all(|c| c.views_identical);
    let honest_silent = cells
        .iter()
        .filter(|c| c.tampered_rows == 0)
        .all(|c| c.detected == 0 && c.audit_alerts == 0);
    let forgeries_caught = cells
        .iter()
        .filter(|c| c.tampered_rows > 0)
        .all(|c| c.detected == c.tampered_rows && c.false_positives == 0);
    let quarantine_pumped = cells
        .iter()
        .filter(|c| c.cell == "federated-quarantine")
        .all(|c| c.quarantines >= 2 && c.failovers >= 1);
    let invariants_ok = cells.iter().all(|c| c.invariants.is_ok());

    println!("\nevery cell completed its fleet: {all_complete}");
    println!("monitoring scans touch strictly fewer rows than the pool holds: {scans_cheaper}");
    println!("incremental views byte-identical to full recompute everywhere: {views_ok}");
    println!("auditor silent on every honest cell: {honest_silent}");
    println!("every seeded forgery caught, zero false positives: {forgeries_caught}");
    println!("audit alert pumped into whole-cloud quarantine + failover: {quarantine_pumped}");
    println!("metric invariants hold in every cell: {invariants_ok}");

    let pass = all_complete
        && scans_cheaper
        && views_ok
        && honest_silent
        && forgeries_caught
        && quarantine_pumped
        && invariants_ok;
    println!(
        "\nC15 verdict: {}",
        if pass { "POOL-SIDE MONITORING REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !pass {
        std::process::exit(1);
    }
}
