//! Regenerate **Table 1** of the paper: per-step execution times and
//! document sizes of the Fig. 9A workflow under the basic operational model.
//!
//! Run with: `cargo run --release -p dra-bench --bin table1 [runs]`

use dra_bench::fig9::run_fig9_trace;
use dra_bench::table::{average_traces, render_table1};

/// Paper-reported reference values (IPDPSW 2012, Table 1), for side-by-side
/// shape comparison: (#sigs to verify, #CERs, α s, β s, Σ bytes).
const PAPER: &[(&str, usize, usize, f64, f64, usize)] = &[
    ("Initial", 0, 0, 0.0, 0.0, 7_119),
    ("X_A(0)", 1, 1, 0.0030, 0.0156, 8_667),
    ("X_B1(0)", 2, 2, 0.0041, 0.0167, 10_184),
    ("X_B2(0)", 2, 2, 0.0049, 0.0145, 10_184),
    ("X_C(0)", 4, 4, 0.0055, 0.0148, 13_503),
    ("X_A(1)", 5, 5, 0.0072, 0.0147, 15_015),
    ("X_B1(1)", 6, 6, 0.0079, 0.0130, 16_562),
    ("X_B2(1)", 7, 7, 0.0088, 0.0132, 18_079),
    ("X_C(1)", 7, 7, 0.0093, 0.0116, 18_079),
    ("X_D(0)", 9, 9, 0.0133, 0.0118, 21_398),
];

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    eprintln!("warm-up…");
    let _ = run_fig9_trace(false);
    eprintln!("measuring {runs} run(s)…");
    let traces: Vec<_> = (0..runs).map(|_| run_fig9_trace(false)).collect();
    let avg = average_traces(&traces);

    println!("{}", render_table1(&avg));

    println!("paper-reported reference (2012 Java/RSA testbed; absolute numbers differ,");
    println!("the shape — verify-cost ∝ #signatures, ~constant sign cost, Σ ∝ #CERs — holds):");
    println!(
        "{:<10} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "Document", "#sigs", "#CERs", "alpha(s)", "beta(s)", "size(B)"
    );
    for (l, s, c, a, b, z) in PAPER {
        println!("{l:<10} {s:>6} {c:>6} {a:>10.4} {b:>10.4} {z:>10}");
    }

    // shape checks, printed so EXPERIMENTS.md can quote them
    let alpha_first = avg[1].alpha_aea.as_secs_f64();
    let alpha_last = avg.last().unwrap().alpha_aea.as_secs_f64();
    let betas: Vec<f64> = avg[1..].iter().map(|r| r.beta.as_secs_f64()).collect();
    let beta_spread = betas.iter().cloned().fold(f64::MIN, f64::max)
        / betas.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nshape checks:");
    println!(
        "  alpha growth first→last step: {:.2}×  (paper: {:.2}×)",
        alpha_last / alpha_first,
        0.0133 / 0.0030
    );
    println!(
        "  beta max/min spread: {beta_spread:.2}×  (paper: {:.2}× — 'only a constant time')",
        0.0167 / 0.0116
    );
    println!(
        "  size growth initial→final: {:.2}×  (paper: {:.2}×)",
        avg.last().unwrap().size as f64 / avg[0].size as f64,
        22_910.0 / 7_119.0
    );
}
