//! Claim C11: the event-driven scheduler carries *fleet-scale* load — 100,
//! 300 and 1000 concurrent Fig. 9A instances admitted into one
//! `cloud::sched::Scheduler` over a shared deployment all complete, with
//! hash-routed portals absorbing the stores evenly (no portal-0 hot-spot),
//! the bus accounting laws holding, and a byte-identical
//! `BENCH_fleet.json` for a fixed configuration.
//!
//! Reported rates are in *virtual* time (hops and instances per virtual
//! second), so the JSON is deterministic; wall-clock goes to stdout only.
//! CI runs the bin twice, `cmp`s the outputs, then holds the fresh numbers
//! against `perf/BENCH_fleet.baseline.json` via the `perf_gate` bin.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_fleet`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{tracer_for, CloudSystem, InstanceRun, NetworkSim, Scheduler};
use dra_obs::MetricsRegistry;
use std::collections::HashMap;
use std::sync::Arc;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

struct CellResult {
    cell: String,
    instances: usize,
    completed: usize,
    hops: u64,
    virtual_us: u64,
    hops_per_vsec: u64,
    instances_per_vsec: u64,
    portal_min_stored: usize,
    portal_max_stored: usize,
    hop_count: u64,
    hop_total_us: u64,
    hop_max_us: u64,
    hop_p50_us: u64,
    hop_p95_us: u64,
    hop_p99_us: u64,
    activations: u64,
    dispatched: u64,
    bus_depth: i64,
    complete_statuses: usize,
    pool_rows: u64,
    scanned_rows: u64,
    scanned_regions: u64,
}

/// Admit `n` Fig. 9A instances into one scheduler over a fresh deployment
/// and drain the bus to completion.
fn run_cell(n: usize, portals: usize) -> CellResult {
    let (creds, dir) = fig9::cast();
    let def = fig9::definition(false);
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = MetricsRegistry::new();
    let sys = CloudSystem::new(dir.clone(), portals, Arc::clone(&network));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();

    let initials: Vec<DraDocument> = (0..n)
        .map(|i| {
            DraDocument::new_initial_with_pid(
                &def,
                &SecurityPolicy::public(),
                &creds[0],
                &format!("fleet-{i:04}"),
            )
            .expect("initial document")
        })
        .collect();

    let wall_start = std::time::Instant::now();
    let vt_start = network.virtual_time_us();
    let mut sched = Scheduler::new(&sys);
    for initial in &initials {
        sched
            .admit_instance(
                InstanceRun::new(&sys, initial)
                    .agents(&agents)
                    .respond(&respond)
                    .max_steps(100)
                    .tracer(tracer.clone())
                    .metrics(&metrics),
            )
            .expect("admission succeeds");
    }
    let results = sched.run_to_completion();
    let virtual_us = network.virtual_time_us() - vt_start;
    let wall = wall_start.elapsed();

    let completed = results.iter().filter(|(_, r)| r.as_ref().map(|o| o.steps) == Ok(9)).count();
    let snap = metrics.snapshot();
    let hops = snap.counter("run.steps");
    let hist = snap.histograms.get("hop.duration_us").cloned().expect("hops were traced");
    let stored: Vec<usize> =
        sys.portals.iter().map(|p| p.stored.load(std::sync::atomic::Ordering::Relaxed)).collect();

    // wall-clock is stdout-only: the JSON stays byte-deterministic
    println!(
        "  fleet {n:>5}: {completed} completed, {hops} hops in {virtual_us} virtual µs \
         ({:.2}s wall), portal stored spread {:?}",
        wall.as_secs_f64(),
        stored
    );

    // end-of-run aggregation rides the typed scan API: a projected `meta/`
    // prefix scan feeds MapReduce, never a full table read
    let statuses = sys.statistics_by_status(4);
    let complete_statuses = statuses.get("complete").copied().unwrap_or(0);
    sys.export_metrics(&metrics);
    let snap = metrics.snapshot();

    dra_bench::enforce_metric_invariants(&metrics);

    CellResult {
        cell: format!("fleet-{n:04}"),
        instances: n,
        completed,
        hops,
        virtual_us,
        hops_per_vsec: hops.saturating_mul(1_000_000) / virtual_us.max(1),
        instances_per_vsec: (completed as u64).saturating_mul(1_000_000) / virtual_us.max(1),
        portal_min_stored: stored.iter().copied().min().unwrap_or(0),
        portal_max_stored: stored.iter().copied().max().unwrap_or(0),
        hop_count: hist.count,
        hop_total_us: hist.sum,
        hop_max_us: hist.max,
        hop_p50_us: hist.p50(),
        hop_p95_us: hist.p95(),
        hop_p99_us: hist.p99(),
        activations: snap.counter("sched.activations"),
        dispatched: snap.counter("sched.dispatched"),
        bus_depth: snap.gauge("sched.bus_depth"),
        complete_statuses,
        pool_rows: snap.counter("pool.rows"),
        scanned_rows: snap.counter("pool.scanned_rows"),
        scanned_regions: snap.counter("pool.scanned_regions"),
    }
}

fn main() {
    const PORTALS: usize = 8;
    let fleets = [100usize, 300, 1000];

    println!("fleet sweep: concurrent Fig. 9A instances over {PORTALS} hash-routed portals\n");

    let mut cells: Vec<CellResult> = Vec::new();
    for n in fleets {
        cells.push(run_cell(n, PORTALS));
    }

    // deterministic JSON, one cell header / one stage per line in the exact
    // shape `perf_gate` parses back (the "hop" stage carries the p95)
    let mut json = String::from("{\n\"claim\": \"C11\",\n\"portals\": 8,\n\"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "{{\"cell\": \"{}\", \"instances\": {}, \"completed\": {}, \"hops\": {}, \
             \"virtual_us\": {}, \"hops_per_vsec\": {}, \"instances_per_vsec\": {}, \
             \"portal_min_stored\": {}, \"portal_max_stored\": {}, \"activations\": {}, \
             \"dispatched\": {}, \"bus_depth\": {}, \"complete_statuses\": {}, \
             \"pool_rows\": {}, \"scanned_rows\": {}, \"scanned_regions\": {}, \"stages\": [\n",
            c.cell,
            c.instances,
            c.completed,
            c.hops,
            c.virtual_us,
            c.hops_per_vsec,
            c.instances_per_vsec,
            c.portal_min_stored,
            c.portal_max_stored,
            c.activations,
            c.dispatched,
            c.bus_depth,
            c.complete_statuses,
            c.pool_rows,
            c.scanned_rows,
            c.scanned_regions
        ));
        json.push_str(&format!(
            "{{\"stage\": \"hop\", \"count\": {}, \"total_us\": {}, \"self_us\": {}, \
             \"child_us\": 0, \"max_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}}}\n",
            c.hop_count,
            c.hop_total_us,
            c.hop_total_us,
            c.hop_max_us,
            c.hop_p50_us,
            c.hop_p95_us,
            c.hop_p99_us
        ));
        json.push_str(&format!("]}}{}\n", if i + 1 == cells.len() { "" } else { "," }));
    }
    json.push_str("]\n}\n");
    match std::fs::write("BENCH_fleet.json", &json) {
        Ok(()) => println!("\nwrote BENCH_fleet.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_fleet.json: {e}"),
    }

    // verdict: every instance of every fleet completes, the bus drains,
    // notifications balance, and the hash routing spreads the stores (the
    // old round-robin melted portal 0 with every initial document)
    let all_complete = cells.iter().all(|c| c.completed == c.instances);
    let thousand_strong = cells.iter().any(|c| c.instances >= 1000 && c.completed >= 1000);
    let bus_drained = cells.iter().all(|c| c.bus_depth == 0);
    let books_balance = cells.iter().all(|c| c.dispatched <= c.activations);
    let spread = cells
        .iter()
        .all(|c| c.portal_min_stored > 0 && c.portal_max_stored < 2 * c.portal_min_stored);
    let statuses_agree = cells.iter().all(|c| c.complete_statuses == c.completed);
    println!("\nevery fleet completed all instances: {all_complete}");
    println!("a 1000-instance fleet completed: {thousand_strong}");
    println!("bus drained to empty in every cell: {bus_drained}");
    println!("dispatches never exceed activations: {books_balance}");
    println!("stores spread across portals (max < 2·min): {spread}");
    println!("scan-backed status aggregation agrees with the runner: {statuses_agree}");

    let pass =
        all_complete && thousand_strong && bus_drained && books_balance && spread && statuses_agree;
    println!(
        "\nC11 verdict: {}",
        if pass { "FLEET-SCALE EXECUTION REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !pass {
        std::process::exit(1);
    }
}
