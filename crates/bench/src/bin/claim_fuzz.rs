//! Claim C14: differential fuzzing over the workflow-pattern catalogue —
//! every definition a seeded generator draws from the full pattern set
//! (AND/XOR/OR joins, multi-instance activities, cancellation regions) is
//! proven sound, executes to the byte-identical final document and pool
//! digest through both operational models under honest, hostile and
//! crashing channels, reconciles cleanly against its span trace, catches
//! every injected forgery, and has its deadlocking twin rejected at
//! admission.
//!
//! Sweeps a fixed 64-seed corpus and writes the fully deterministic
//! results (virtual time only, no wall clock) to `BENCH_fuzz.json` —
//! running the bin twice must produce byte-identical JSON, which CI
//! checks and perf-gates against `perf/BENCH_fuzz.baseline.json`.
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_fuzz [n_seeds]`

use dra_bench::fuzz;

const DEFAULT_SEEDS: u64 = 64;

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEEDS);

    println!("C14: differential fuzz over the pattern catalogue — {seeds} seeds\n");
    println!(
        "{:>6} {:>5} {:>6} {:>6} {:>7} {:>9} {:>9} {:>11} {:>9}",
        "seed", "acts", "hopsB", "hopsA", "states", "or-waits", "cancels", "forgeries", "unsound"
    );

    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for seed in 0..seeds {
        match fuzz::fuzz_seed(seed) {
            Ok(r) => {
                println!(
                    "{:>6} {:>5} {:>6} {:>6} {:>7} {:>9} {:>9} {:>6}/{:<4} {:>9}",
                    r.seed,
                    r.activities,
                    r.hops_basic,
                    r.hops_advanced,
                    r.soundness_states,
                    r.or_join_waits,
                    r.cancelled,
                    r.forgeries_caught,
                    r.forgeries_tried,
                    if r.unsound_rejected { "rejected" } else { "ADMITTED" }
                );
                reports.push(r);
            }
            Err(e) => {
                println!("{seed:>6}  DIVERGED: {e}");
                failures.push(e);
            }
        }
    }

    // deterministic JSON in the scaling-array shape: every numeric field on
    // a "cell" row is auto-gated by perf_gate, so any drift in hop counts,
    // soundness-state counts or detection totals fails CI
    let mut json = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"cell\": \"seed-{:02}\", \"activities\": {}, \"hops_basic\": {}, \
             \"hops_advanced\": {}, \"soundness_states\": {}, \"or_join_waits\": {}, \
             \"cancelled\": {}, \"forgeries_tried\": {}, \"forgeries_caught\": {}, \
             \"unsound_rejected\": {}, \"outcome_sha256\": \"{}\"}}{}\n",
            r.seed,
            r.activities,
            r.hops_basic,
            r.hops_advanced,
            r.soundness_states,
            r.or_join_waits,
            r.cancelled,
            r.forgeries_tried,
            r.forgeries_caught,
            u64::from(r.unsound_rejected),
            r.outcome_sha256,
            if i + 1 == reports.len() && failures.is_empty() { "" } else { "," }
        ));
    }
    for (i, e) in failures.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"cell\": \"divergence-{:02}\", \"error\": \"{}\"}}{}\n",
            i,
            e.replace('"', "'"),
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_fuzz.json", &json) {
        Ok(()) => println!("\nwrote BENCH_fuzz.json ({} cells)", reports.len() + failures.len()),
        Err(e) => eprintln!("\ncould not write BENCH_fuzz.json: {e}"),
    }

    // verdict: every seed ran the full differential matrix without
    // divergence, every forgery was caught, every unsound twin rejected,
    // and the corpus actually exercised the new patterns
    let all_forgeries = reports.iter().all(|r| r.forgeries_caught == r.forgeries_tried);
    let all_rejected = reports.iter().all(|r| r.unsound_rejected);
    let patterns_hit = reports.iter().map(|r| r.or_join_waits).sum::<u64>() > 0
        && reports.iter().map(|r| r.cancelled).sum::<u64>() > 0;
    let ok = failures.is_empty()
        && reports.len() as u64 == seeds
        && all_forgeries
        && all_rejected
        && patterns_hit;
    println!(
        "\nC14 verdict: {}",
        if ok {
            "PASS — every seed converged across models and channels, every forgery \
             caught, every unsound twin rejected"
        } else {
            "FAIL"
        }
    );
    if !ok {
        if !failures.is_empty() {
            eprintln!("  {} seed(s) diverged", failures.len());
        }
        if !all_forgeries {
            eprintln!("  a forgery went undetected");
        }
        if !all_rejected {
            eprintln!("  an unsound twin was admitted");
        }
        if !patterns_hit {
            eprintln!("  the corpus never parked an OR-join or fired a cancellation");
        }
        std::process::exit(1);
    }
}
