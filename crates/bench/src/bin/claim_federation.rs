//! Claim C13: multi-cloud federation degrades gracefully — for every
//! topology × fault × seed cell (≥ 2 clouds, {healthy, cloud-outage,
//! tampered-portal}, pinned seeds), every Fig. 9A instance completes and
//! the final document pool is **byte-identical** to the healthy
//! single-cloud baseline: a bad cloud costs time, never safety.
//!
//! The machinery under test: per-cloud pools and write-ahead journals,
//! post-commit replication charged to virtual time, the
//! `FederationController`'s outage confirmation dance (retriable
//! `Crash` errors absorbed by the delivery retry layer), serve-side
//! tamper detection (digest probe, full re-verify fallback, typed
//! `portal_tampered` alert), quarantine with frozen admission counters,
//! and health-driven failover of the active cloud.
//!
//! The sweep is fully deterministic (virtual time only, seeded outage /
//! tamper schedules) and writes `BENCH_federation.json` — running the
//! bin twice must produce byte-identical JSON, which CI checks, then
//! gates against `perf/BENCH_federation.baseline.json`. Pass
//! `--alerts-out PATH` for the sweep's alert JSONL (also byte-
//! deterministic).
//!
//! Run with: `cargo run --release -p dra-bench --bin claim_federation [seeds…]`

use dra4wfms_core::prelude::*;
use dra_bench::fig9;
use dra_cloud::{
    alerts_to_jsonl, check_metric_invariants, Alert, CloudSystem, Delivery, DeliveryPolicy,
    FaultProfile, FederationStats, HealthMonitor, InstanceRun, MonitorConfig, NetworkSim,
    OutagePlan, Scheduler, TamperPlan, Topology,
};
use dra_obs::MetricsRegistry;
use std::collections::HashMap;
use std::sync::Arc;

/// Instances admitted before the serve audit (the audit gives an armed
/// tamper plan its chance to fire) plus one wave after any quarantine —
/// frozen portals must stay frozen while the fleet keeps moving.
const WAVE1: usize = 3;
const WAVE2: usize = 1;
const TOTAL: usize = WAVE1 + WAVE2;
/// Seeded outages fire at `1 + seed % MAX_OUTAGE_US` virtual µs: a full
/// sweep runs ~21k virtual µs, so every draw lands inside the run —
/// early draws kill the active cloud before its first admission, late
/// draws mid-fleet.
const MAX_OUTAGE_US: u64 = 15_000;
/// Seeded tampers fire on the portal's 1st..=3rd serve — always within
/// the audit sweep below.
const MAX_TAMPER_NTH: u64 = 3;

fn respond(received: &ReceivedActivity) -> Vec<(String, String)> {
    match received.activity.as_str() {
        "A" => vec![("attachment".into(), "contract.pdf".into())],
        "B1" => vec![("review1".into(), "ok".into())],
        "B2" => vec![("review2".into(), "ok".into())],
        "C" => vec![(
            "decision".into(),
            if received.iter == 0 { "insufficient" } else { "accept" }.into(),
        )],
        "D" => vec![("ack".into(), "done".into())],
        _ => vec![],
    }
}

fn initials(creds: &[Credentials], ids: std::ops::Range<usize>) -> Vec<DraDocument> {
    let def = fig9::definition(false);
    let policy = SecurityPolicy::public();
    ids.map(|i| {
        // seed-independent pids: the stored bytes must depend only on the
        // workflow, never on the fault schedule or the topology
        DraDocument::new_initial_with_pid(&def, &policy, &creds[0], &format!("fed-{i:02}"))
            .expect("initial document")
    })
    .collect()
}

/// Admit `docs` into one scheduler and drain the bus, counting the
/// instances that completed the full 9-step Fig. 9A run.
fn drive(
    sys: &CloudSystem,
    agents: &HashMap<String, Arc<Aea>>,
    docs: &[DraDocument],
    delivery: &Delivery,
    monitor: &Arc<HealthMonitor>,
    metrics: &MetricsRegistry,
) -> usize {
    let mut sched = Scheduler::new(sys);
    for doc in docs {
        sched
            .admit_instance(
                InstanceRun::new(sys, doc)
                    .agents(agents)
                    .respond(&respond)
                    .max_steps(100)
                    .network(delivery)
                    .monitor(monitor)
                    .metrics(metrics),
            )
            .expect("admission succeeds");
    }
    sched.run_to_completion().iter().filter(|(_, r)| r.as_ref().map(|o| o.steps) == Ok(9)).count()
}

struct Cell {
    topology: &'static str,
    scenario: &'static str,
    seed: u64,
    completed: usize,
    stats: FederationStats,
    crashes_absorbed: u64,
    retries: u64,
    virtual_time_us: u64,
    pool_sha256: String,
    identical: bool,
    frozen_ok: bool,
    consistent: bool,
    alerts: Vec<Alert>,
    invariants: Result<(), String>,
}

/// Run `TOTAL` Fig. 9A instances over the federated `topology` under one
/// fault `scenario`, audit every serve path, and fingerprint the pool.
fn run_cell(
    topology_name: &'static str,
    topology: Topology,
    scenario: &'static str,
    seed: u64,
    target: &str,
) -> Cell {
    let (creds, dir) = fig9::cast();
    let network = Arc::new(NetworkSim::lan());
    let total_portals = topology.total_portals();
    let sys = CloudSystem::federated(dir.clone(), topology, Arc::clone(&network))
        .expect("valid topology");
    let ctrl = Arc::clone(sys.federation_controller().expect("federated"));
    let monitor = HealthMonitor::new(MonitorConfig::default());
    ctrl.set_monitor(&monitor);
    match scenario {
        "healthy" => {}
        // the outage always hits cloud 0 — the initially active cloud, so
        // a confirmed outage forces a real failover of the primary
        "outage" => ctrl.set_outage(OutagePlan::seeded(0, seed, MAX_OUTAGE_US)),
        "tampered" => {
            ctrl.set_tamper(TamperPlan::seeded(seed as usize % total_portals, seed, MAX_TAMPER_NTH))
        }
        other => panic!("unknown scenario {other}"),
    }
    // lossless channel: the outage dance surfaces as retriable Crash
    // errors, which the delivery retry layer absorbs without losing hops
    let delivery = Delivery::new(
        Arc::clone(&network),
        FaultProfile::lossless(),
        DeliveryPolicy::default(),
        seed,
    )
    .expect("lossless profile");
    let metrics = MetricsRegistry::new();
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();

    let mut completed =
        drive(&sys, &agents, &initials(&creds, 0..WAVE1), &delivery, &monitor, &metrics);

    // audit pass: serve every instance through every portal, so an armed
    // tamper plan fires mid-sweep and the honest bytes get re-served
    let mut audits_ok = true;
    for i in 0..WAVE1 {
        let pid = format!("fed-{i:02}");
        let latest = sys.retrieve_version(&pid, 9);
        for portal in 0..total_portals {
            if let Some(served) = sys.retrieve_latest(portal, &pid) {
                audits_ok &= Some(served) == latest;
            }
        }
    }

    // second wave after any quarantine: the fleet keeps completing and
    // quarantined portals take none of it
    completed +=
        drive(&sys, &agents, &initials(&creds, WAVE1..TOTAL), &delivery, &monitor, &metrics);

    sys.export_metrics(&metrics);
    let dstats = delivery.stats();
    let pool_sha256 = sys.pool_digest();
    Cell {
        topology: topology_name,
        scenario,
        seed,
        completed,
        stats: ctrl.stats(),
        crashes_absorbed: dstats.crashes_injected,
        retries: dstats.retries,
        virtual_time_us: network.virtual_time_us(),
        identical: pool_sha256 == target && audits_ok,
        pool_sha256,
        frozen_ok: ctrl.zero_admissions_after_quarantine(),
        consistent: sys.replicas_consistent(),
        alerts: monitor.alerts(),
        invariants: check_metric_invariants(&metrics.snapshot()),
    }
}

/// The healthy single-cloud pool digest over the same `TOTAL` instances:
/// the byte-identity target every federated cell is held against.
fn single_cloud_target() -> String {
    let (creds, dir) = fig9::cast();
    let sys = CloudSystem::new(dir.clone(), 4, Arc::new(NetworkSim::lan()));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let mut sched = Scheduler::new(&sys);
    let docs = initials(&creds, 0..TOTAL);
    for doc in &docs {
        sched
            .admit_instance(
                InstanceRun::new(&sys, doc).agents(&agents).respond(&respond).max_steps(100),
            )
            .expect("baseline admission");
    }
    for (pid, result) in sched.run_to_completion() {
        assert_eq!(result.expect("baseline completes").steps, 9, "{pid}");
    }
    sys.pool_digest()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let alerts_out =
        args.iter().position(|a| a == "--alerts-out").and_then(|i| args.get(i + 1)).cloned();
    let seeds: Vec<u64> = {
        let nums: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
        if nums.is_empty() {
            vec![1, 7, 42]
        } else {
            nums
        }
    };

    let target = single_cloud_target();
    println!(
        "federation-matrix: {TOTAL} Fig. 9 instances per cell, seeds {seeds:?}\n\
         single-cloud target {}…\n",
        &target[..16]
    );
    println!(
        "{:>6} {:>9} {:>5} {:>5} {:>6} {:>6} {:>5} {:>5} {:>8} {:>7} {:>4} {:>9}",
        "topo",
        "scenario",
        "seed",
        "done",
        "acked",
        "quar",
        "fail",
        "out",
        "tampered",
        "frozen",
        "inv",
        "pool"
    );

    let topologies = [
        ("fed2", Topology::new().cloud("east", 2).cloud("west", 2)),
        ("fed3", Topology::new().cloud("east", 2).cloud("west", 2).cloud("south", 2)),
    ];
    let mut cells = Vec::new();
    let mut all_ok = true;
    for (name, topo) in &topologies {
        for scenario in ["healthy", "outage", "tampered"] {
            for &seed in &seeds {
                let cell = run_cell(name, topo.clone(), scenario, seed, &target);
                let ok = cell.completed == TOTAL
                    && cell.identical
                    && cell.frozen_ok
                    && cell.consistent
                    && cell.invariants.is_ok();
                all_ok &= ok;
                println!(
                    "{:>6} {:>9} {:>5} {:>2}/{:<2} {:>6} {:>6} {:>5} {:>5} {:>8} {:>7} {:>4} {:>9}",
                    cell.topology,
                    cell.scenario,
                    cell.seed,
                    cell.completed,
                    TOTAL,
                    cell.stats.replicas_acked,
                    cell.stats.quarantines,
                    cell.stats.failovers,
                    cell.stats.outages,
                    cell.stats.tampered_serves,
                    if cell.frozen_ok { "ok" } else { "LEAKED" },
                    if cell.invariants.is_ok() { "ok" } else { "BAD" },
                    if cell.identical { "identical" } else { "DIVERGED" }
                );
                if let Err(e) = &cell.invariants {
                    eprintln!("  invariant violated: {e}");
                }
                cells.push(cell);
            }
        }
    }

    // deterministic JSON: virtual-time accounting only, no wall clock —
    // re-running with the same seeds must reproduce these bytes exactly
    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"cell\": \"{}/{}/{}\", \"instances\": {}, \"completed\": {}, \
             \"replicas_acked\": {}, \"quarantines\": {}, \"failovers\": {}, \
             \"outages\": {}, \"reroutes\": {}, \"tampered_serves\": {}, \
             \"active_cloud\": {}, \"crashes_absorbed\": {}, \"retries\": {}, \
             \"alerts\": {}, \"virtual_time_us\": {}, \"pool_sha256\": \"{}\", \
             \"identical\": \"{}\", \"invariants\": \"{}\"}}{}\n",
            c.topology,
            c.scenario,
            c.seed,
            TOTAL,
            c.completed,
            c.stats.replicas_acked,
            c.stats.quarantines,
            c.stats.failovers,
            c.stats.outages,
            c.stats.reroutes,
            c.stats.tampered_serves,
            c.stats.active_cloud,
            c.crashes_absorbed,
            c.retries,
            c.alerts.len(),
            c.virtual_time_us,
            c.pool_sha256,
            if c.identical { "yes" } else { "NO" },
            if c.invariants.is_ok() { "ok" } else { "violated" },
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    match std::fs::write("BENCH_federation.json", &json) {
        Ok(()) => println!("\nwrote BENCH_federation.json ({} cells)", cells.len()),
        Err(e) => eprintln!("\ncould not write BENCH_federation.json: {e}"),
    }

    if let Some(path) = &alerts_out {
        let all: Vec<Alert> = cells.iter().flat_map(|c| c.alerts.clone()).collect();
        match std::fs::write(path, alerts_to_jsonl(&all)) {
            Ok(()) => println!("wrote {path} ({} alerts)", all.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    println!(
        "\nC13 verdict: {}",
        if all_ok { "GRACEFUL DEGRADATION REPRODUCED" } else { "NOT REPRODUCED" }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
