//! The perf regression gate: compare a fresh `BENCH_profile.json` against
//! a checked-in baseline under explicit per-stage tolerances.
//!
//! Profiles are in *virtual time*, so the numbers are byte-deterministic
//! for a fixed seed: a "regression" here is a code change that made a
//! stage genuinely cost more simulated time (extra hops, extra retries,
//! longer waits), not scheduler noise. That is exactly what a gate should
//! catch — and why the gate can afford to be strict.
//!
//! All parsing is hand-rolled and line-based (the workspace has no JSON
//! dependency): `claim_profile` writes one cell header / one stage object
//! per line with a fixed key order, and this module reads exactly that
//! shape back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed profile: `(cell, stage) → p95_us`.
pub type ProfileIndex = BTreeMap<(String, String), u64>;

/// Per-stage tolerance table: how much a stage's p95 may grow (percent)
/// before the gate fails.
#[derive(Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// Applied to any stage with no explicit entry.
    pub default_pct: f64,
    /// Stage-specific overrides (tighter for hot stages, looser for noisy
    /// composites).
    pub stages: BTreeMap<String, f64>,
}

impl Tolerances {
    /// The allowed growth for `stage`, percent.
    #[must_use]
    pub fn for_stage(&self, stage: &str) -> f64 {
        self.stages.get(stage).copied().unwrap_or(self.default_pct)
    }
}

/// Extract the string value of `"key": "…"` from a JSON-ish line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the numeric value of `"key": N` from a JSON-ish line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `BENCH_profile.json` into `(cell, stage) → p95_us`. Cell
/// headers (`"cell": "…"`) scope the stage lines that follow them.
#[must_use]
pub fn parse_profile(text: &str) -> ProfileIndex {
    let mut out = ProfileIndex::new();
    let mut cell = String::new();
    for line in text.lines() {
        if let Some(c) = str_field(line, "cell") {
            cell = c;
        }
        if let (Some(stage), Some(p95)) = (str_field(line, "stage"), num_field(line, "p95_us")) {
            out.insert((cell.clone(), stage), p95 as u64);
        }
    }
    out
}

/// Parse a `BENCH_scaling.json` (one object per line, a `"cell"` string
/// plus deterministic numeric counters) into `(cell, counter) → value`.
/// Every numeric field on a cell row becomes a gated stage, so new
/// counters join the gate without a parser change.
#[must_use]
pub fn parse_scaling(text: &str) -> ProfileIndex {
    let mut out = ProfileIndex::new();
    for line in text.lines() {
        let Some(cell) = str_field(line, "cell") else { continue };
        // quoted substrings alternate key/value; keys are the even ones
        for key in line.split('"').skip(1).step_by(2) {
            if key == "cell" {
                continue;
            }
            if let Some(v) = num_field(line, key) {
                out.insert((cell.clone(), key.to_string()), v as u64);
            }
        }
    }
    out
}

/// Parse a tolerance file: `{"default_pct": N, "stages": {"hop": N, …}}`.
/// Returns `None` when no `default_pct` is present (malformed file —
/// better to fail the gate than to silently wave regressions through).
#[must_use]
pub fn parse_tolerances(text: &str) -> Option<Tolerances> {
    let mut default_pct = None;
    let mut stages = BTreeMap::new();
    let mut in_stages = false;
    for line in text.lines() {
        if let Some(d) = num_field(line, "default_pct") {
            default_pct = Some(d);
        }
        if line.contains("\"stages\"") {
            in_stages = true;
            continue;
        }
        if in_stages {
            if line.contains('}') {
                in_stages = false;
                continue;
            }
            let trimmed = line.trim().trim_end_matches(',');
            if let Some(rest) = trimmed.strip_prefix('"') {
                if let Some((name, value)) = rest.split_once("\":") {
                    if let Ok(pct) = value.trim().parse::<f64>() {
                        stages.insert(name.to_string(), pct);
                    }
                }
            }
        }
    }
    Some(Tolerances { default_pct: default_pct?, stages })
}

/// One gate violation, human-readable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// `cell/stage` the violation is in.
    pub key: String,
    /// What went wrong.
    pub detail: String,
}

/// Compare `new` against `baseline` under `tol`. Violations: a baseline
/// stage that disappeared (instrumentation silently lost), or a stage
/// whose p95 grew beyond its tolerance. New stages are allowed — they
/// join the baseline on the next regeneration.
#[must_use]
pub fn gate(baseline: &ProfileIndex, new: &ProfileIndex, tol: &Tolerances) -> Vec<Violation> {
    let mut violations = Vec::new();
    for ((cell, stage), &base_p95) in baseline {
        let key = format!("{cell}/{stage}");
        match new.get(&(cell.clone(), stage.clone())) {
            None => violations.push(Violation {
                key,
                detail: "stage present in baseline but missing from the new profile".into(),
            }),
            Some(&new_p95) => {
                let pct = tol.for_stage(stage);
                let allowed = (base_p95 as f64 * (1.0 + pct / 100.0)).floor() as u64;
                if new_p95 > allowed {
                    violations.push(Violation {
                        key,
                        detail: format!(
                            "p95 regressed: {base_p95} µs → {new_p95} µs \
                             (allowed ≤ {allowed} µs at +{pct}%)"
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Render a gate report: every baseline stage with its verdict.
#[must_use]
pub fn report(baseline: &ProfileIndex, new: &ProfileIndex, tol: &Tolerances) -> String {
    let violations = gate(baseline, new, tol);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>8} {:>8}",
        "cell/stage", "base p95", "new p95", "tol", "verdict"
    );
    for ((cell, stage), &base_p95) in baseline {
        let key = format!("{cell}/{stage}");
        let new_p95 = new.get(&(cell.clone(), stage.clone()));
        let bad = violations.iter().any(|v| v.key == key);
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>7}% {:>8}",
            key,
            base_p95,
            new_p95.map_or("missing".to_string(), u64::to_string),
            tol.for_stage(stage),
            if bad { "FAIL" } else { "ok" }
        );
    }
    for v in &violations {
        let _ = writeln!(out, "VIOLATION {}: {}", v.key, v.detail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROFILE: &str = r#"{
"cells": [
{"cell": "basic/lossless", "stages": [
{"stage": "deliver", "count": 10, "p50_us": 100, "p95_us": 200, "p99_us": 210},
{"stage": "hop", "count": 9, "p50_us": 1000, "p95_us": 2000, "p99_us": 2100}
]},
{"cell": "tfc/hostile", "stages": [
{"stage": "hop", "count": 9, "p50_us": 1500, "p95_us": 3000, "p99_us": 3100}
]}
]
}"#;

    const TOLERANCES: &str = r#"{
  "default_pct": 25,
  "stages": {
    "hop": 10
  }
}"#;

    const SCALING: &str = r#"[
  {"cell": "n=1", "sigs": 2, "seq_ec_ops": 1000, "batch_ec_ops": 700, "canon_bytes": 512, "arena_steady_alloc": 0},
  {"cell": "n=8", "sigs": 9, "seq_ec_ops": 4500, "batch_ec_ops": 1500, "canon_bytes": 2048, "arena_steady_alloc": 0}
]"#;

    #[test]
    fn parses_scaling_cells() {
        let idx = parse_scaling(SCALING);
        assert_eq!(idx.len(), 10, "2 cells × 5 counters");
        assert_eq!(idx[&("n=1".to_string(), "seq_ec_ops".to_string())], 1000);
        assert_eq!(idx[&("n=8".to_string(), "batch_ec_ops".to_string())], 1500);
        assert_eq!(idx[&("n=8".to_string(), "arena_steady_alloc".to_string())], 0);
    }

    #[test]
    fn scaling_gate_catches_ec_op_regressions() {
        let base = parse_scaling(SCALING);
        let tol = Tolerances { default_pct: 0.0, stages: BTreeMap::new() };
        assert_eq!(gate(&base, &base, &tol), vec![]);
        let worse =
            parse_scaling(&SCALING.replace("\"batch_ec_ops\": 1500", "\"batch_ec_ops\": 1501"));
        let violations = gate(&base, &worse, &tol);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].key, "n=8/batch_ec_ops");
        // a dropped counter (e.g. running without --batch) is a violation too
        let missing = parse_scaling(&SCALING.replace(" \"batch_ec_ops\": 1500,", ""));
        assert_eq!(gate(&base, &missing, &tol).len(), 1);
    }

    #[test]
    fn parses_cells_and_stages() {
        let idx = parse_profile(PROFILE);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[&("basic/lossless".to_string(), "deliver".to_string())], 200);
        assert_eq!(idx[&("tfc/hostile".to_string(), "hop".to_string())], 3000);
    }

    #[test]
    fn parses_tolerances_with_overrides() {
        let tol = parse_tolerances(TOLERANCES).unwrap();
        assert!((tol.default_pct - 25.0).abs() < f64::EPSILON);
        assert!((tol.for_stage("hop") - 10.0).abs() < f64::EPSILON);
        assert!((tol.for_stage("deliver") - 25.0).abs() < f64::EPSILON);
        assert_eq!(parse_tolerances("{}"), None, "missing default_pct is malformed");
    }

    #[test]
    fn identical_profiles_pass() {
        let idx = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        assert_eq!(gate(&idx, &idx, &tol), vec![]);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        // hop tolerance is 10%: 2000 → 2200 is the limit, 2201 must fail
        let ok = parse_profile(&PROFILE.replace("\"p95_us\": 2000", "\"p95_us\": 2200"));
        assert_eq!(gate(&base, &ok, &tol), vec![]);
        let bad = parse_profile(&PROFILE.replace("\"p95_us\": 2000", "\"p95_us\": 2201"));
        let violations = gate(&base, &bad, &tol);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].key, "basic/lossless/hop");
        assert!(violations[0].detail.contains("2201"));
    }

    #[test]
    fn within_default_tolerance_passes() {
        let base = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        // deliver has no override: 25% of 200 → up to 250 passes
        let grown = parse_profile(&PROFILE.replace("\"p95_us\": 200,", "\"p95_us\": 250,"));
        assert_eq!(gate(&base, &grown, &tol), vec![]);
        let too_big = parse_profile(&PROFILE.replace("\"p95_us\": 200,", "\"p95_us\": 251,"));
        assert_eq!(gate(&base, &too_big, &tol).len(), 1);
    }

    #[test]
    fn missing_stage_fails() {
        let base = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        let gone = parse_profile(
            &PROFILE
                .replace("{\"stage\": \"deliver\", \"count\": 10, \"p50_us\": 100, \"p95_us\": 200, \"p99_us\": 210},\n", ""),
        );
        let violations = gate(&base, &gone, &tol);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("missing"));
    }

    #[test]
    fn new_stages_are_allowed() {
        let base = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        let mut new = base.clone();
        new.insert(("basic/lossless".into(), "journal_commit".into()), 500);
        assert_eq!(gate(&base, &new, &tol), vec![]);
    }

    #[test]
    fn report_renders_every_stage() {
        let idx = parse_profile(PROFILE);
        let tol = parse_tolerances(TOLERANCES).unwrap();
        let rendered = report(&idx, &idx, &tol);
        assert_eq!(rendered.lines().count(), 4, "header + 3 stages, no violations");
        assert!(rendered.contains("basic/lossless/hop"));
    }
}
