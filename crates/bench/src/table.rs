//! Plain-text table rendering for the harness binaries — mirrors the layout
//! of the paper's Tables 1 and 2.

use crate::fig9::StepRecord;
use std::time::Duration;

fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Render Table 1 (basic operational model): α, β, Σ per step.
pub fn render_table1(records: &[StepRecord]) -> String {
    let mut out = String::new();
    out.push_str("TABLE 1. EXECUTION TIMES FOR THE WORKFLOW OF FIG. 9A (basic model)\n");
    out.push_str(&format!(
        "{:<10} {:>6} {:>6} {:>10} {:>10} {:>10}\n",
        "Document", "#sigs", "#CERs", "alpha(s)", "beta(s)", "size(B)"
    ));
    for r in records {
        out.push_str(&format!(
            "{:<10} {:>6} {:>6} {:>10} {:>10} {:>10}\n",
            r.label,
            r.sigs_verified,
            r.cers,
            secs(r.alpha_aea),
            secs(r.beta),
            r.size
        ));
    }
    out
}

/// Render Table 2 (advanced operational model): α (AEA+TFC), β, γ, Σ per
/// step, with the intermediate document size as its own row (as in the
/// paper, which lists both documents of each hop).
pub fn render_table2(records: &[StepRecord]) -> String {
    let mut out = String::new();
    out.push_str("TABLE 2. EXECUTION TIMES FOR THE WORKFLOW OF FIG. 9B (advanced model)\n");
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
        "Document", "#sigs", "#CERs", "alpha(s)", "beta(s)", "gamma(s)", "size(B)"
    ));
    for r in records {
        if let Some(inter) = r.size_intermediate {
            // the intermediate (AEA → TFC) document row
            out.push_str(&format!(
                "{:<14} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                format!("{}~", r.label),
                r.sigs_verified,
                r.cers.saturating_sub(0),
                secs(r.alpha_aea),
                secs(r.beta),
                "-",
                inter
            ));
        }
        let alpha_total = r.alpha_aea + r.alpha_tfc.unwrap_or(Duration::ZERO);
        out.push_str(&format!(
            "{:<14} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            r.label,
            r.sigs_verified,
            r.cers,
            secs(alpha_total),
            secs(r.beta),
            r.gamma.map(secs).unwrap_or_else(|| "-".into()),
            r.size
        ));
    }
    out
}

/// Averages several trace runs element-wise (duration fields only; counts
/// and sizes must agree across runs and are taken from the first).
pub fn average_traces(runs: &[Vec<StepRecord>]) -> Vec<StepRecord> {
    assert!(!runs.is_empty());
    let steps = runs[0].len();
    (0..steps)
        .map(|i| {
            let mut r = runs[0][i].clone();
            let n = runs.len() as u32;
            r.alpha_aea = runs.iter().map(|run| run[i].alpha_aea).sum::<Duration>() / n;
            r.beta = runs.iter().map(|run| run[i].beta).sum::<Duration>() / n;
            if r.alpha_tfc.is_some() {
                r.alpha_tfc = Some(
                    runs.iter().map(|run| run[i].alpha_tfc.unwrap_or_default()).sum::<Duration>()
                        / n,
                );
                r.gamma = Some(
                    runs.iter().map(|run| run[i].gamma.unwrap_or_default()).sum::<Duration>() / n,
                );
            }
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &str, alpha_ms: u64) -> StepRecord {
        StepRecord {
            label: label.into(),
            cers: 1,
            sigs_verified: 2,
            alpha_aea: Duration::from_millis(alpha_ms),
            beta: Duration::from_millis(1),
            alpha_tfc: None,
            gamma: None,
            size_intermediate: None,
            size: 1000,
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render_table1(&[rec("Initial", 0), rec("X_A(0)", 3)]);
        assert!(t.contains("Initial"));
        assert!(t.contains("X_A(0)"));
        assert!(t.contains("1000"));
    }

    #[test]
    fn averaging() {
        let a = vec![rec("x", 2)];
        let b = vec![rec("x", 4)];
        let avg = average_traces(&[a, b]);
        assert_eq!(avg[0].alpha_aea, Duration::from_millis(3));
    }
}
