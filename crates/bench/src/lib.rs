//! # dra-bench — workloads and harnesses for the paper's evaluation
//!
//! Shared by the table-regeneration binaries (`src/bin/*.rs`) and the
//! Criterion benches (`benches/*.rs`). The central piece is
//! [`fig9::run_fig9_trace`], which executes the exact step sequence of the
//! paper's experiments (Fig. 9A/9B: sequence, AND-split/join, one loop
//! iteration) while timing each phase at the same boundaries as Tables 1–2:
//!
//! * **α** — time for the AEA (and TFC in the advanced model) to decrypt
//!   cipher data and verify digital signatures on receive,
//! * **β** — time for the AEA to encrypt the result and embed signatures,
//! * **γ** — time for the TFC to re-encrypt, timestamp and sign,
//! * **Σ** — the size of the generated document in bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod fig9;
pub mod table;

pub use fig9::{run_fig9_trace, StepRecord};
