//! # dra-bench — workloads and harnesses for the paper's evaluation
//!
//! Shared by the table-regeneration binaries (`src/bin/*.rs`) and the
//! Criterion benches (`benches/*.rs`). The central piece is
//! [`fig9::run_fig9_trace`], which executes the exact step sequence of the
//! paper's experiments (Fig. 9A/9B: sequence, AND-split/join, one loop
//! iteration) while timing each phase at the same boundaries as Tables 1–2:
//!
//! * **α** — time for the AEA (and TFC in the advanced model) to decrypt
//!   cipher data and verify digital signatures on receive,
//! * **β** — time for the AEA to encrypt the result and embed signatures,
//! * **γ** — time for the TFC to re-encrypt, timestamp and sign,
//! * **Σ** — the size of the generated document in bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod fig9;
pub mod fuzz;
pub mod perfgate;
pub mod table;

pub use fig9::{run_fig9_trace, StepRecord};

/// End-of-bin metric gate shared by every `claim_*` binary: run the
/// cross-layer accounting invariants on whatever the bin recorded and exit
/// nonzero on a violation. Bins that never touch the delivery layer still
/// pass through here — the invariants degrade gracefully when the
/// delivery/alert counters are absent, and the call keeps every bin honest
/// about the books it *does* keep.
pub fn enforce_metric_invariants(metrics: &dra_obs::MetricsRegistry) {
    match dra_cloud::check_metric_invariants(&metrics.snapshot()) {
        Ok(()) => println!("metric invariants: ok"),
        Err(e) => {
            eprintln!("metric invariants VIOLATED: {e}");
            std::process::exit(1);
        }
    }
}
