//! The paper's experimental workflow (Fig. 9) and its measured trace.

use dra4wfms_core::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured step of the Fig. 9 trace (one activity execution). The
/// initial document is represented by a pseudo-step with zero timings.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Paper-style label: `Initial`, `X_A(0)`, `X_B1(0)` …
    pub label: String,
    /// CERs in the document *after* this step.
    pub cers: usize,
    /// Signatures verified on receive (the paper's "number of signatures to
    /// verify").
    pub sigs_verified: usize,
    /// Decrypt + verify time in the AEA (α).
    pub alpha_aea: Duration,
    /// Encrypt + embed-signature time in the AEA (β).
    pub beta: Duration,
    /// Decrypt + verify time in the TFC (advanced model; part of α).
    pub alpha_tfc: Option<Duration>,
    /// Encrypt + timestamp + sign time in the TFC (γ).
    pub gamma: Option<Duration>,
    /// Size of the intermediate (TFC-bound) document, advanced model.
    pub size_intermediate: Option<usize>,
    /// Size of the produced document in bytes (Σ).
    pub size: usize,
}

/// The deterministic cast of Fig. 9.
pub fn cast() -> (Vec<Credentials>, Directory) {
    let creds: Vec<Credentials> = ["designer", "p_a", "p_b1", "p_b2", "p_c", "p_d", "TFC"]
        .iter()
        .map(|n| Credentials::from_seed(*n, &format!("fig9-bench-{n}")))
        .collect();
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

/// The Fig. 9 workflow definition (9A when `advanced` is false, 9B when
/// true).
pub fn definition(advanced: bool) -> WorkflowDefinition {
    let b = WorkflowDefinition::builder("fig9", "designer")
        .simple_activity("A", "p_a", &["attachment"])
        .activity(Activity {
            id: "B1".into(),
            participant: "p_b1".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("A", "attachment")],
            responses: vec!["review1".into()],
        })
        .activity(Activity {
            id: "B2".into(),
            participant: "p_b2".into(),
            join: JoinKind::Any,
            requests: vec![FieldRef::new("A", "attachment")],
            responses: vec!["review2".into()],
        })
        .activity(Activity {
            id: "C".into(),
            participant: "p_c".into(),
            join: JoinKind::All,
            requests: vec![FieldRef::new("B1", "review1"), FieldRef::new("B2", "review2")],
            responses: vec!["decision".into()],
        })
        .simple_activity("D", "p_d", &["ack"])
        .flow("A", "B1")
        .flow("A", "B2")
        .flow("B1", "C")
        .flow("B2", "C")
        .flow_if("C", "A", Condition::field_equals("C", "decision", "insufficient"))
        .flow_if("C", "D", Condition::field_not_equals("C", "decision", "insufficient"))
        .flow_end("D");
    if advanced { b.with_tfc("TFC") } else { b }.build().expect("fig9 definition")
}

/// Element-wise encryption policy used in the measurements: the attachment
/// and the reviews are confidential, the decision is shared with every
/// participant (it steers the loop).
pub fn policy(def: &WorkflowDefinition, advanced: bool) -> SecurityPolicy {
    let p = SecurityPolicy::builder()
        .restrict("A", "attachment", &["p_b1", "p_b2", "p_c"])
        .restrict("B1", "review1", &["p_c"])
        .restrict("B2", "review2", &["p_c"])
        .restrict("C", "decision", &["p_a", "p_b1", "p_b2", "p_c", "p_d"])
        .build();
    if advanced {
        p.with_tfc_access("TFC", def)
    } else {
        p
    }
}

struct Harness {
    agents: HashMap<String, Aea>,
    tfc: Option<TfcServer>,
}

impl Harness {
    fn new(dir: &Directory, creds: &[Credentials], advanced: bool) -> Harness {
        let agents =
            creds.iter().map(|c| (c.name.clone(), Aea::new(c.clone(), dir.clone()))).collect();
        let tfc = advanced.then(|| {
            let tfc_creds = creds.iter().find(|c| c.name == "TFC").expect("TFC creds");
            TfcServer::with_clock(tfc_creds.clone(), dir.clone(), Arc::new(|| 1_700_000_000_000))
        });
        Harness { agents, tfc }
    }

    /// Execute one activity (basic or advanced), timing each phase.
    fn step(
        &self,
        label: &str,
        participant: &str,
        activity: &str,
        inputs: &[&str],
        responses: &[(String, String)],
    ) -> (StepRecord, String) {
        let aea = &self.agents[participant];

        let t0 = Instant::now();
        let received = if inputs.len() == 1 {
            aea.receive(inputs[0], activity)
        } else {
            aea.receive_merged(inputs, activity)
        }
        .unwrap_or_else(|e| panic!("receive {label}: {e}"));
        let alpha_aea = t0.elapsed();
        let sigs_verified = received.report.signatures_verified;

        match &self.tfc {
            None => {
                let t1 = Instant::now();
                let done = aea
                    .complete(&received, responses)
                    .unwrap_or_else(|e| panic!("complete {label}: {e}"));
                let beta = t1.elapsed();
                let xml = done.document.to_xml_string();
                (
                    StepRecord {
                        label: label.to_string(),
                        cers: done.document.cers().unwrap().len(),
                        sigs_verified,
                        alpha_aea,
                        beta,
                        alpha_tfc: None,
                        gamma: None,
                        size_intermediate: None,
                        size: xml.len(),
                    },
                    xml,
                )
            }
            Some(tfc) => {
                let t1 = Instant::now();
                let inter = aea
                    .complete_via_tfc(&received, responses)
                    .unwrap_or_else(|e| panic!("complete_via_tfc {label}: {e}"));
                let beta = t1.elapsed();
                let inter_xml = inter.document.to_xml_string();

                let t2 = Instant::now();
                let tfc_recv =
                    tfc.receive(&inter_xml).unwrap_or_else(|e| panic!("tfc receive {label}: {e}"));
                let alpha_tfc = t2.elapsed();

                let t3 = Instant::now();
                let finalized =
                    tfc.finalize(&tfc_recv).unwrap_or_else(|e| panic!("tfc finalize {label}: {e}"));
                let gamma = t3.elapsed();
                let xml = finalized.document.to_xml_string();
                (
                    StepRecord {
                        label: label.to_string(),
                        cers: finalized.document.cers().unwrap().len(),
                        sigs_verified,
                        alpha_aea,
                        beta,
                        alpha_tfc: Some(alpha_tfc),
                        gamma: Some(gamma),
                        size_intermediate: Some(inter_xml.len()),
                        size: xml.len(),
                    },
                    xml,
                )
            }
        }
    }
}

fn resp(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

/// Execute the exact Fig. 9 trace of the paper's experiments (loop taken
/// once): A, B1, B2, C(insufficient), A, B1, B2, C(accept), D — returning
/// one record per document produced, with the initial document first.
pub fn run_fig9_trace(advanced: bool) -> Vec<StepRecord> {
    let (creds, dir) = cast();
    let def = definition(advanced);
    let pol = policy(&def, advanced);
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "fig9-bench")
        .expect("initial document");
    let harness = Harness::new(&dir, &creds, advanced);

    let mut records = vec![StepRecord {
        label: "Initial".into(),
        cers: 0,
        sigs_verified: 0,
        alpha_aea: Duration::ZERO,
        beta: Duration::ZERO,
        alpha_tfc: None,
        gamma: None,
        size_intermediate: None,
        size: initial.size_bytes(),
    }];

    let x0 = initial.to_xml_string();
    let (r, a0) =
        harness.step("X_A(0)", "p_a", "A", &[&x0], &resp(&[("attachment", "contract-draft.pdf")]));
    records.push(r);
    let (r, b1_0) =
        harness.step("X_B1(0)", "p_b1", "B1", &[&a0], &resp(&[("review1", "figures look right")]));
    records.push(r);
    let (r, b2_0) =
        harness.step("X_B2(0)", "p_b2", "B2", &[&a0], &resp(&[("review2", "terms acceptable")]));
    records.push(r);
    let (r, c0) =
        harness.step("X_C(0)", "p_c", "C", &[&b1_0, &b2_0], &resp(&[("decision", "insufficient")]));
    records.push(r);
    let (r, a1) =
        harness.step("X_A(1)", "p_a", "A", &[&c0], &resp(&[("attachment", "contract-final.pdf")]));
    records.push(r);
    let (r, b1_1) = harness.step("X_B1(1)", "p_b1", "B1", &[&a1], &resp(&[("review1", "ok now")]));
    records.push(r);
    let (r, b2_1) = harness.step("X_B2(1)", "p_b2", "B2", &[&a1], &resp(&[("review2", "ok now")]));
    records.push(r);
    let (r, c1) =
        harness.step("X_C(1)", "p_c", "C", &[&b1_1, &b2_1], &resp(&[("decision", "accept")]));
    records.push(r);
    let (r, _d0) =
        harness.step("X_D(0)", "p_d", "D", &[&c1], &resp(&[("ack", "purchase confirmed")]));
    records.push(r);
    records
}

/// Produce the intermediate documents of a full Fig. 9B run (one per step)
/// — workload for TFC throughput benches.
pub fn fig9b_intermediate_documents() -> Vec<String> {
    let (creds, dir) = cast();
    let def = definition(true);
    let pol = policy(&def, true);
    let initial = DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "fig9-tfc")
        .expect("initial document");
    let harness = Harness::new(&dir, &creds, true);
    let tfc = harness.tfc.as_ref().expect("advanced");

    let mut inters = Vec::new();
    let mut advance = |participant: &str,
                       activity: &str,
                       inputs: &[&str],
                       responses: &[(String, String)]|
     -> String {
        let aea = &harness.agents[participant];
        let received = if inputs.len() == 1 {
            aea.receive(inputs[0], activity)
        } else {
            aea.receive_merged(inputs, activity)
        }
        .expect("receive");
        let inter = aea.complete_via_tfc(&received, responses).expect("complete");
        let inter_xml = inter.document.to_xml_string();
        inters.push(inter_xml.clone());
        tfc.process(&inter_xml).expect("tfc").document.to_xml_string()
    };

    let x0 = initial.to_xml_string();
    let a0 = advance("p_a", "A", &[&x0], &resp(&[("attachment", "v0")]));
    let b1 = advance("p_b1", "B1", &[&a0], &resp(&[("review1", "r")]));
    let b2 = advance("p_b2", "B2", &[&a0], &resp(&[("review2", "r")]));
    let c0 = advance("p_c", "C", &[&b1, &b2], &resp(&[("decision", "insufficient")]));
    let a1 = advance("p_a", "A", &[&c0], &resp(&[("attachment", "v1")]));
    let b1 = advance("p_b1", "B1", &[&a1], &resp(&[("review1", "r")]));
    let b2 = advance("p_b2", "B2", &[&a1], &resp(&[("review2", "r")]));
    let c1 = advance("p_c", "C", &[&b1, &b2], &resp(&[("decision", "accept")]));
    let _ = advance("p_d", "D", &[&c1], &resp(&[("ack", "done")]));
    inters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_trace_shape() {
        let records = run_fig9_trace(false);
        assert_eq!(records.len(), 10, "initial + 9 steps");
        // CER counts: 0,1,2,2,4,5,6,6,8,9
        let cers: Vec<usize> = records.iter().map(|r| r.cers).collect();
        assert_eq!(cers, vec![0, 1, 2, 2, 4, 5, 6, 6, 8, 9]);
        // sizes strictly grow along a path (parallel branches may tie)
        assert!(records.last().unwrap().size > records[0].size * 2);
        // verify-count grows monotonically except at parallel twins
        let sigs: Vec<usize> = records.iter().map(|r| r.sigs_verified).collect();
        assert_eq!(sigs, vec![0, 1, 2, 2, 4, 5, 6, 6, 8, 9]);
    }

    #[test]
    fn table2_trace_shape() {
        let records = run_fig9_trace(true);
        assert_eq!(records.len(), 10);
        for r in &records[1..] {
            assert!(r.alpha_tfc.is_some());
            assert!(r.gamma.is_some());
            assert!(r.size_intermediate.is_some());
            assert!(r.size > r.size_intermediate.unwrap(), "final carries more than intermediate");
        }
        // advanced documents are larger than basic ones step for step
        let basic = run_fig9_trace(false);
        for (a, b) in records.iter().zip(basic.iter()).skip(1) {
            assert!(a.size > b.size, "{}: {} > {}", a.label, a.size, b.size);
        }
    }

    #[test]
    fn intermediate_documents_produced() {
        let inters = fig9b_intermediate_documents();
        assert_eq!(inters.len(), 9);
        // each ends with an intermediate CER the TFC can process
        let (creds, dir) = cast();
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").unwrap().clone();
        let tfc = TfcServer::with_clock(tfc_creds, dir, Arc::new(|| 7));
        for xml in &inters {
            tfc.process(xml).expect("every intermediate processable");
        }
    }
}
