//! Differential fuzzing harness over the workflow-pattern catalogue.
//!
//! A seeded generator composes random definitions from the full pattern
//! set — sequences, AND-splits with synchronizing joins, exclusive choices,
//! OR-joins (synchronizing merges), multi-instance activities with static
//! and runtime cardinality, and cancellation regions. Every generated
//! definition is:
//!
//! 1. proven sound by [`dra4wfms_core::soundness::check_soundness`] (the
//!    generator only composes well-structured blocks, so this doubles as a
//!    regression test of the analysis itself — a false rejection here is a
//!    soundness bug);
//! 2. executed through **both operational models** (basic AEA cascade and
//!    advanced TFC finalization) under an honest channel, a hostile
//!    [`FaultProfile`] and a seeded [`CrashPlan`], via the event-driven
//!    [`Scheduler`](dra_cloud::Scheduler) (`InstanceRun::run`);
//! 3. differential-checked: every run's final document verifies and
//!    reconciles against its span trace, fault and crash runs converge to
//!    the byte-identical document and pool digest of the honest run, and
//!    the cross-layer metric invariants hold in every cell;
//! 4. attacked: seeded forgeries (signature bit-flips, phantom CERs,
//!    reordered/forged/fabricated trace events) must every one be caught;
//! 5. poisoned: an unsound twin of the definition (a synchronizing join
//!    downgraded to an AND-join over exclusive branches) must be rejected
//!    at admission with [`WfError::Unsound`].
//!
//! Everything is virtual-time and seed-deterministic: the same seed always
//! produces the same definition, the same runs and the same report bytes.

use dra4wfms_core::prelude::*;
use dra4wfms_core::soundness::{check_soundness, SoundnessError};
use dra_cloud::{
    check_metric_invariants, tracer_for, CloudSystem, CrashPlan, CrashPoint, Delivery,
    DeliveryPolicy, FaultProfile, InstanceRun, NetworkSim, Scheduler,
};
use dra_obs::{MetricsRegistry, TraceEvent};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Non-designer participants the generator round-robins activities over.
pub const CAST: usize = 4;

/// A generated workflow plus the deterministic script that drives it.
pub struct GeneratedWorkflow {
    /// Generator seed (also drives the fault/crash schedules downstream).
    pub seed: u64,
    /// The definition, basic model (no TFC).
    pub def: WorkflowDefinition,
    /// `activity → response fields` — same responses on every iteration.
    pub script: BTreeMap<String, Vec<(String, String)>>,
}

/// The deterministic cast shared by every generated workflow: a designer,
/// `CAST` participants and a TFC.
pub fn cast() -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "fuzz-designer")];
    for i in 0..CAST {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("fuzz-p{i}")));
    }
    creds.push(Credentials::from_seed("TFC", "fuzz-TFC"));
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

fn aid(n: &mut usize) -> String {
    let id = format!("S{:02}", *n);
    *n += 1;
    id
}

fn participant(id: &str) -> String {
    // stable assignment from the activity number, independent of segment mix
    let n: usize = id[1..].parse().unwrap_or(0);
    format!("p{}", n % CAST)
}

/// Generate one pattern-rich workflow from `seed`. The composition is
/// well-structured (each segment has one entry and one exit), so every
/// generated definition is sound by construction.
pub fn generate(seed: u64) -> GeneratedWorkflow {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut n = 0usize;
    let mut script: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    let mut b = WorkflowDefinition::builder(format!("fuzz-{seed:04}"), "designer");

    // start activity
    let start = aid(&mut n);
    b = b.simple_activity(&start, participant(&start), &["f"]);
    script.insert(start.clone(), vec![("f".into(), format!("v{}", seed % 89))]);
    let mut exit = start;

    let segments = 2 + (rng.gen_range(0usize..3)); // 2..=4
    for _ in 0..segments {
        let kind = rng.gen_range(0u32..10);
        match kind {
            // plain sequence step
            0..=2 => {
                let x = aid(&mut n);
                b = b.simple_activity(&x, participant(&x), &["f"]);
                script
                    .insert(x.clone(), vec![("f".into(), format!("s{}", rng.gen_range(0u32..97)))]);
                b = b.flow(&exit, &x);
                exit = x;
            }
            // AND-split into 2–3 branches, synchronized by an AND-join
            3..=4 => {
                let fork = aid(&mut n);
                b = b.simple_activity(&fork, participant(&fork), &["f"]);
                script.insert(fork.clone(), vec![("f".into(), "fork".into())]);
                b = b.flow(&exit, &fork);
                let branches = 2 + rng.gen_range(0usize..2);
                let mut ids = Vec::new();
                for _ in 0..branches {
                    let br = aid(&mut n);
                    b = b.simple_activity(&br, participant(&br), &["f"]);
                    script.insert(br.clone(), vec![("f".into(), "br".into())]);
                    b = b.flow(&fork, &br);
                    ids.push(br);
                }
                let join = aid(&mut n);
                b = b.activity(Activity {
                    id: join.clone(),
                    participant: participant(&join),
                    join: JoinKind::All,
                    requests: vec![],
                    responses: vec!["f".into()],
                });
                script.insert(join.clone(), vec![("f".into(), "joined".into())]);
                for br in &ids {
                    b = b.flow(br, &join);
                }
                exit = join;
            }
            // exclusive choice steered by a response field, merged by Any
            5..=6 => {
                let fork = aid(&mut n);
                b = b.simple_activity(&fork, participant(&fork), &["f", "pick"]);
                let pick = if rng.gen::<bool>() { "left" } else { "right" };
                script.insert(
                    fork.clone(),
                    vec![("f".into(), "fork".into()), ("pick".into(), pick.into())],
                );
                b = b.flow(&exit, &fork);
                let l = aid(&mut n);
                let r = aid(&mut n);
                b = b.simple_activity(&l, participant(&l), &["f"]);
                b = b.simple_activity(&r, participant(&r), &["f"]);
                script.insert(l.clone(), vec![("f".into(), "L".into())]);
                script.insert(r.clone(), vec![("f".into(), "R".into())]);
                b = b.flow_if(&fork, &l, Condition::field_equals(&fork, "pick", "left"));
                b = b.flow_if(&fork, &r, Condition::field_not_equals(&fork, "pick", "left"));
                let join = aid(&mut n);
                b = b.activity(Activity {
                    id: join.clone(),
                    participant: participant(&join),
                    join: JoinKind::Any,
                    requests: vec![],
                    responses: vec!["f".into()],
                });
                script.insert(join.clone(), vec![("f".into(), "merged".into())]);
                b = b.flow(&l, &join).flow(&r, &join);
                exit = join;
            }
            // parallel (or partially conditional) branches into an OR-join
            7 => {
                let fork = aid(&mut n);
                let conditional = rng.gen::<bool>();
                if conditional {
                    b = b.simple_activity(&fork, participant(&fork), &["f", "go"]);
                    let go = if rng.gen::<bool>() { "yes" } else { "no" };
                    script.insert(
                        fork.clone(),
                        vec![("f".into(), "fork".into()), ("go".into(), go.into())],
                    );
                } else {
                    b = b.simple_activity(&fork, participant(&fork), &["f"]);
                    script.insert(fork.clone(), vec![("f".into(), "fork".into())]);
                }
                b = b.flow(&exit, &fork);
                // asymmetric branches: the short one announces the join
                // while the long one still has a queued activation, so the
                // OR-join genuinely parks and is resumed by the late branch
                let l = aid(&mut n);
                let r1 = aid(&mut n);
                let r2 = aid(&mut n);
                b = b.simple_activity(&l, participant(&l), &["f"]);
                b = b.simple_activity(&r1, participant(&r1), &["f"]);
                b = b.simple_activity(&r2, participant(&r2), &["f"]);
                script.insert(l.clone(), vec![("f".into(), "L".into())]);
                script.insert(r1.clone(), vec![("f".into(), "R1".into())]);
                script.insert(r2.clone(), vec![("f".into(), "R2".into())]);
                b = b.flow(&fork, &l);
                if conditional {
                    b = b.flow_if(&fork, &r1, Condition::field_equals(&fork, "go", "yes"));
                } else {
                    b = b.flow(&fork, &r1);
                }
                b = b.flow(&r1, &r2);
                let join = aid(&mut n);
                b = b.activity(Activity {
                    id: join.clone(),
                    participant: participant(&join),
                    join: JoinKind::Or,
                    requests: vec![],
                    responses: vec!["f".into()],
                });
                script.insert(join.clone(), vec![("f".into(), "or-merged".into())]);
                b = b.flow(&l, &join).flow(&r2, &join);
                exit = join;
            }
            // multi-instance activity, static or runtime cardinality
            8 => {
                if rng.gen::<bool>() {
                    let m = aid(&mut n);
                    let k = 2 + rng.gen_range(0u32..2); // 2..=3
                    b = b.simple_activity(&m, participant(&m), &["f"]);
                    script.insert(m.clone(), vec![("f".into(), "mi".into())]);
                    b = b.flow(&exit, &m).multi_static(&m, k);
                    exit = m;
                } else {
                    let p = aid(&mut n);
                    let m = aid(&mut n);
                    let k = 1 + rng.gen_range(0u32..3); // 1..=3
                    b = b.simple_activity(&p, participant(&p), &["f", "n"]);
                    script.insert(
                        p.clone(),
                        vec![("f".into(), "prod".into()), ("n".into(), k.to_string())],
                    );
                    b = b.simple_activity(&m, participant(&m), &["f"]);
                    script.insert(m.clone(), vec![("f".into(), "mi".into())]);
                    b = b.flow(&exit, &p).flow(&p, &m).multi_runtime(&m, &p, "n");
                    exit = m;
                }
            }
            // cancellation region: trigger withdraws a sibling branch
            _ => {
                let fork = aid(&mut n);
                b = b.simple_activity(&fork, participant(&fork), &["f"]);
                script.insert(fork.clone(), vec![("f".into(), "fork".into())]);
                b = b.flow(&exit, &fork);
                let trig = aid(&mut n);
                let victim = aid(&mut n);
                let conditional = rng.gen::<bool>();
                if conditional {
                    b = b.simple_activity(&trig, participant(&trig), &["f", "cond"]);
                    let cond = if rng.gen::<bool>() { "yes" } else { "no" };
                    script.insert(
                        trig.clone(),
                        vec![("f".into(), "trig".into()), ("cond".into(), cond.into())],
                    );
                } else {
                    b = b.simple_activity(&trig, participant(&trig), &["f"]);
                    script.insert(trig.clone(), vec![("f".into(), "trig".into())]);
                }
                b = b.simple_activity(&victim, participant(&victim), &["f"]);
                script.insert(victim.clone(), vec![("f".into(), "victim".into())]);
                // flow order decides which branch is announced (and thus
                // dispatched) first — cover both races
                if rng.gen::<bool>() {
                    b = b.flow(&fork, &trig).flow(&fork, &victim);
                } else {
                    b = b.flow(&fork, &victim).flow(&fork, &trig);
                }
                let join = aid(&mut n);
                b = b.activity(Activity {
                    id: join.clone(),
                    participant: participant(&join),
                    join: JoinKind::Or,
                    requests: vec![],
                    responses: vec!["f".into()],
                });
                script.insert(join.clone(), vec![("f".into(), "after-cancel".into())]);
                b = b.flow(&trig, &join).flow(&victim, &join);
                if conditional {
                    b = b.cancel_on_if(
                        &trig,
                        Condition::field_equals(&trig, "cond", "yes"),
                        &[&victim],
                    );
                } else {
                    b = b.cancel_on(&trig, &[&victim]);
                }
                exit = join;
            }
        }
    }

    let def = b.flow_end(&exit).build().expect("generated definition is structurally valid");
    GeneratedWorkflow { seed, def, script }
}

/// Downgrade a synchronizing/exclusive join of `def` to an AND-join over
/// branches that cannot all deliver — a *known-deadlocking* twin. Returns
/// `None` when the definition has no conditional join to poison.
pub fn poison(def: &WorkflowDefinition) -> Option<WorkflowDefinition> {
    let mut twin = def.clone();
    let target = twin
        .activities
        .iter()
        .find(|a| {
            a.join != JoinKind::All
                && twin.incoming(&a.id).len() >= 2
                && twin
                    .transitions
                    .iter()
                    .any(|t| t.condition.is_some() && t.to == Target::Activity(a.id.clone()))
        })?
        .id
        .clone();
    twin.activities.iter_mut().find(|a| a.id == target)?.join = JoinKind::All;
    Some(twin)
}

/// One execution channel of the differential matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Lossless channel, no crashes.
    Honest,
    /// [`FaultProfile::hostile`] — drops, duplicates, corruption,
    /// reordering, jitter.
    Hostile,
    /// Seeded agent crash mid-hop, repaired by lease takeover.
    Crash,
}

/// Everything one run leaves behind for differential checking.
pub struct RunArtifacts {
    /// Final document (verified before return).
    pub document: DraDocument,
    /// Final document wire bytes.
    pub wire: String,
    /// Content fingerprint of the pool's `doc/` rows.
    pub pool_fp: u64,
    /// Hops executed.
    pub steps: usize,
    /// Recorded span trace.
    pub events: Vec<TraceEvent>,
    /// Cross-layer metric invariant verdict for the cell.
    pub invariants: Result<(), String>,
    /// `sched.or_join_waits` for the cell.
    pub or_join_waits: u64,
    /// `sched.cancelled` for the cell.
    pub cancelled: u64,
}

/// Execute `gw` once through the scheduler under `variant`, in the basic
/// (`advanced = false`) or TFC-finalized (`advanced = true`) model.
pub fn run_generated(
    gw: &GeneratedWorkflow,
    advanced: bool,
    variant: Variant,
) -> Result<RunArtifacts, String> {
    let (creds, dir) = cast();
    let def = if advanced {
        let mut d = gw.def.clone();
        d.tfc = Some("TFC".into());
        d
    } else {
        gw.def.clone()
    };
    let network = Arc::new(NetworkSim::lan());
    let tracer = tracer_for(&network);
    let metrics = MetricsRegistry::new();
    let plan = if variant == Variant::Crash {
        CrashPlan::once(CrashPoint::AeaBeforeSign, 1 + gw.seed % 4)
    } else {
        CrashPlan::none()
    };
    let sys = CloudSystem::new(dir.clone(), 3, Arc::clone(&network))
        .with_crash_plan(Arc::clone(&plan))
        .with_tracer(tracer.clone());
    let delivery = if variant == Variant::Hostile {
        Delivery::new(
            Arc::clone(&network),
            FaultProfile::hostile(),
            DeliveryPolicy::default(),
            gw.seed,
        )
        .map_err(|e| format!("delivery: {e}"))?
    } else {
        Delivery::lossless(Arc::clone(&network))
    }
    .with_tracer(tracer.clone());
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| {
            let aea = Aea::new(c.clone(), dir.clone())
                .with_crash_hook(plan.hook())
                .with_tracer(tracer.clone());
            (c.name.clone(), Arc::new(aea))
        })
        .collect();
    let tfc = advanced.then(|| {
        let tfc_creds = creds.iter().find(|c| c.name == "TFC").expect("TFC creds").clone();
        TfcServer::with_clock(tfc_creds, dir.clone(), Arc::new(|| 1_000))
            .with_crash_hook(plan.hook())
            .with_tracer(tracer.clone())
    });
    let policy = if advanced {
        SecurityPolicy::public().with_tfc_access("TFC", &def)
    } else {
        SecurityPolicy::public()
    };
    let initial = DraDocument::new_initial_with_pid(
        &def,
        &policy,
        &creds[0],
        &format!("fuzz-{:04}", gw.seed),
    )
    .map_err(|e| format!("initial: {e}"))?;
    let script = gw.script.clone();
    let respond = move |r: &ReceivedActivity| script.get(&r.activity).cloned().unwrap_or_default();
    let mut run = InstanceRun::new(&sys, &initial)
        .agents(&agents)
        .respond(&respond)
        .max_steps(300)
        .network(&delivery)
        .tracer(tracer.clone())
        .metrics(&metrics);
    if let Some(server) = tfc.as_ref() {
        run = run.tfc(server);
    }
    let out = run.run().map_err(|e| format!("run ({variant:?}, advanced={advanced}): {e}"))?;
    Verifier::new(&dir)
        .run(out.document.document())
        .map_err(|e| format!("final document fails verification: {e}"))?;
    let snap = metrics.snapshot();
    Ok(RunArtifacts {
        wire: out.document.wire().as_ref().clone(),
        pool_fp: sys.pool.fingerprint("doc/"),
        steps: out.steps,
        events: tracer.events(),
        document: out.document.document().clone(),
        invariants: check_metric_invariants(&snap),
        or_join_waits: snap.counter("sched.or_join_waits"),
        cancelled: snap.counter("sched.cancelled"),
    })
}

/// Per-seed differential report — every field is seed-deterministic.
pub struct SeedReport {
    /// Generator seed.
    pub seed: u64,
    /// Activities in the generated definition.
    pub activities: usize,
    /// Hops of the honest basic-model run.
    pub hops_basic: u64,
    /// Hops of the honest advanced-model run.
    pub hops_advanced: u64,
    /// Reachability states the soundness proof explored.
    pub soundness_states: u64,
    /// OR-join parkings summed over the honest runs of both models.
    pub or_join_waits: u64,
    /// Cancellation withdrawals summed over the honest runs of both models.
    pub cancelled: u64,
    /// Forgeries injected.
    pub forgeries_tried: u64,
    /// Forgeries detected (must equal `forgeries_tried`).
    pub forgeries_caught: u64,
    /// Whether the poisoned (or canned) unsound twin was rejected both by
    /// the static analysis and at scheduler admission.
    pub unsound_rejected: bool,
    /// SHA-256 over the two honest final documents.
    pub outcome_sha256: String,
}

fn ok_hop_indices(events: &[TraceEvent]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.stage == dra_obs::stage::HOP && e.outcome == dra_obs::OUTCOME_OK)
        .map(|(i, _)| i)
        .collect()
}

/// A fixed deadlocking definition, used when [`poison`] finds nothing to
/// poison: an exclusive choice feeding an AND-join that waits forever for
/// the branch not taken.
pub fn canned_deadlock() -> WorkflowDefinition {
    WorkflowDefinition::builder("canned-deadlock", "designer")
        .simple_activity("A", "p0", &["x"])
        .simple_activity("B", "p1", &["y"])
        .simple_activity("C", "p2", &["z"])
        .activity(Activity {
            id: "J".into(),
            participant: "p3".into(),
            join: JoinKind::All,
            requests: vec![],
            responses: vec![],
        })
        .flow_if("A", "B", Condition::field_equals("A", "x", "b"))
        .flow_if("A", "C", Condition::field_not_equals("A", "x", "b"))
        .flow("B", "J")
        .flow("C", "J")
        .flow_end("J")
        .build()
        .expect("structurally valid")
}

/// Assert that `def` is rejected both statically and at scheduler
/// admission (typed as [`WfError::Unsound`]).
fn unsound_twin_rejected(def: &WorkflowDefinition) -> Result<bool, String> {
    if check_soundness(def).is_ok() {
        return Err(format!("unsound twin of '{}' passed the static analysis", def.name));
    }
    let (creds, dir) = cast();
    let network = Arc::new(NetworkSim::lan());
    let sys = CloudSystem::new(dir.clone(), 1, Arc::clone(&network));
    let agents: HashMap<String, Arc<Aea>> = creds
        .iter()
        .map(|c| (c.name.clone(), Arc::new(Aea::new(c.clone(), dir.clone()))))
        .collect();
    let initial = DraDocument::new_initial_with_pid(
        def,
        &SecurityPolicy::public(),
        &creds[0],
        "unsound-twin",
    )
    .map_err(|e| format!("unsound twin initial: {e}"))?;
    let respond = |_: &ReceivedActivity| Vec::new();
    let mut sched = Scheduler::new(&sys);
    match sched.admit_instance(InstanceRun::new(&sys, &initial).agents(&agents).respond(&respond)) {
        Err(WfError::Unsound(_)) => Ok(true),
        Err(e) => Err(format!("unsound twin rejected with the wrong error: {e}")),
        Ok(_) => Err("unsound twin was admitted".into()),
    }
}

/// Run the full differential matrix for one seed. `Err` means the harness
/// itself found a divergence — a real bug, not a caught forgery.
pub fn fuzz_seed(seed: u64) -> Result<SeedReport, String> {
    let gw = generate(seed);
    let sound = check_soundness(&gw.def)
        .map_err(|e: SoundnessError| format!("seed {seed}: generated definition unsound: {e}"))?;

    let mut honest: Vec<RunArtifacts> = Vec::new();
    for advanced in [false, true] {
        let base = run_generated(&gw, advanced, Variant::Honest)
            .map_err(|e| format!("seed {seed}: {e}"))?;
        reconcile(&base.events, &base.document)
            .map_err(|e| format!("seed {seed}: honest run fails reconciliation: {e}"))?;
        base.invariants
            .as_ref()
            .map_err(|e| format!("seed {seed}: metric invariants violated: {e}"))?;
        for variant in [Variant::Hostile, Variant::Crash] {
            let alt =
                run_generated(&gw, advanced, variant).map_err(|e| format!("seed {seed}: {e}"))?;
            reconcile(&alt.events, &alt.document)
                .map_err(|e| format!("seed {seed}: {variant:?} run fails reconciliation: {e}"))?;
            alt.invariants
                .as_ref()
                .map_err(|e| format!("seed {seed}: {variant:?} invariants violated: {e}"))?;
            if alt.wire != base.wire {
                return Err(format!(
                    "seed {seed}: {variant:?} run diverged from the honest document \
                     (advanced={advanced})"
                ));
            }
            if variant == Variant::Hostile && alt.pool_fp != base.pool_fp {
                return Err(format!(
                    "seed {seed}: hostile pool digest diverged (advanced={advanced})"
                ));
            }
        }
        honest.push(base);
    }

    // forgery battery against the honest basic-model run
    let base = &honest[0];
    let (_, dir) = cast();
    let mut tried = 0u64;
    let mut caught = 0u64;

    // 1. flip one signature hex digit — cascade verification must fail
    tried += 1;
    let cers = base.document.cers().map_err(|e| format!("seed {seed}: cers: {e}"))?;
    let sig_text = cers[ok_hop_indices(&base.events).len() % cers.len()]
        .participant_signature()
        .map_err(|e| format!("seed {seed}: signature: {e}"))?
        .text_content();
    let mut flipped = sig_text.clone();
    let c = flipped.remove(0);
    flipped.insert(0, if c == '0' { '1' } else { '0' });
    let forged_xml = base.wire.replace(&sig_text, &flipped);
    if forged_xml != base.wire {
        if DraDocument::parse(&forged_xml).map_or(true, |d| Verifier::new(&dir).run(&d).is_err()) {
            caught += 1;
        }
    } else {
        caught += 1; // degenerate signature; the replace found nothing to forge
    }

    // 2. phantom CER appended without a signature — verification must fail
    tried += 1;
    let mut phantom = base.document.clone();
    let last = cers.last().expect("non-empty cascade");
    phantom
        .push_cer(
            dra_xml::Element::new("CER")
                .attr("activity", last.key.activity.clone())
                .attr("iter", (last.key.iter + 1).to_string())
                .attr("participant", "mallory")
                .attr("preds", "Def")
                .child(dra_xml::Element::new("Result")),
        )
        .map_err(|e| format!("seed {seed}: push_cer: {e}"))?;
    if Verifier::new(&dir).run(&phantom).is_err() {
        caught += 1;
    }

    // 3–5. trace forgeries: reorder, actor swap, fabricated execution
    let hops = ok_hop_indices(&base.events);
    if hops.len() >= 2 {
        tried += 1;
        let mut ev = base.events.clone();
        ev.swap(hops[0], hops[1]);
        if reconcile(&ev, &base.document).is_err() {
            caught += 1;
        }
    }
    tried += 1;
    let mut ev = base.events.clone();
    ev[hops[0]].actor = "mallory".into();
    if reconcile(&ev, &base.document).is_err() {
        caught += 1;
    }
    tried += 1;
    let mut ev = base.events.clone();
    let mut fab = ev[*hops.last().expect("hops")].clone();
    fab.iter += 100;
    ev.push(fab);
    if reconcile(&ev, &base.document).is_err() {
        caught += 1;
    }

    // unsound twin: poisoned join when available, canned deadlock otherwise
    let twin = poison(&gw.def).unwrap_or_else(canned_deadlock);
    let unsound_rejected = unsound_twin_rejected(&twin).map_err(|e| format!("seed {seed}: {e}"))?;

    let mut finals = honest[0].wire.clone();
    finals.push_str(&honest[1].wire);
    Ok(SeedReport {
        seed,
        activities: gw.def.activities.len(),
        hops_basic: honest[0].steps as u64,
        hops_advanced: honest[1].steps as u64,
        soundness_states: sound.states_explored as u64,
        or_join_waits: honest[0].or_join_waits + honest[1].or_join_waits,
        cancelled: honest[0].cancelled + honest[1].cancelled,
        forgeries_tried: tried,
        forgeries_caught: caught,
        unsound_rejected,
        outcome_sha256: dra_crypto::hex::encode(&dra_crypto::sha256(finals.as_bytes())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in [0, 1, 17] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.def.to_xml().element_count(), b.def.to_xml().element_count());
            assert_eq!(a.script, b.script);
        }
    }

    #[test]
    fn generated_definitions_are_sound() {
        for seed in 0..16 {
            let gw = generate(seed);
            check_soundness(&gw.def)
                .unwrap_or_else(|e| panic!("seed {seed} generated an unsound def: {e}"));
        }
    }

    #[test]
    fn seeds_cover_the_pattern_set() {
        let mut multi = 0;
        let mut cancels = 0;
        let mut or_joins = 0;
        for seed in 0..32 {
            let gw = generate(seed);
            multi += gw.def.multi.len();
            cancels += gw.def.cancellations.len();
            or_joins += gw.def.activities.iter().filter(|a| a.join == JoinKind::Or).count();
        }
        assert!(multi > 0, "no multi-instance activity in 32 seeds");
        assert!(cancels > 0, "no cancellation region in 32 seeds");
        assert!(or_joins > 0, "no OR-join in 32 seeds");
    }

    #[test]
    fn poisoned_or_canned_twins_are_unsound() {
        for seed in 0..8 {
            let gw = generate(seed);
            let twin = poison(&gw.def).unwrap_or_else(canned_deadlock);
            assert!(check_soundness(&twin).is_err(), "seed {seed}: twin passed");
        }
    }

    #[test]
    fn one_full_differential_seed() {
        let report = fuzz_seed(3).expect("differential matrix clean");
        assert_eq!(report.forgeries_tried, report.forgeries_caught);
        assert!(report.unsound_rejected);
        assert!(report.hops_basic >= 3);
        assert_eq!(report.hops_basic, report.hops_advanced);
    }
}
