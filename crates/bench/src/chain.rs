//! Chain workloads of configurable length — for the scaling claims (C1):
//! verify time and document size grow with the number of CERs, while
//! encrypt+sign time stays constant.

use dra4wfms_core::prelude::*;
use dra_obs::Tracer;
use std::time::{Duration, Instant};

/// Per-step measurement of a chain run.
#[derive(Clone, Debug)]
pub struct ChainRecord {
    /// Step index (number of CERs before this step).
    pub step: usize,
    /// α: decrypt + verify on receive.
    pub alpha: Duration,
    /// β: encrypt + sign on complete.
    pub beta: Duration,
    /// Σ: document size after the step.
    pub size: usize,
    /// Signatures verified on receive.
    pub sigs_verified: usize,
    /// Elliptic-curve group operations spent in α (receive).
    pub ec_ops: u64,
    /// Bytes allocated for canonicalization in α (receive).
    pub canon_alloc: u64,
}

/// Deterministic cast of `n` chain participants (+ designer).
pub fn chain_cast(n: usize) -> (Vec<Credentials>, Directory) {
    let mut creds = vec![Credentials::from_seed("designer", "chain-designer")];
    for i in 0..n {
        creds.push(Credentials::from_seed(format!("p{i}"), &format!("chain-p{i}")));
    }
    let dir = Directory::from_credentials(&creds);
    (creds, dir)
}

/// A linear workflow of `n` activities; each response is restricted to the
/// next participant when `encrypted` (element-wise encryption on every hop).
pub fn chain_definition(n: usize) -> WorkflowDefinition {
    let mut b = WorkflowDefinition::builder("chain", "designer");
    for i in 0..n {
        b = b.simple_activity(format!("S{i}"), format!("p{i}"), &["payload"]);
    }
    for i in 0..n - 1 {
        b = b.flow(format!("S{i}"), format!("S{}", i + 1));
    }
    b.flow_end(format!("S{}", n - 1)).build().expect("chain definition")
}

/// Policy for the chain.
pub fn chain_policy(n: usize, encrypted: bool) -> SecurityPolicy {
    if !encrypted {
        return SecurityPolicy::public();
    }
    let mut pb = SecurityPolicy::builder();
    for i in 0..n {
        let next = format!("p{}", (i + 1).min(n - 1));
        pb = pb.restrict(format!("S{i}"), "payload", &[&next]);
    }
    pb.build()
}

/// Execute the full chain with per-signature verification, measuring each
/// step — the paper's baseline, where every hop re-serializes, re-parses
/// and re-verifies from scratch.
pub fn run_chain(n: usize, encrypted: bool, payload: &str) -> Vec<ChainRecord> {
    run_chain_with(n, encrypted, payload, false)
}

/// [`run_chain`] with the AEA's batched-verification knob exposed:
/// `batched = false` is the per-signature baseline, `batched = true`
/// checks each hop's whole cascade with one batch equation.
pub fn run_chain_with(n: usize, encrypted: bool, payload: &str, batched: bool) -> Vec<ChainRecord> {
    let (creds, dir) = chain_cast(n);
    let def = chain_definition(n);
    let pol = chain_policy(n, encrypted);
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "chain-run").expect("initial");
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone()).with_batched(batched);
        let xml = doc.to_xml_string();
        dra_crypto::ed25519::ec_ops_reset();
        dra_xml::canon_alloc_reset();
        let t0 = Instant::now();
        let received = aea.receive(&xml, &format!("S{i}")).expect("receive");
        let alpha = t0.elapsed();
        let ec_ops = dra_crypto::ed25519::ec_ops();
        let canon_alloc = dra_xml::canon_alloc_bytes();
        let sigs_verified = received.report.signatures_verified;
        let t1 = Instant::now();
        let done =
            aea.complete(&received, &[("payload".into(), payload.to_string())]).expect("complete");
        let beta = t1.elapsed();
        // drop the seal: this workload measures the full re-verify shape
        doc = done.document.into_document();
        records.push(ChainRecord {
            step: i,
            alpha,
            beta,
            size: doc.size_bytes(),
            sigs_verified,
            ec_ops,
            canon_alloc,
        });
    }
    records
}

/// Execute the full chain with sealed hand-offs: each hop passes the
/// [`SealedDocument`] (bytes + trust mark) to the next, so α covers only
/// the incremental re-check of the one new CER. The counterpart of
/// [`run_chain`] for the full-vs-incremental ablation.
pub fn run_chain_incremental(n: usize, encrypted: bool, payload: &str) -> Vec<ChainRecord> {
    run_chain_incremental_traced(n, encrypted, payload, &Tracer::disabled())
}

/// [`run_chain_incremental`] with every AEA recording spans into `tracer` —
/// the workload for the observability-overhead measurement (`claim_obs`)
/// and the `--trace-out` option of `claim_scaling`. Chains run on no
/// simulated network, so pair it with [`Tracer::sequential`] for a
/// deterministic logical-time trace, or [`Tracer::disabled`] to measure
/// the uninstrumented baseline.
pub fn run_chain_incremental_traced(
    n: usize,
    encrypted: bool,
    payload: &str,
    tracer: &Tracer,
) -> Vec<ChainRecord> {
    let (creds, dir) = chain_cast(n);
    let def = chain_definition(n);
    let pol = chain_policy(n, encrypted);
    let initial =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "chain-run").expect("initial");
    let mut sealed = SealedDocument::new(initial);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone()).with_tracer(tracer.clone());
        dra_crypto::ed25519::ec_ops_reset();
        dra_xml::canon_alloc_reset();
        let t0 = Instant::now();
        let received = aea.receive(sealed, &format!("S{i}")).expect("receive");
        let alpha = t0.elapsed();
        let ec_ops = dra_crypto::ed25519::ec_ops();
        let canon_alloc = dra_xml::canon_alloc_bytes();
        let sigs_verified = received.report.signatures_verified;
        let t1 = Instant::now();
        let done =
            aea.complete(&received, &[("payload".into(), payload.to_string())]).expect("complete");
        let beta = t1.elapsed();
        sealed = done.document;
        records.push(ChainRecord {
            step: i,
            alpha,
            beta,
            size: sealed.size_bytes(),
            sigs_verified,
            ec_ops,
            canon_alloc,
        });
    }
    records
}

/// Best-of-`reps` measurement of the full receive α at the last hop of an
/// `n`-step chain: the chain is executed once, then the final hand-off is
/// re-received `reps` times and the minimum taken — one-shot per-hop
/// timings are at the mercy of scheduler jitter, the minimum is not.
/// Returns `(best α, signatures verified per receive)`.
pub fn receive_alpha_best_of(
    n: usize,
    encrypted: bool,
    payload: &str,
    batched: bool,
    reps: usize,
) -> (Duration, usize) {
    let (creds, dir) = chain_cast(n);
    let def = chain_definition(n);
    let pol = chain_policy(n, encrypted);
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "chain-run").expect("initial");
    for i in 0..n - 1 {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let received = aea.receive(doc.to_xml_string(), &format!("S{i}")).expect("receive");
        doc = aea
            .complete(&received, &[("payload".into(), payload.to_string())])
            .expect("complete")
            .document
            .into_document();
    }
    let xml = doc.to_xml_string();
    let aea = Aea::new(creds[n].clone(), dir.clone()).with_batched(batched);
    let mut best = Duration::MAX;
    let mut sigs = 0;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let received = aea.receive(&xml, &format!("S{}", n - 1)).expect("receive");
        let dt = t.elapsed();
        sigs = received.report.signatures_verified;
        best = best.min(dt);
    }
    (best, sigs)
}

/// Build a finished chain document of `n` CERs (workload for verify benches).
pub fn finished_chain_document(n: usize, encrypted: bool) -> (String, Directory) {
    let (creds, dir) = chain_cast(n);
    let def = chain_definition(n);
    let pol = chain_policy(n, encrypted);
    let mut doc =
        DraDocument::new_initial_with_pid(&def, &pol, &creds[0], "chain-doc").expect("initial");
    for i in 0..n {
        let aea = Aea::new(creds[i + 1].clone(), dir.clone());
        let received = aea.receive(doc.to_xml_string(), &format!("S{i}")).expect("receive");
        doc = aea
            .complete(&received, &[("payload".into(), format!("data-{i}"))])
            .expect("complete")
            .document
            .into_document();
    }
    (doc.to_xml_string(), dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_runs_and_scales() {
        let records = run_chain(6, true, "x");
        assert_eq!(records.len(), 6);
        // sizes strictly increase
        assert!(records.windows(2).all(|w| w[1].size > w[0].size));
        // signature count grows by one per step
        let sigs: Vec<usize> = records.iter().map(|r| r.sigs_verified).collect();
        assert_eq!(sigs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn batched_chain_matches_sequential_chain() {
        let seq = run_chain_with(5, true, "x", false);
        let bat = run_chain_with(5, true, "x", true);
        assert_eq!(seq.len(), bat.len());
        for (s, b) in seq.iter().zip(bat.iter()) {
            assert_eq!(s.sigs_verified, b.sigs_verified, "step {}", s.step);
        }
        // the batch equation needs fewer group operations than n separate
        // double-scalar checks once the cascade is non-trivial
        let last = seq.len() - 1;
        assert!(
            bat[last].ec_ops < seq[last].ec_ops,
            "batched {} ops vs sequential {} ops",
            bat[last].ec_ops,
            seq[last].ec_ops
        );
    }

    #[test]
    fn finished_document_verifies() {
        let (xml, dir) = finished_chain_document(4, false);
        let doc = DraDocument::parse(&xml).unwrap();
        let report =
            dra4wfms_core::verify::Verifier::new(&dir).batched(false).run(&doc).unwrap().report;
        assert_eq!(report.cers.len(), 4);
    }
}
