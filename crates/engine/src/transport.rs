//! An SSL-like secure channel between a participant and an engine.
//!
//! The paper concedes that eavesdropping and in-flight alteration "can
//! easily be solved by applying common methods used to secure electronic
//! transactions with secure sockets, such as the SSL protocol — [but] such
//! methods still cannot guarantee the nonrepudiation requirement" (§1).
//!
//! This module makes that argument concrete: a channel established with an
//! ephemeral X25519 handshake and symmetric authenticated encryption
//! protects messages in transit, yet the engine stores the decrypted
//! plaintext — so the at-rest tampering of [`crate::engine::Superuser`] is
//! untouched by it.

use dra_crypto::sealed::{secretbox_open, secretbox_seal, SealError};
use dra_crypto::sha2::Sha256;
use dra_crypto::x25519::{X25519PublicKey, X25519Secret};

/// One endpoint of an established secure channel.
pub struct SecureChannel {
    key: [u8; 32],
}

/// Perform an (unauthenticated, SSL-handshake-like) key agreement and
/// return the two channel endpoints. In a real deployment certificates
/// authenticate the server; here both sides are returned directly.
pub fn handshake() -> (SecureChannel, SecureChannel) {
    let client = X25519Secret::generate();
    let server = X25519Secret::generate();
    let client_side = SecureChannel::derive(&client, &server.public_key());
    let server_side = SecureChannel::derive(&server, &client.public_key());
    (client_side, server_side)
}

impl SecureChannel {
    /// Derive a channel key from our secret and the peer's public key.
    pub fn derive(me: &X25519Secret, peer: &X25519PublicKey) -> SecureChannel {
        let shared = me.diffie_hellman(peer);
        let mut h = Sha256::new();
        h.update(b"dra4wfms.ssl-like.v1");
        h.update(&shared);
        SecureChannel { key: h.finalize() }
    }

    /// Encrypt + authenticate a message for the peer.
    pub fn send(&self, plaintext: &[u8]) -> Vec<u8> {
        secretbox_seal(&self.key, plaintext)
    }

    /// Decrypt + verify a message from the peer.
    pub fn recv(&self, wire: &[u8]) -> Result<Vec<u8>, SealError> {
        secretbox_open(&self.key, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip() {
        let (client, server) = handshake();
        let wire = client.send(b"execute activity A1: amount=100");
        assert_eq!(server.recv(&wire).unwrap(), b"execute activity A1: amount=100");
        // and the reverse direction
        let wire = server.send(b"ack");
        assert_eq!(client.recv(&wire).unwrap(), b"ack");
    }

    #[test]
    fn in_flight_tampering_detected() {
        let (client, server) = handshake();
        let mut wire = client.send(b"amount=100");
        let mid = wire.len() / 2;
        wire[mid] ^= 0x01;
        assert!(server.recv(&wire).is_err(), "SSL-like channel catches alteration in flight");
    }

    #[test]
    fn eavesdropper_without_key_fails() {
        let (client, _server) = handshake();
        let (_, eve) = handshake(); // unrelated channel
        let wire = client.send(b"secret");
        assert!(eve.recv(&wire).is_err());
    }

    /// The paper's point: transport security does NOT protect data at rest.
    #[test]
    fn transport_security_does_not_stop_superuser() {
        use crate::engine::WorkflowEngine;
        use dra4wfms_core::model::WorkflowDefinition;

        let def = WorkflowDefinition::builder("w", "designer")
            .simple_activity("a", "alice", &["amount"])
            .flow_end("a")
            .build()
            .unwrap();
        let engine = WorkflowEngine::new("e");
        let pid = engine.start_process(&def).unwrap();

        // alice submits over a protected channel…
        let (client, server) = handshake();
        let wire = client.send(b"100");
        let received = server.recv(&wire).unwrap();
        let amount = String::from_utf8(received).unwrap();
        engine.execute_activity(pid, "a", "alice", &[("amount".into(), amount)]).unwrap();

        // …but the engine stores plaintext, and the superuser rewrites it.
        engine.superuser().alter_result(pid, "a", "amount", "999999").unwrap();
        assert_eq!(engine.get_instance(pid).unwrap().field("a", "amount"), Some("999999"));
    }
}
