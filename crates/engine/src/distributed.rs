//! The engine-based *distributed* WfMS (Fig. 1B): multiple engines, process
//! instance migration, and the coherence protocol the paper identifies as
//! the scalability bottleneck.
//!
//! Each process instance has exactly one owning engine (single-primary
//! coherence). Executing an activity at a non-owner engine forces a
//! migration: the instance is removed from the owner, transferred (cost
//! proportional to its serialized size — the paper notes "the workflow
//! process instances must be transmitted during their execution"), and
//! installed at the requester. The global ownership map is the shared
//! structure every cross-engine access serializes on.

use crate::engine::{EngineError, WorkflowEngine};
use dra4wfms_core::flow::Route;
use dra4wfms_core::model::WorkflowDefinition;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A distributed engine-based WfMS deployment.
pub struct DistributedWfms {
    /// The engines (one per "location").
    pub engines: Vec<Arc<WorkflowEngine>>,
    /// pid → index of the owning engine. Every cross-engine execution takes
    /// this lock: the coherence bottleneck.
    ownership: Mutex<HashMap<u64, usize>>,
    /// Completed instance migrations.
    pub migrations: AtomicUsize,
    /// Total bytes "transferred" by migrations.
    pub migrated_bytes: AtomicUsize,
}

impl DistributedWfms {
    /// Create a deployment of `n` engines.
    pub fn new(n: usize) -> DistributedWfms {
        assert!(n >= 1, "need at least one engine");
        DistributedWfms {
            engines: (0..n).map(|i| Arc::new(WorkflowEngine::new(format!("engine-{i}")))).collect(),
            ownership: Mutex::new(HashMap::new()),
            migrations: AtomicUsize::new(0),
            migrated_bytes: AtomicUsize::new(0),
        }
    }

    /// Start a process on the least-loaded engine (the paper's load
    /// balancing [14]); returns (pid, engine index).
    pub fn start_process(&self, def: &WorkflowDefinition) -> Result<(u64, usize), EngineError> {
        let idx = self.least_loaded();
        let pid = self.engines[idx].start_process(def)?;
        self.ownership.lock().insert(pid, idx);
        Ok((pid, idx))
    }

    fn least_loaded(&self) -> usize {
        self.engines
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.instance_count())
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Execute an activity at engine `at` (participants connect to the
    /// engine of their own organization). Migrates the instance first when
    /// `at` is not the current owner.
    pub fn execute_at(
        &self,
        at: usize,
        pid: u64,
        activity: &str,
        participant: &str,
        responses: &[(String, String)],
    ) -> Result<Route, EngineError> {
        assert!(at < self.engines.len(), "engine index in range");
        {
            // coherence: resolve/transfer ownership under the global lock
            let mut ownership = self.ownership.lock();
            let owner = *ownership.get(&pid).ok_or(EngineError::UnknownProcess(pid))?;
            if owner != at {
                let instance = self.engines[owner].take_instance(pid)?;
                self.migrated_bytes.fetch_add(instance.approx_size(), Ordering::Relaxed);
                self.engines[at].install_instance(instance);
                ownership.insert(pid, at);
                self.migrations.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.engines[at].execute_activity(pid, activity, participant, responses)
    }

    /// Current owner of a process instance.
    pub fn owner_of(&self, pid: u64) -> Option<usize> {
        self.ownership.lock().get(&pid).copied()
    }

    /// Read an instance (from its current owner).
    pub fn get_instance(&self, pid: u64) -> Result<crate::engine::ProcessInstance, EngineError> {
        let owner =
            self.ownership.lock().get(&pid).copied().ok_or(EngineError::UnknownProcess(pid))?;
        self.engines[owner].get_instance(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra4wfms_core::model::WorkflowDefinition;

    fn def() -> WorkflowDefinition {
        WorkflowDefinition::builder("cross-ent", "designer")
            .simple_activity("a1", "alice", &["x"])
            .simple_activity("a2", "bob", &["y"])
            .simple_activity("a3", "carol", &["z"])
            .flow("a1", "a2")
            .flow("a2", "a3")
            .flow_end("a3")
            .build()
            .unwrap()
    }

    #[test]
    fn cross_engine_execution_migrates() {
        let d = DistributedWfms::new(3);
        let (pid, start_idx) = d.start_process(&def()).unwrap();
        // alice at engine 0, bob at 1, carol at 2 (their own organizations)
        d.execute_at(0, pid, "a1", "alice", &[("x".into(), "1".into())]).unwrap();
        d.execute_at(1, pid, "a2", "bob", &[("y".into(), "2".into())]).unwrap();
        let r = d.execute_at(2, pid, "a3", "carol", &[("z".into(), "3".into())]).unwrap();
        assert!(r.ends);
        assert_eq!(d.owner_of(pid), Some(2));
        let expected_migrations = if start_idx == 0 { 2 } else { 3 };
        assert_eq!(d.migrations.load(Ordering::Relaxed), expected_migrations);
        assert!(d.migrated_bytes.load(Ordering::Relaxed) > 0);
        let inst = d.get_instance(pid).unwrap();
        assert_eq!(inst.results.len(), 3);
    }

    #[test]
    fn same_engine_needs_no_migration() {
        let d = DistributedWfms::new(2);
        let (pid, idx) = d.start_process(&def()).unwrap();
        d.execute_at(idx, pid, "a1", "alice", &[("x".into(), "1".into())]).unwrap();
        d.execute_at(idx, pid, "a2", "bob", &[("y".into(), "2".into())]).unwrap();
        assert_eq!(d.migrations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn load_balancing_spreads_instances() {
        let d = DistributedWfms::new(4);
        for _ in 0..20 {
            d.start_process(&def()).unwrap();
        }
        for e in &d.engines {
            assert_eq!(e.instance_count(), 5, "perfectly balanced start load");
        }
    }

    #[test]
    fn unknown_pid_rejected() {
        let d = DistributedWfms::new(1);
        assert!(matches!(
            d.execute_at(0, 42, "a1", "alice", &[]),
            Err(EngineError::UnknownProcess(42))
        ));
    }

    #[test]
    fn concurrent_cross_engine_contention_is_safe() {
        // Many threads executing different processes across engines: the
        // ownership lock serializes migrations but the result must be
        // consistent (every execution recorded exactly once).
        let d = Arc::new(DistributedWfms::new(4));
        let defs = def();
        let pids: Vec<u64> = (0..16).map(|_| d.start_process(&defs).unwrap().0).collect();
        crossbeam::thread::scope(|s| {
            for (i, &pid) in pids.iter().enumerate() {
                let d = Arc::clone(&d);
                s.spawn(move |_| {
                    d.execute_at(i % 4, pid, "a1", "alice", &[("x".into(), "1".into())]).unwrap();
                    d.execute_at((i + 1) % 4, pid, "a2", "bob", &[("y".into(), "2".into())])
                        .unwrap();
                    d.execute_at((i + 2) % 4, pid, "a3", "carol", &[("z".into(), "3".into())])
                        .unwrap();
                });
            }
        })
        .unwrap();
        for pid in pids {
            assert_eq!(d.get_instance(pid).unwrap().results.len(), 3);
        }
    }
}
