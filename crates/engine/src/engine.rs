//! A centralized workflow engine (Fig. 1A): the engine stores process
//! instances, shows forms to participants, records results, and controls the
//! flow. Security of the instance is *assured by the server*, not by the
//! instance itself — which is precisely the property the paper attacks.

use dra4wfms_core::fields::FieldReader;
use dra4wfms_core::flow::{evaluate_route, Route};
use dra4wfms_core::model::{JoinKind, WorkflowDefinition};
use dra4wfms_core::WfResult;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Errors of the engine baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown process instance id.
    UnknownProcess(u64),
    /// Activity/participant/flow errors, re-using the core error text.
    Workflow(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownProcess(id) => write!(f, "unknown process instance {id}"),
            EngineError::Workflow(m) => write!(f, "workflow error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// One recorded activity execution inside the engine's database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineResult {
    /// Activity id.
    pub activity: String,
    /// Iteration (loops).
    pub iter: u32,
    /// Recorded executor.
    pub participant: String,
    /// Plaintext response fields — the engine sees everything.
    pub fields: Vec<(String, String)>,
}

/// A process instance as stored in the engine's database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessInstance {
    /// Instance id.
    pub id: u64,
    /// The process definition.
    pub workflow: WorkflowDefinition,
    /// Recorded executions, in order.
    pub results: Vec<EngineResult>,
    /// The engine's audit log (which a superuser can rewrite!).
    pub log: Vec<String>,
}

impl ProcessInstance {
    /// Latest executed iteration of an activity.
    pub fn latest_iter(&self, activity: &str) -> Option<u32> {
        self.results.iter().filter(|r| r.activity == activity).map(|r| r.iter).max()
    }

    /// Latest value of a field.
    pub fn field(&self, activity: &str, field: &str) -> Option<&str> {
        self.results
            .iter()
            .rev()
            .find(|r| r.activity == activity)
            .and_then(|r| r.fields.iter().find(|(n, _)| n == field))
            .map(|(_, v)| v.as_str())
    }

    /// Rough serialized size (for migration-cost accounting).
    pub fn approx_size(&self) -> usize {
        self.results
            .iter()
            .map(|r| {
                r.activity.len()
                    + r.participant.len()
                    + r.fields.iter().map(|(n, v)| n.len() + v.len()).sum::<usize>()
            })
            .sum::<usize>()
            + self.log.iter().map(String::len).sum::<usize>()
    }
}

struct InstanceReader<'a> {
    instance: &'a ProcessInstance,
    overlay_activity: &'a str,
    overlay: &'a [(String, String)],
}

impl FieldReader for InstanceReader<'_> {
    fn read_field(&self, activity: &str, field: &str) -> WfResult<Option<String>> {
        if activity == self.overlay_activity {
            if let Some((_, v)) = self.overlay.iter().find(|(n, _)| n == field) {
                return Ok(Some(v.clone()));
            }
        }
        Ok(self.instance.field(activity, field).map(str::to_string))
    }
}

/// A centralized workflow engine.
pub struct WorkflowEngine {
    /// Engine name (for logs and distributed deployments).
    pub name: String,
    store: Mutex<HashMap<u64, ProcessInstance>>,
    /// Activity executions served.
    pub executions: AtomicUsize,
}

/// Process instance ids are unique across all engines of a deployment (the
/// paper requires "a unique process id … for supporting multiple instances
/// of workflow process").
static NEXT_PID: AtomicU64 = AtomicU64::new(1);

impl WorkflowEngine {
    /// Create an engine.
    pub fn new(name: impl Into<String>) -> WorkflowEngine {
        WorkflowEngine {
            name: name.into(),
            store: Mutex::new(HashMap::new()),
            executions: AtomicUsize::new(0),
        }
    }

    /// Start a new process instance; returns its id.
    pub fn start_process(&self, def: &WorkflowDefinition) -> Result<u64, EngineError> {
        def.validate().map_err(|e| EngineError::Workflow(e.to_string()))?;
        let id = NEXT_PID.fetch_add(1, Ordering::Relaxed);
        let instance = ProcessInstance {
            id,
            workflow: def.clone(),
            results: Vec::new(),
            log: vec![format!("process started on engine {}", self.name)],
        };
        self.store.lock().insert(id, instance);
        Ok(id)
    }

    /// Execute an activity: the engine checks the participant, records the
    /// plaintext result and evaluates the flow. (The engine can read every
    /// field — confidentiality rests entirely on trusting the server.)
    pub fn execute_activity(
        &self,
        pid: u64,
        activity: &str,
        participant: &str,
        responses: &[(String, String)],
    ) -> Result<Route, EngineError> {
        self.executions.fetch_add(1, Ordering::Relaxed);
        let mut store = self.store.lock();
        let instance = store.get_mut(&pid).ok_or(EngineError::UnknownProcess(pid))?;
        let act = instance
            .workflow
            .activity(activity)
            .map_err(|e| EngineError::Workflow(e.to_string()))?
            .clone();
        if act.participant != participant {
            return Err(EngineError::Workflow(format!(
                "activity '{activity}' assigned to '{}', attempted by '{participant}'",
                act.participant
            )));
        }
        if act.join == JoinKind::All {
            let next_iter = instance.latest_iter(activity).map_or(0, |i| i + 1);
            for inc in instance.workflow.incoming(activity) {
                if instance.latest_iter(inc).is_none_or(|i| i < next_iter) {
                    return Err(EngineError::Workflow(format!("AND-join '{activity}' not ready")));
                }
            }
        }
        let iter = instance.latest_iter(activity).map_or(0, |i| i + 1);
        let route = {
            let reader =
                InstanceReader { instance, overlay_activity: activity, overlay: responses };
            evaluate_route(&instance.workflow, activity, &reader)
                .map_err(|e| EngineError::Workflow(e.to_string()))?
        };
        instance.results.push(EngineResult {
            activity: activity.to_string(),
            iter,
            participant: participant.to_string(),
            fields: responses.to_vec(),
        });
        instance.log.push(format!("{activity}#{iter} executed by {participant}"));
        Ok(route)
    }

    /// Read a stored instance (what a participant later sees when disputing).
    pub fn get_instance(&self, pid: u64) -> Result<ProcessInstance, EngineError> {
        self.store.lock().get(&pid).cloned().ok_or(EngineError::UnknownProcess(pid))
    }

    /// Remove an instance, returning it (used for migration between engines).
    pub fn take_instance(&self, pid: u64) -> Result<ProcessInstance, EngineError> {
        self.store.lock().remove(&pid).ok_or(EngineError::UnknownProcess(pid))
    }

    /// Install an instance (migration target).
    pub fn install_instance(&self, instance: ProcessInstance) {
        self.store.lock().insert(instance.id, instance);
    }

    /// Number of instances currently stored (load metric).
    pub fn instance_count(&self) -> usize {
        self.store.lock().len()
    }

    /// Obtain superuser powers over this engine — the administration-domain
    /// capability the paper warns about. No credential is required beyond
    /// operating the machine the engine runs on.
    pub fn superuser(&self) -> Superuser<'_> {
        Superuser { engine: self }
    }
}

/// Administrative access to the engine's database: can rewrite results and
/// logs, leaving **no trace**. This is the attack DRA4WfMS defends against.
pub struct Superuser<'a> {
    engine: &'a WorkflowEngine,
}

impl Superuser<'_> {
    /// Rewrite a stored field value of an executed activity.
    pub fn alter_result(
        &self,
        pid: u64,
        activity: &str,
        field: &str,
        new_value: &str,
    ) -> Result<(), EngineError> {
        let mut store = self.engine.store.lock();
        let instance = store.get_mut(&pid).ok_or(EngineError::UnknownProcess(pid))?;
        for r in instance.results.iter_mut().rev() {
            if r.activity == activity {
                for (n, v) in r.fields.iter_mut() {
                    if n == field {
                        *v = new_value.to_string();
                        return Ok(());
                    }
                }
            }
        }
        Err(EngineError::Workflow(format!("no stored field {activity}.{field}")))
    }

    /// Rewrite the recorded executor of an activity.
    pub fn alter_participant(
        &self,
        pid: u64,
        activity: &str,
        new_participant: &str,
    ) -> Result<(), EngineError> {
        let mut store = self.engine.store.lock();
        let instance = store.get_mut(&pid).ok_or(EngineError::UnknownProcess(pid))?;
        for r in instance.results.iter_mut().rev() {
            if r.activity == activity {
                r.participant = new_participant.to_string();
                return Ok(());
            }
        }
        Err(EngineError::Workflow(format!("no stored result for {activity}")))
    }

    /// Rewrite the audit log wholesale ("the administrator … always has the
    /// privilege to update the contents and logs in the database").
    pub fn rewrite_log(&self, pid: u64, new_log: Vec<String>) -> Result<(), EngineError> {
        let mut store = self.engine.store.lock();
        let instance = store.get_mut(&pid).ok_or(EngineError::UnknownProcess(pid))?;
        instance.log = new_log;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dra4wfms_core::model::Condition;

    fn def() -> WorkflowDefinition {
        WorkflowDefinition::builder("expense", "designer")
            .simple_activity("submit", "alice", &["amount"])
            .simple_activity("approve", "bob", &["decision"])
            .flow("submit", "approve")
            .flow_if("approve", "submit", Condition::field_equals("approve", "decision", "redo"))
            .flow_end_if("approve", Condition::field_not_equals("approve", "decision", "redo"))
            .build()
            .unwrap()
    }

    #[test]
    fn engine_executes_workflow() {
        let e = WorkflowEngine::new("e1");
        let pid = e.start_process(&def()).unwrap();
        let r =
            e.execute_activity(pid, "submit", "alice", &[("amount".into(), "90".into())]).unwrap();
        assert_eq!(r.targets, vec!["approve"]);
        let r =
            e.execute_activity(pid, "approve", "bob", &[("decision".into(), "ok".into())]).unwrap();
        assert!(r.ends);
        let inst = e.get_instance(pid).unwrap();
        assert_eq!(inst.results.len(), 2);
        assert_eq!(inst.field("submit", "amount"), Some("90"));
    }

    #[test]
    fn loop_iterations_tracked() {
        let e = WorkflowEngine::new("e1");
        let pid = e.start_process(&def()).unwrap();
        e.execute_activity(pid, "submit", "alice", &[("amount".into(), "1".into())]).unwrap();
        let r = e
            .execute_activity(pid, "approve", "bob", &[("decision".into(), "redo".into())])
            .unwrap();
        assert_eq!(r.targets, vec!["submit"]);
        e.execute_activity(pid, "submit", "alice", &[("amount".into(), "2".into())]).unwrap();
        let inst = e.get_instance(pid).unwrap();
        assert_eq!(inst.latest_iter("submit"), Some(1));
        assert_eq!(inst.field("submit", "amount"), Some("2"), "latest wins");
    }

    #[test]
    fn wrong_participant_rejected() {
        let e = WorkflowEngine::new("e1");
        let pid = e.start_process(&def()).unwrap();
        assert!(e
            .execute_activity(pid, "submit", "mallory", &[("amount".into(), "1".into())])
            .is_err());
    }

    #[test]
    fn unknown_process_rejected() {
        let e = WorkflowEngine::new("e1");
        assert_eq!(
            e.execute_activity(999, "submit", "alice", &[]).unwrap_err(),
            EngineError::UnknownProcess(999)
        );
    }

    /// The paper's core negative claim: a superuser rewrites history and the
    /// stored instance offers no way to detect it.
    #[test]
    fn superuser_tampering_is_undetectable() {
        let e = WorkflowEngine::new("e1");
        let pid = e.start_process(&def()).unwrap();
        e.execute_activity(pid, "submit", "alice", &[("amount".into(), "100".into())]).unwrap();
        let before = e.get_instance(pid).unwrap();

        // Admin changes alice's 100 to 1000000 and rewrites the log.
        let su = e.superuser();
        su.alter_result(pid, "submit", "amount", "1000000").unwrap();
        su.rewrite_log(
            pid,
            vec!["process started on engine e1".into(), "submit#0 executed by alice".into()],
        )
        .unwrap();

        let after = e.get_instance(pid).unwrap();
        assert_eq!(after.field("submit", "amount"), Some("1000000"));
        // Nothing in the instance distinguishes tampered from genuine:
        // identical structure, identical log shape, no cryptographic anchor.
        assert_eq!(before.log, after.log, "log rewritten to look identical");
        assert_eq!(before.results.len(), after.results.len());
        // Alice can repudiate ("I never entered 1000000") — and equally, the
        // company cannot prove she did not. Compare with the DRA4WfMS
        // integration test `tamper.rs`, where the same rewrite is detected.
    }

    #[test]
    fn superuser_can_reassign_blame() {
        let e = WorkflowEngine::new("e1");
        let pid = e.start_process(&def()).unwrap();
        e.execute_activity(pid, "submit", "alice", &[("amount".into(), "1".into())]).unwrap();
        e.superuser().alter_participant(pid, "submit", "mallory").unwrap();
        assert_eq!(e.get_instance(pid).unwrap().results[0].participant, "mallory");
    }

    #[test]
    fn engine_enforces_and_join() {
        use dra4wfms_core::model::{Activity, JoinKind};
        let def = WorkflowDefinition::builder("diamond", "designer")
            .simple_activity("a", "p", &["x"])
            .simple_activity("b1", "q", &["y"])
            .simple_activity("b2", "r", &["z"])
            .activity(Activity {
                id: "join".into(),
                participant: "s".into(),
                join: JoinKind::All,
                requests: vec![],
                responses: vec!["w".into()],
            })
            .flow("a", "b1")
            .flow("a", "b2")
            .flow("b1", "join")
            .flow("b2", "join")
            .flow_end("join")
            .build()
            .unwrap();
        let e = WorkflowEngine::new("e");
        let pid = e.start_process(&def).unwrap();
        e.execute_activity(pid, "a", "p", &[("x".into(), "1".into())]).unwrap();
        e.execute_activity(pid, "b1", "q", &[("y".into(), "2".into())]).unwrap();
        // join not ready: b2 missing
        assert!(e.execute_activity(pid, "join", "s", &[("w".into(), "4".into())]).is_err());
        e.execute_activity(pid, "b2", "r", &[("z".into(), "3".into())]).unwrap();
        let route = e.execute_activity(pid, "join", "s", &[("w".into(), "4".into())]).unwrap();
        assert!(route.ends);
    }

    #[test]
    fn unknown_activity_rejected() {
        let e = WorkflowEngine::new("e");
        let pid = e.start_process(&def()).unwrap();
        assert!(e.execute_activity(pid, "ghost", "alice", &[]).is_err());
    }

    #[test]
    fn instance_size_grows_with_results() {
        let e = WorkflowEngine::new("e");
        let pid = e.start_process(&def()).unwrap();
        let s0 = e.get_instance(pid).unwrap().approx_size();
        e.execute_activity(pid, "submit", "alice", &[("amount".into(), "x".repeat(500))]).unwrap();
        let s1 = e.get_instance(pid).unwrap().approx_size();
        assert!(s1 > s0 + 400, "migration cost tracks payload size");
    }

    #[test]
    fn migration_take_install() {
        let e1 = WorkflowEngine::new("e1");
        let e2 = WorkflowEngine::new("e2");
        let pid = e1.start_process(&def()).unwrap();
        let inst = e1.take_instance(pid).unwrap();
        assert_eq!(e1.instance_count(), 0);
        e2.install_instance(inst);
        assert_eq!(e2.instance_count(), 1);
        // e2 can continue the process
        e2.execute_activity(pid, "submit", "alice", &[("amount".into(), "5".into())]).unwrap();
    }
}
