//! # dra-engine — the engine-based WfMS baseline
//!
//! The comparator the paper argues against (§1, Fig. 1): centralized and
//! distributed **engine-based** workflow management systems, where process
//! instances live inside administrated workflow engines.
//!
//! This crate exists to reproduce the paper's negative claims concretely:
//!
//! * **Nonrepudiation failure** ([`engine::Superuser`]) — "superusers exist
//!   in the administration domain of WfMSs … the administrator of a
//!   relational database always has the privilege to update the contents and
//!   logs in the database. It is obvious that the central WfMS also cannot
//!   guarantee the nonrepudiation requirement." A superuser can rewrite
//!   stored execution results *and the audit log* without leaving any
//!   detectable trace, whereas any such rewrite of a DRA4WfMS document
//!   breaks a signature.
//! * **Scalability bottleneck** ([`distributed`]) — "the accesses and
//!   coherence of shared workflow process instances are a bottleneck. If a
//!   process instance is replicated in multiple servers, we have to use a
//!   coherence protocol to maintain the consistency between concurrent
//!   accesses." The distributed baseline implements the single-primary
//!   ownership protocol with instance migration that engine-based systems
//!   need, and the benches measure its cost against document routing.
//! * **Transport security is not enough** ([`transport`]) — an SSL-like
//!   channel protects documents in flight but not at rest in the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod engine;
pub mod transport;

pub use distributed::DistributedWfms;
pub use engine::{EngineError, EngineResult, ProcessInstance, Superuser, WorkflowEngine};
