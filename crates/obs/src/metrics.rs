//! A unified metrics registry: counters, gauges and power-of-two
//! histograms behind one deterministic snapshot.
//!
//! The runtime grew statistics organically — `DeliveryStats`, portal
//! counters, trust-cache hit/miss, TFC redo reuses, journal replay counts —
//! each with its own struct and its own accessor. The
//! [`MetricsRegistry`] absorbs them all under stable dotted names
//! (`delivery.sends`, `portal.stored`, `trust_cache.hits`, …), and a
//! [`MetricsSnapshot`] renders them as one `BTreeMap`-ordered, byte-
//! deterministic JSON document.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregated observations of one histogram series: count / sum / min /
/// max plus power-of-two buckets (`buckets[i]` counts values `v` with
/// `2^(i-1) <= v < 2^i`, bucket 0 counting `v == 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Power-of-two bucket counts (65 buckets cover the full `u64` range).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ (0, 1]` from the power-of-two buckets:
    /// the upper bound of the bucket the nearest-rank observation falls
    /// into, clamped to the observed `max` (and `min`). Exact for
    /// single-valued buckets (0 and 1), at worst 2× for the rest — the
    /// resolution the buckets were chosen for. Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // nearest-rank: the smallest bucket whose cumulative count covers
        // ceil(q * count) observations
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // bucket 0 holds only value 0; bucket b ≥ 1 covers
                // [2^(b-1), 2^b - 1]
                let upper = if b == 0 { 0 } else { (1u64 << b.min(63)) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (approximate, see [`HistogramSnapshot::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (approximate).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (approximate).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[derive(Clone, Default)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = 64 - value.leading_zeros(); // 0 for value == 0
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let top = self.buckets.keys().next_back().copied().unwrap_or(0);
        let mut buckets = vec![0u64; top as usize + 1];
        for (b, n) in &self.buckets {
            buckets[*b as usize] = *n;
        }
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn incr(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Overwrite counter `name` with an absolute total — the export path
    /// for pre-aggregated stats structs, which already hold run totals.
    pub fn set_counter(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let counters = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut gauges = self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        gauges.insert(name.to_string(), value);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms =
            self.histograms.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// A point-in-time, deterministically ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let gauges = self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A frozen view of a [`MetricsRegistry`]; `BTreeMap` ordering makes its
/// JSON rendering byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent) — the lookup the invariant
    /// checks are written against, so "never exported" reads as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent), mirroring [`Self::counter`].
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Render as a deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::export::json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::export::json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // keys sorted alphabetically so the rendering stays stable as
            // summary fields accrete
            out.push_str(&format!("\"{}\":{{\"buckets\":[", crate::export::json_escape(k)));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str(&format!(
                "],\"count\":{},\"max\":{},\"min\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"sum\":{}}}",
                h.count,
                h.max,
                h.min,
                h.p50(),
                h.p95(),
                h.p99(),
                h.sum
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = MetricsRegistry::new();
        m.incr("a.count", 2);
        m.incr("a.count", 3);
        m.set_counter("b.total", 7);
        m.set_gauge("c.level", -4);
        assert_eq!(m.counter("a.count"), 5);
        assert_eq!(m.counter("nope"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.counter("b.total"), 7);
        assert_eq!(snap.gauges["c.level"], -4);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = MetricsRegistry::new();
        for v in [0u64, 1, 1, 3, 8] {
            m.observe("h", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 13);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 8);
        assert!((h.mean() - 2.6).abs() < 1e-9);
        // buckets: 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 8 → bucket 4
        assert_eq!(h.buckets, vec![1, 2, 1, 0, 1]);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let m = MetricsRegistry::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.observe("lat", 5);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.starts_with("{\"counters\":{"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        let empty = HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: vec![] };
        assert!(empty.mean().abs() < f64::EPSILON);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
    }

    #[test]
    fn percentiles_from_power_of_two_buckets() {
        let m = MetricsRegistry::new();
        // 100 observations: 50× 1, 45× 100, 5× 1000
        for _ in 0..50 {
            m.observe("lat", 1);
        }
        for _ in 0..45 {
            m.observe("lat", 100);
        }
        for _ in 0..5 {
            m.observe("lat", 1000);
        }
        let h = &m.snapshot().histograms["lat"];
        assert_eq!(h.p50(), 1, "bucket 1 is exact");
        // 100 lives in bucket 7 ([64, 127]); nearest-rank 95 falls there
        assert_eq!(h.p95(), 127);
        // 1000 lives in bucket 10 ([512, 1023]); upper bound clamps to max
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn percentile_of_uniform_value_is_that_value() {
        let m = MetricsRegistry::new();
        for _ in 0..10 {
            m.observe("h", 7);
        }
        let h = &m.snapshot().histograms["h"];
        // single-bucket histogram: min == max == 7 clamps the bucket bound
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn histogram_json_has_sorted_summary_keys() {
        let m = MetricsRegistry::new();
        for v in [0u64, 1, 1, 3, 8] {
            m.observe("h", v);
        }
        let json = m.snapshot().to_json();
        assert!(
            json.contains(
                "\"h\":{\"buckets\":[1,2,1,0,1],\"count\":5,\"max\":8,\"min\":0,\
                 \"p50\":1,\"p95\":8,\"p99\":8,\"sum\":13}"
            ),
            "got: {json}"
        );
    }
}
