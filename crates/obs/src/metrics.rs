//! A unified metrics registry: counters, gauges and power-of-two
//! histograms behind one deterministic snapshot.
//!
//! The runtime grew statistics organically — `DeliveryStats`, portal
//! counters, trust-cache hit/miss, TFC redo reuses, journal replay counts —
//! each with its own struct and its own accessor. The
//! [`MetricsRegistry`] absorbs them all under stable dotted names
//! (`delivery.sends`, `portal.stored`, `trust_cache.hits`, …), and a
//! [`MetricsSnapshot`] renders them as one `BTreeMap`-ordered, byte-
//! deterministic JSON document.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregated observations of one histogram series: count / sum / min /
/// max plus power-of-two buckets (`buckets[i]` counts values `v` with
/// `2^(i-1) <= v < 2^i`, bucket 0 counting `v == 0`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Power-of-two bucket counts (65 buckets cover the full `u64` range).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Clone, Default)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = 64 - value.leading_zeros(); // 0 for value == 0
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let top = self.buckets.keys().next_back().copied().unwrap_or(0);
        let mut buckets = vec![0u64; top as usize + 1];
        for (b, n) in &self.buckets {
            buckets[*b as usize] = *n;
        }
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn incr(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Overwrite counter `name` with an absolute total — the export path
    /// for pre-aggregated stats structs, which already hold run totals.
    pub fn set_counter(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        gauges.insert(name.to_string(), value);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// A point-in-time, deterministically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A frozen view of a [`MetricsRegistry`]; `BTreeMap` ordering makes its
/// JSON rendering byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent) — the lookup the invariant
    /// checks are written against, so "never exported" reads as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::export::json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::export::json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                crate::export::json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = MetricsRegistry::new();
        m.incr("a.count", 2);
        m.incr("a.count", 3);
        m.set_counter("b.total", 7);
        m.set_gauge("c.level", -4);
        assert_eq!(m.counter("a.count"), 5);
        assert_eq!(m.counter("nope"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.counter("b.total"), 7);
        assert_eq!(snap.gauges["c.level"], -4);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = MetricsRegistry::new();
        for v in [0u64, 1, 1, 3, 8] {
            m.observe("h", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 13);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 8);
        assert!((h.mean() - 2.6).abs() < 1e-9);
        // buckets: 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 8 → bucket 4
        assert_eq!(h.buckets, vec![1, 2, 1, 0, 1]);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let m = MetricsRegistry::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.observe("lat", 5);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.starts_with("{\"counters\":{"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        assert_eq!(
            HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: vec![] }.mean(),
            0.0
        );
    }
}
