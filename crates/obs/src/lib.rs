//! # dra-obs — observability for the engine-less WfMS
//!
//! DRA4WfMS has no engine, so there is no single process whose logs tell
//! you what happened: execution is scattered across AEAs, the TFC server,
//! portals and the delivery layer, and the only *authoritative* record is
//! the signed document itself. This crate gives the runtime a first-class
//! observability substrate that plays to that design instead of against it:
//!
//! * [`event`] — a structured span API ([`Tracer`] / [`Span`]) stamped in
//!   **virtual time**: the clock is injected (typically closing over the
//!   deployment's `NetworkSim`), so the same seed produces byte-identical
//!   traces run after run;
//! * [`metrics`] — a [`MetricsRegistry`] of counters / gauges / histograms
//!   that unifies the runtime's ad-hoc statistics (delivery stats, crash
//!   and replay counters, trust-cache hits) behind one deterministic
//!   [`MetricsSnapshot`];
//! * [`export`] — JSONL and Chrome-trace (`chrome://tracing`) exporters
//!   whose output is byte-deterministic for a fixed seed.
//!
//! The trace is deliberately *not* trusted: `dra4wfms-core`'s `reconcile`
//! oracle replays the timeline the signed document proves and checks the
//! observed trace against it — the document is the oracle, the trace is the
//! witness under test.
//!
//! The crate is dependency-free (not even the workspace shims) so every
//! layer — `core`, `docpool`, `cloud`, benches — can depend on it without
//! cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;

pub use event::{stage, Clock, Span, TraceEvent, Tracer, OUTCOME_CRASH, OUTCOME_OK};
pub use export::{events_to_chrome, events_to_jsonl, json_escape};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
