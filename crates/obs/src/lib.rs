//! # dra-obs — observability for the engine-less WfMS
//!
//! DRA4WfMS has no engine, so there is no single process whose logs tell
//! you what happened: execution is scattered across AEAs, the TFC server,
//! portals and the delivery layer, and the only *authoritative* record is
//! the signed document itself. This crate gives the runtime a first-class
//! observability substrate that plays to that design instead of against it:
//!
//! * [`event`] — a structured span API ([`Tracer`] / [`Span`]) stamped in
//!   **virtual time**: the clock is injected (typically closing over the
//!   deployment's `NetworkSim`), so the same seed produces byte-identical
//!   traces run after run;
//! * [`metrics`] — a [`MetricsRegistry`] of counters / gauges / histograms
//!   that unifies the runtime's ad-hoc statistics (delivery stats, crash
//!   and replay counters, trust-cache hits) behind one deterministic
//!   [`MetricsSnapshot`];
//! * [`export`] — JSONL and Chrome-trace (`chrome://tracing`) exporters
//!   whose output is byte-deterministic for a fixed seed;
//! * [`sink`] — streaming [`TraceSink`] subscribers pushed every span the
//!   moment it closes, so online consumers (health monitors, live
//!   exporters) watch the run *as it executes* rather than after the fact;
//! * [`profile`] — a span-tree latency-attribution profiler
//!   ([`LatencyProfile`]) splitting each stage's time into self vs child
//!   and ranking the top-k hot stages, feeding the bench regression gate.
//!
//! The trace is deliberately *not* trusted: `dra4wfms-core`'s `reconcile`
//! oracle replays the timeline the signed document proves and checks the
//! observed trace against it — the document is the oracle, the trace is the
//! witness under test.
//!
//! The crate is dependency-free (not even the workspace shims) so every
//! layer — `core`, `docpool`, `cloud`, benches — can depend on it without
//! cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Pedantic lints we deliberately do not follow. Casts are ubiquitous and
// audited at the call site (virtual-time µs fit u64/f64 comfortably);
// wildcards-for-matches and long-doc exceptions keep the source readable.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::doc_markdown,
    clippy::format_push_string,
    clippy::needless_pass_by_value
)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::{stage, Clock, Span, TraceEvent, Tracer, OUTCOME_CRASH, OUTCOME_OK};
pub use export::{events_to_chrome, events_to_jsonl, json_escape};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::{LatencyProfile, StageProfile};
pub use sink::{BufferSink, CountingSink, TraceSink};
