//! Deterministic exporters: JSONL (one event per line) and Chrome-trace
//! (`chrome://tracing` / Perfetto "complete" events).
//!
//! Both renderers build JSON by hand — field order is fixed, maps are
//! pre-sorted by the caller, and no floating-point formatting is involved —
//! so for a fixed seed (and hence a fixed event slice) the bytes are
//! identical run after run. CI relies on this: it exports twice and `cmp`s.

use crate::event::TraceEvent;

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_to_json(e: &TraceEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"start_us\":{},\"end_us\":{},\"stage\":\"{}\",\"actor\":\"{}\",\"process\":\"{}\",\"activity\":\"{}\",\"iter\":{},\"outcome\":\"{}\"",
        e.seq,
        e.start_us,
        e.end_us,
        json_escape(&e.stage),
        json_escape(&e.actor),
        json_escape(&e.process_id),
        json_escape(&e.activity),
        e.iter,
        json_escape(&e.outcome),
    );
    if !e.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in e.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Render events as JSONL: one JSON object per line, trailing newline.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Render events as a Chrome-trace JSON document (`{"traceEvents":[...]}`
/// of `ph:"X"` complete events, timestamps and durations in microseconds).
///
/// Load the file in `chrome://tracing` or <https://ui.perfetto.dev>: rows
/// are keyed by process id (`pid`) and actor (`tid`), so one workflow
/// instance renders as one process with a lane per participant.
pub fn events_to_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{} {}#{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":\"{}\",\"tid\":\"{}\",\"args\":{{\"outcome\":\"{}\"",
            json_escape(&e.stage),
            json_escape(&e.activity),
            e.iter,
            json_escape(&e.stage),
            e.start_us,
            e.end_us.saturating_sub(e.start_us),
            json_escape(&e.process_id),
            json_escape(&e.actor),
            json_escape(&e.outcome),
        ));
        for (k, v) in &e.attrs {
            out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let tracer = Tracer::sequential();
        let mut s = tracer.span("hop");
        s.set_actor("p0");
        s.set_process("proc-1");
        s.set_activity("S0", 0);
        s.attr("note", "a \"quoted\"\nvalue");
        s.end();
        tracer.span("verify").actor("p1").process("proc-1").end();
        tracer.events()
    }

    #[test]
    fn jsonl_one_line_per_event_and_escaped() {
        let out = events_to_jsonl(&sample_events());
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("\\\"quoted\\\"\\nvalue"));
        assert!(out.ends_with('\n'));
        let first = out.lines().next().unwrap();
        assert!(first.starts_with("{\"seq\":0,"));
        assert!(first.contains("\"stage\":\"hop\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let out = events_to_chrome(&sample_events());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"pid\":\"proc-1\""));
        assert!(out.contains("\"tid\":\"p0\""));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_events();
        let b = sample_events();
        assert_eq!(events_to_jsonl(&a), events_to_jsonl(&b));
        assert_eq!(events_to_chrome(&a), events_to_chrome(&b));
    }

    #[test]
    fn escape_covers_control_chars() {
        assert_eq!(json_escape("a\tb\\c\"d\u{1}"), "a\\tb\\\\c\\\"d\\u0001");
    }
}
