//! Span-tree latency attribution: where did the virtual time actually go?
//!
//! A flat trace answers "how long did each span take"; it does not answer
//! "which stage is *hot*" — a `hop` span contains its `verify`, `execute`,
//! `seal` and `deliver` children, so its duration double-counts theirs.
//! [`LatencyProfile`] rebuilds the span tree by virtual-time containment
//! (per process instance) and splits every span's duration into **self
//! time** (spent in the stage itself) and **child time** (delegated to
//! nested stages), then aggregates per stage: counts, totals, exact
//! nearest-rank percentiles, and a top-k hot-stage ranking by self time.
//!
//! Parenthood uses the tracer's recording order as a tiebreak: children
//! close before their parents (spans are recorded on `end`), so the
//! innermost enclosing span is the containing candidate with the smallest
//! `seq` greater than the child's. Zero-width spans — common in virtual
//! time, where local work is free — nest correctly under this rule.
//!
//! Everything is integer virtual-time arithmetic over a deterministic
//! event slice, so `to_json` output is byte-identical run after run: the
//! property the bench regression gate (`claim_profile` + `perf_gate`)
//! relies on.

use crate::event::TraceEvent;
use crate::export::json_escape;
use std::collections::BTreeMap;

/// Aggregated latency attribution of one stage across a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Spans of this stage in the trace.
    pub count: u64,
    /// Σ span duration, virtual µs (inclusive of children).
    pub total_us: u64,
    /// Σ duration minus time attributed to direct children, virtual µs.
    pub self_us: u64,
    /// Σ time attributed to direct children, virtual µs.
    pub child_us: u64,
    /// Longest single span, virtual µs.
    pub max_us: u64,
    /// Median span duration (exact nearest-rank), virtual µs.
    pub p50_us: u64,
    /// 95th-percentile span duration (exact nearest-rank), virtual µs.
    pub p95_us: u64,
    /// 99th-percentile span duration (exact nearest-rank), virtual µs.
    pub p99_us: u64,
}

/// Per-stage latency attribution for a whole trace. Build with
/// [`LatencyProfile::from_events`]; stages are kept sorted by name so the
/// JSON rendering is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyProfile {
    /// One aggregate per stage, sorted by stage name.
    pub stages: Vec<StageProfile>,
}

/// Exact nearest-rank percentile over a sorted slice (0 when empty).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl LatencyProfile {
    /// Attribute every span of `events` to its stage. Containment (and
    /// hence self-vs-child splitting) is computed within each process
    /// instance; spans with no process id form their own group.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> LatencyProfile {
        struct Agg {
            durations: Vec<u64>,
            child_us: u64,
        }

        // index per process: parenthood never crosses instances
        let mut by_process: BTreeMap<&str, Vec<&TraceEvent>> = BTreeMap::new();
        for e in events {
            by_process.entry(e.process_id.as_str()).or_default().push(e);
        }

        let mut aggs: BTreeMap<&str, Agg> = BTreeMap::new();

        for group in by_process.values() {
            for e in group {
                let duration = e.end_us.saturating_sub(e.start_us);
                let agg = aggs
                    .entry(e.stage.as_str())
                    .or_insert_with(|| Agg { durations: Vec::new(), child_us: 0 });
                agg.durations.push(duration);

                // innermost enclosing span: contains this one in virtual
                // time, closed after it (larger seq, because children are
                // recorded first), and of all such candidates closed
                // soonest — the one this span's time should be charged to
                let parent = group
                    .iter()
                    .filter(|p| p.seq > e.seq && p.start_us <= e.start_us && p.end_us >= e.end_us)
                    .min_by_key(|p| p.seq);
                if let Some(p) = parent {
                    aggs.entry(p.stage.as_str())
                        .or_insert_with(|| Agg { durations: Vec::new(), child_us: 0 })
                        .child_us += duration;
                }
            }
        }

        let stages = aggs
            .into_iter()
            .map(|(stage, mut agg)| {
                agg.durations.sort_unstable();
                let total_us: u64 = agg.durations.iter().sum();
                StageProfile {
                    stage: stage.to_string(),
                    count: agg.durations.len() as u64,
                    total_us,
                    self_us: total_us.saturating_sub(agg.child_us),
                    child_us: agg.child_us,
                    max_us: agg.durations.last().copied().unwrap_or(0),
                    p50_us: nearest_rank(&agg.durations, 0.50),
                    p95_us: nearest_rank(&agg.durations, 0.95),
                    p99_us: nearest_rank(&agg.durations, 0.99),
                }
            })
            .collect();
        LatencyProfile { stages }
    }

    /// The `k` hottest stages by self time (ties broken by stage name, so
    /// the ranking is deterministic).
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<&StageProfile> {
        let mut ranked: Vec<&StageProfile> = self.stages.iter().collect();
        ranked.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.stage.cmp(&b.stage)));
        ranked.truncate(k);
        ranked
    }

    /// Look up one stage's aggregate.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Σ self time across all stages — equals the Σ duration of root spans
    /// when the trace nests cleanly.
    #[must_use]
    pub fn total_self_us(&self) -> u64 {
        self.stages.iter().map(|s| s.self_us).sum()
    }

    /// Render as deterministic JSON: an array of per-stage objects sorted
    /// by stage name, one object per line, fixed key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"stage\": \"{}\", \"count\": {}, \"total_us\": {}, \"self_us\": {}, \
                 \"child_us\": {}, \"max_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"p99_us\": {}}}{}\n",
                json_escape(&s.stage),
                s.count,
                s.total_us,
                s.self_us,
                s.child_us,
                s.max_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                if i + 1 == self.stages.len() { "" } else { "," }
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Tracer, OUTCOME_OK};

    fn ev(seq: u64, start: u64, end: u64, stage: &str, pid: &str) -> TraceEvent {
        TraceEvent {
            seq,
            start_us: start,
            end_us: end,
            stage: stage.into(),
            actor: "a".into(),
            process_id: pid.into(),
            activity: String::new(),
            iter: 0,
            outcome: OUTCOME_OK.into(),
            attrs: vec![],
        }
    }

    #[test]
    fn self_time_excludes_children() {
        // hop [0,100] containing verify [10,30] and execute [40,80];
        // children closed first (smaller seq)
        let events = vec![
            ev(0, 10, 30, "verify", "p"),
            ev(1, 40, 80, "execute", "p"),
            ev(2, 0, 100, "hop", "p"),
        ];
        let profile = LatencyProfile::from_events(&events);
        let hop = profile.stage("hop").unwrap();
        assert_eq!(hop.total_us, 100);
        assert_eq!(hop.child_us, 60);
        assert_eq!(hop.self_us, 40);
        let verify = profile.stage("verify").unwrap();
        assert_eq!(verify.self_us, 20);
        assert_eq!(profile.total_self_us(), 100, "self times partition the root span");
    }

    #[test]
    fn nesting_charges_innermost_parent() {
        // hop [0,100] ⊃ deliver [10,90] ⊃ verify [20,30]: verify's time is
        // charged to deliver, not hop
        let events = vec![
            ev(0, 20, 30, "verify", "p"),
            ev(1, 10, 90, "deliver", "p"),
            ev(2, 0, 100, "hop", "p"),
        ];
        let profile = LatencyProfile::from_events(&events);
        assert_eq!(profile.stage("deliver").unwrap().child_us, 10);
        assert_eq!(profile.stage("deliver").unwrap().self_us, 70);
        assert_eq!(profile.stage("hop").unwrap().child_us, 80);
        assert_eq!(profile.stage("hop").unwrap().self_us, 20);
    }

    #[test]
    fn zero_width_spans_nest_by_seq() {
        // all at t=5: inner closed first, outer later — the outer span is
        // the parent despite identical bounds
        let events = vec![ev(0, 5, 5, "seal", "p"), ev(1, 5, 5, "hop", "p")];
        let profile = LatencyProfile::from_events(&events);
        assert_eq!(profile.stage("hop").unwrap().child_us, 0, "zero-width child charges nothing");
        assert_eq!(profile.stage("seal").unwrap().count, 1);
    }

    #[test]
    fn containment_does_not_cross_processes() {
        let events = vec![ev(0, 10, 20, "verify", "p1"), ev(1, 0, 100, "hop", "p2")];
        let profile = LatencyProfile::from_events(&events);
        assert_eq!(profile.stage("hop").unwrap().child_us, 0);
        assert_eq!(profile.stage("hop").unwrap().self_us, 100);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let events: Vec<TraceEvent> = (0..100).map(|i| ev(i, 0, i + 1, "hop", "p")).collect();
        // durations 1..=100, but each span nests inside every later one;
        // use distinct processes to keep them independent
        let events: Vec<TraceEvent> = events
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                e.process_id = format!("p{i}");
                e
            })
            .collect();
        let profile = LatencyProfile::from_events(&events);
        let hop = profile.stage("hop").unwrap();
        assert_eq!(hop.p50_us, 50);
        assert_eq!(hop.p95_us, 95);
        assert_eq!(hop.p99_us, 99);
        assert_eq!(hop.max_us, 100);
    }

    #[test]
    fn top_k_ranks_by_self_time_deterministically() {
        let events = vec![
            ev(0, 0, 10, "b_stage", "p1"),
            ev(1, 0, 10, "a_stage", "p2"),
            ev(2, 0, 50, "hot", "p3"),
        ];
        let profile = LatencyProfile::from_events(&events);
        let top = profile.top_k(2);
        assert_eq!(top[0].stage, "hot");
        assert_eq!(top[1].stage, "a_stage", "ties broken alphabetically");
        assert_eq!(profile.top_k(10).len(), 3);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let t = Tracer::sequential();
        t.span("z").end();
        t.span("a").end();
        let profile = LatencyProfile::from_events(&t.events());
        let json = profile.to_json();
        assert_eq!(json, LatencyProfile::from_events(&t.events()).to_json());
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
        assert!(json.starts_with("[\n  {\"stage\": "));
    }

    #[test]
    fn empty_profile_renders() {
        let profile = LatencyProfile::from_events(&[]);
        assert_eq!(profile.to_json(), "[\n]");
        assert_eq!(profile.total_self_us(), 0);
        assert!(profile.top_k(3).is_empty());
    }
}
