//! Structured events and virtual-time spans.
//!
//! A [`Tracer`] is a cheap handle (an `Option<Arc<..>>`) that components
//! hold by value. A disabled tracer — the default everywhere — reduces every
//! operation to an `Option` check with no allocation, so instrumentation can
//! stay compiled in unconditionally.
//!
//! Spans are recorded **only** by an explicit [`Span::end`] /
//! [`Span::end_with`]; a span dropped on an error path records nothing.
//! This keeps the trace a log of *completed* work, which is exactly what the
//! document-vs-trace reconciliation oracle needs — the one exception is the
//! scenario runner, which deliberately ends hop spans with the `"crash"`
//! outcome so recovery is visible in the timeline.

use crate::sink::{BufferSink, TraceSink};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Clock abstraction: returns the current time in microseconds. In this
/// workspace the clock almost always closes over the deployment's network
/// simulation (`NetworkSim::virtual_time_us`), making traces deterministic.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Stable stage names, one per instrumented pipeline step. Free-form stage
/// strings are allowed, but everything in-tree uses these constants so the
/// reconciliation oracle and the exporters agree on vocabulary.
pub mod stage {
    /// A whole hop: receive → execute → complete → store, as driven by the
    /// scenario runner. The only stage the reconciliation oracle matches
    /// against the document's CER cascade.
    pub const HOP: &str = "hop";
    /// Delivery-layer hand-off (retry/backoff over the faulty channel).
    pub const DELIVER: &str = "deliver";
    /// Signature verification (full or incremental).
    pub const VERIFY: &str = "verify";
    /// Element-wise decryption of request fields (or TFC unsealing).
    pub const DECRYPT: &str = "decrypt";
    /// The scripted participant producing response fields.
    pub const EXECUTE: &str = "execute";
    /// Sealing the plaintext result to the TFC's public key.
    pub const SEAL: &str = "seal";
    /// Embedding the cascade signature.
    pub const SIGN: &str = "sign";
    /// The TFC drawing (or redo-reusing) an activity finish timestamp.
    pub const TFC_TIMESTAMP: &str = "tfc:timestamp";
    /// The TFC re-encrypting the result per policy and attesting.
    pub const TFC_REENCRYPT: &str = "tfc:reencrypt";
    /// Portal admission: dedup, verify, journal, store, notify.
    pub const PORTAL_ADMIT: &str = "portal:admit";
    /// A journal record committed after its puts landed.
    pub const JOURNAL_COMMIT: &str = "journal:commit";
    /// Journal replay during portal recovery.
    pub const JOURNAL_REPLAY: &str = "journal:replay";
    /// The scheduler dispatching one activation to a participant agent.
    pub const SCHED_DISPATCH: &str = "sched:dispatch";
}

/// Span outcome recorded by [`Span::end`].
pub const OUTCOME_OK: &str = "ok";
/// Span outcome for a crash-fault abort (see the scenario runner).
pub const OUTCOME_CRASH: &str = "crash";

/// One recorded span: a named stage with virtual-time bounds, the acting
/// identity, the workflow coordinates it served, an outcome and free-form
/// attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number in recording order (ties in virtual time
    /// are common — most local work is free — so `seq` is the total order).
    pub seq: u64,
    /// Virtual time when the span was opened, microseconds.
    pub start_us: u64,
    /// Virtual time when the span was ended, microseconds.
    pub end_us: u64,
    /// Stage name (see [`stage`]).
    pub stage: String,
    /// Acting identity (participant, `"TFC"`, `"portal:0"`, …).
    pub actor: String,
    /// Process instance id, when known.
    pub process_id: String,
    /// Activity id, when the span serves one.
    pub activity: String,
    /// Activity iteration (loops), when the span serves one.
    pub iter: u32,
    /// `"ok"`, `"crash"`, or a caller-chosen failure label.
    pub outcome: String,
    /// Stage-specific attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl TraceEvent {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

struct TracerInner {
    clock: Clock,
    seq: AtomicU64,
    /// The default subscriber backing [`Tracer::events`] — buffered export
    /// is just one sink among many.
    buffer: Arc<BufferSink>,
    /// Every subscriber, the buffer included, notified per closed span.
    sinks: Mutex<Vec<Arc<dyn TraceSink>>>,
}

/// A recording handle. Clone freely — all clones share one event buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer(enabled, {} events)", inner.buffer.len()),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every span is discarded at zero cost. This is the
    /// [`Default`] and what every component starts with.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A recording tracer stamped by `clock` (microseconds).
    pub fn new(clock: Clock) -> Tracer {
        let buffer = Arc::new(BufferSink::new());
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                seq: AtomicU64::new(0),
                buffer: Arc::clone(&buffer),
                sinks: Mutex::new(vec![buffer]),
            })),
        }
    }

    /// Subscribe `sink` to every span closed from now on. Sinks are
    /// notified synchronously, in `seq` order, after the tracer's own
    /// buffer. Idempotent: installing the same `Arc` again is a no-op, so
    /// a long-lived subscriber (e.g. a health monitor re-registered by
    /// every run of a shared deployment) never sees a span twice. No-op on
    /// a disabled tracer.
    pub fn add_sink(&self, sink: Arc<dyn TraceSink>) {
        if let Some(inner) = &self.inner {
            let mut sinks = inner.sinks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !sinks.iter().any(|s| Arc::ptr_eq(s, &sink)) {
                sinks.push(sink);
            }
        }
    }

    /// A recording tracer whose clock is pinned to zero — spans carry order
    /// (`seq`) but no duration. Useful for workloads with no network
    /// simulation to borrow virtual time from.
    pub fn zero() -> Tracer {
        Tracer::new(Arc::new(|| 0))
    }

    /// A recording tracer whose clock ticks by one on every read, giving
    /// strictly ordered (and still deterministic) timestamps without any
    /// time source.
    pub fn sequential() -> Tracer {
        let counter = AtomicU64::new(0);
        Tracer::new(Arc::new(move || counter.fetch_add(1, Ordering::Relaxed)))
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The current clock reading (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => (inner.clock)(),
            None => 0,
        }
    }

    /// Open a span for `stage`. The span records nothing until
    /// [`Span::end`] / [`Span::end_with`].
    pub fn span(&self, stage: &str) -> Span {
        let (inner, start_us) = match &self.inner {
            Some(inner) => (Some(Arc::clone(inner)), (inner.clock)()),
            None => (None, 0),
        };
        Span {
            inner,
            start_us,
            stage: stage.to_string(),
            actor: String::new(),
            process_id: String::new(),
            activity: String::new(),
            iter: 0,
            attrs: Vec::new(),
        }
    }

    /// Snapshot every recorded event, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.buffer.events(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.buffer.len(),
            None => 0,
        }
    }

    /// Whether nothing has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every recorded event (the buffer stays usable; other sinks keep
    /// whatever they aggregated).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.buffer.clear();
        }
    }
}

/// An open span. Build it up with the chainable setters (or the `set_*`
/// mutators once it is bound), then [`Span::end`] it; dropping an un-ended
/// span discards it.
#[must_use = "a span records nothing until .end() / .end_with(..)"]
pub struct Span {
    inner: Option<Arc<TracerInner>>,
    start_us: u64,
    stage: String,
    actor: String,
    process_id: String,
    activity: String,
    iter: u32,
    attrs: Vec<(String, String)>,
}

impl Span {
    /// Whether this span will actually record.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Set the acting identity (chainable).
    pub fn actor(mut self, actor: &str) -> Span {
        self.set_actor(actor);
        self
    }

    /// Set the process instance id (chainable).
    pub fn process(mut self, process_id: &str) -> Span {
        self.set_process(process_id);
        self
    }

    /// Set the activity coordinates (chainable).
    pub fn activity(mut self, activity: &str, iter: u32) -> Span {
        self.set_activity(activity, iter);
        self
    }

    /// Set the acting identity.
    pub fn set_actor(&mut self, actor: &str) {
        if self.inner.is_some() {
            self.actor = actor.to_string();
        }
    }

    /// Set the process instance id.
    pub fn set_process(&mut self, process_id: &str) {
        if self.inner.is_some() {
            self.process_id = process_id.to_string();
        }
    }

    /// Set the activity coordinates.
    pub fn set_activity(&mut self, activity: &str, iter: u32) {
        if self.inner.is_some() {
            self.activity = activity.to_string();
            self.iter = iter;
        }
    }

    /// Attach an attribute (no-op when the tracer is disabled; the value is
    /// only rendered when recording).
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        if self.inner.is_some() {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Record the span with the `"ok"` outcome.
    pub fn end(self) {
        self.end_with(OUTCOME_OK);
    }

    /// Record the span with an explicit outcome.
    pub fn end_with(self, outcome: &str) {
        let Some(inner) = self.inner else { return };
        let end_us = (inner.clock)();
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            start_us: self.start_us,
            end_us,
            stage: self.stage,
            actor: self.actor,
            process_id: self.process_id,
            activity: self.activity,
            iter: self.iter,
            outcome: outcome.to_string(),
            attrs: self.attrs,
        };
        inner.dispatch(&event);
    }
}

impl TracerInner {
    /// Fan a closed span out to every subscriber. The sink list lock is
    /// held across the fan-out so concurrent closers deliver whole events
    /// in `seq` order; sinks must not call back into the tracer.
    fn dispatch(&self, event: &TraceEvent) {
        let sinks = self.sinks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for sink in sinks.iter() {
            sink.on_span(event);
        }
    }
}

// Synthetic events (tests, replayed timelines) enter through the same
// dispatch path as real spans, so sinks cannot tell them apart.
impl Tracer {
    /// Append a fully formed event (testing / synthetic timelines). The
    /// event's `seq` is overwritten to preserve the tracer's total order.
    pub fn record_event(&self, mut event: TraceEvent) {
        if let Some(inner) = &self.inner {
            event.seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.dispatch(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut span = t.span(stage::VERIFY).actor("a").process("p").activity("A", 1);
        span.attr("k", "v");
        span.end();
        assert!(t.is_empty());
        assert_eq!(t.events(), vec![]);
        assert_eq!(t.now_us(), 0);
    }

    #[test]
    fn spans_record_in_order_with_clock_stamps() {
        let clock_val = Arc::new(AtomicU64::new(10));
        let c = Arc::clone(&clock_val);
        let t = Tracer::new(Arc::new(move || c.load(Ordering::Relaxed)));
        let span = t.span(stage::HOP).actor("p_a").process("pid").activity("A", 0);
        clock_val.store(25, Ordering::Relaxed);
        span.end();
        let mut second = t.span(stage::SIGN);
        second.attr("n", 3);
        second.end_with(OUTCOME_CRASH);

        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].start_us, 10);
        assert_eq!(events[0].end_us, 25);
        assert_eq!(events[0].stage, stage::HOP);
        assert_eq!(events[0].outcome, OUTCOME_OK);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].outcome, OUTCOME_CRASH);
        assert_eq!(events[1].attr("n"), Some("3"));
        assert_eq!(events[1].attr("missing"), None);
    }

    #[test]
    fn dropped_spans_are_discarded() {
        let t = Tracer::zero();
        let span = t.span(stage::VERIFY);
        drop(span);
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::zero();
        let u = t.clone();
        u.span(stage::DELIVER).end();
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(u.is_empty());
    }

    #[test]
    fn sequential_clock_orders_events() {
        let t = Tracer::sequential();
        t.span(stage::VERIFY).end();
        t.span(stage::SIGN).end();
        let events = t.events();
        assert!(events[0].start_us < events[0].end_us);
        assert!(events[0].end_us < events[1].start_us);
    }
}
