//! Streaming span consumption: [`TraceSink`] subscribers that see every
//! span the moment it closes.
//!
//! PR 4 gave the runtime *passive* observability — spans accumulate in the
//! tracer's buffer and are exported after the run ends. In an engine-less
//! system nobody is watching while execution happens: a stuck hop or a
//! retry storm is only discovered when a bench run finishes. A
//! [`TraceSink`] turns the buffer into one subscriber among many: every
//! [`Span::end`](crate::Span::end) pushes the closed [`TraceEvent`] to each
//! installed sink synchronously, in `seq` order, so online consumers (the
//! cloud crate's `HealthMonitor`, a live exporter, a test probe) observe
//! the run *as it executes* — still in deterministic virtual time.
//!
//! Sinks must tolerate being called from whatever thread closes the span
//! and must not call back into the tracer (the event buffer lock is not
//! held during fan-out, but re-entrant span recording from inside a sink
//! would interleave `seq` in surprising ways).

use crate::event::TraceEvent;
use std::sync::Mutex;

/// A subscriber notified of every span as it closes.
///
/// Implementations should be cheap and non-blocking: they run inline on
/// the instrumented path. Anything expensive belongs in a sink that only
/// aggregates online and defers rendering to the end of the run.
pub trait TraceSink: Send + Sync {
    /// Called once per closed span, in recording (`seq`) order.
    fn on_span(&self, event: &TraceEvent);
}

/// The classic buffered exporter as a sink: collects every event for
/// end-of-run export. Every [`Tracer`](crate::Tracer) installs one by
/// default, which is what `Tracer::events()` reads.
#[derive(Default)]
pub struct BufferSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl BufferSink {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Snapshot every collected event, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Number of collected events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether nothing has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every collected event (the buffer stays usable).
    pub fn clear(&self) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

impl TraceSink for BufferSink {
    fn on_span(&self, event: &TraceEvent) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(event.clone());
    }
}

/// A sink that merely counts spans — handy for tests and cheap liveness
/// probes ("did anything happen since I last looked?").
#[derive(Default)]
pub struct CountingSink {
    count: std::sync::atomic::AtomicU64,
}

impl CountingSink {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Spans observed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl TraceSink for CountingSink {
    fn on_span(&self, _event: &TraceEvent) {
        self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Tracer;
    use std::sync::Arc;

    #[test]
    fn buffer_sink_collects_in_order() {
        let sink = Arc::new(BufferSink::new());
        let t = Tracer::sequential();
        t.add_sink(Arc::<BufferSink>::clone(&sink));
        t.span("a").end();
        t.span("b").end();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(events[0].stage, "a");
        assert_eq!(events[1].stage, "b");
        assert_eq!(events, t.events(), "extra sink sees exactly what the default buffer sees");
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(t.len(), 2, "clearing one sink leaves the tracer's own buffer alone");
    }

    #[test]
    fn counting_sink_counts() {
        let sink = Arc::new(CountingSink::new());
        let t = Tracer::zero();
        t.add_sink(Arc::<CountingSink>::clone(&sink));
        assert_eq!(sink.count(), 0);
        t.span("x").end();
        t.span("y").end_with("failed");
        let dropped = t.span("z");
        drop(dropped);
        assert_eq!(sink.count(), 2, "dropped spans never reach sinks");
    }

    #[test]
    fn re_adding_the_same_sink_is_a_no_op() {
        let sink = Arc::new(CountingSink::new());
        let t = Tracer::zero();
        t.add_sink(Arc::<CountingSink>::clone(&sink));
        t.add_sink(Arc::<CountingSink>::clone(&sink));
        t.span("x").end();
        assert_eq!(sink.count(), 1, "idempotent install: one notification per span");
        // a distinct sink instance is a genuine second subscriber
        let other = Arc::new(CountingSink::new());
        t.add_sink(Arc::<CountingSink>::clone(&other));
        t.span("y").end();
        assert_eq!(sink.count(), 2);
        assert_eq!(other.count(), 1);
    }

    #[test]
    fn sinks_on_disabled_tracer_are_never_called() {
        let sink = Arc::new(CountingSink::new());
        let t = Tracer::disabled();
        t.add_sink(Arc::<CountingSink>::clone(&sink));
        t.span("x").end();
        assert_eq!(sink.count(), 0);
    }
}
