//! A recursive-descent parser for the XML subset this system writes:
//! elements, attributes, text, entity references, comments, XML declaration
//! and processing instructions (skipped). No DTDs, no namespaces-aware
//! processing (prefixes are kept verbatim in names), no CDATA.

use crate::escape::unescape;
use crate::node::{Element, Node};

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parse a complete document (one root element, optional declaration,
/// comments and PIs around it).
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &[u8], what: &str) -> Result<(), ParseError> {
        while self.pos < self.input.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated {what}")))
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.skip_until(b"?>", "processing instruction")?;
            } else if self.starts_with(b"<!--") {
                self.skip_until(b"-->", "comment")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with(b"<!--") {
                if self.skip_until(b"-->", "comment").is_err() {
                    return;
                }
            } else if self.starts_with(b"<?") {
                if self.skip_until(b"?>", "pi").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    self.expect(b'"')?;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.expect(b'"')?;
                    let value =
                        unescape(&raw).ok_or_else(|| self.err("bad entity in attribute"))?;
                    if el.get_attr(&key).is_some() {
                        return Err(self.err(format!("duplicate attribute '{key}'")));
                    }
                    el.set_attr(key, value);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // children
        loop {
            if self.starts_with(b"</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{}>, found </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(el);
            } else if self.starts_with(b"<!--") {
                self.skip_until(b"-->", "comment")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                el.children.push(Node::Element(child));
            } else if self.peek().is_some() {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let text = unescape(&raw).ok_or_else(|| self.err("bad entity in text"))?;
                if !text.is_empty() {
                    el.children.push(Node::Text(text));
                }
            } else {
                return Err(self.err(format!("unexpected end of input inside <{}>", el.name)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_string;

    #[test]
    fn simple() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn attributes() {
        let e = parse(r#"<a k="v" x="1&amp;2"/>"#).unwrap();
        assert_eq!(e.get_attr("k"), Some("v"));
        assert_eq!(e.get_attr("x"), Some("1&2"));
    }

    #[test]
    fn nested_with_text() {
        let e = parse("<r><c>hi &lt;there&gt;</c>tail</r>").unwrap();
        assert_eq!(e.find_child("c").unwrap().text_content(), "hi <there>");
        assert_eq!(e.text_content(), "tail");
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let e = parse("<?xml version=\"1.0\"?><!-- note --><r><!-- inner --><c/></r>").unwrap();
        assert!(e.find_child("c").is_some());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn duplicate_attr_rejected() {
        assert!(parse(r#"<a k="1" k="2"/>"#).is_err());
    }

    #[test]
    fn roundtrip_writer_parser() {
        let e = crate::Element::new("doc")
            .attr("id", "x\"y<z>&")
            .child(crate::Element::new("inner").text("text & <entities>"))
            .text("trailing");
        let s = to_string(&e);
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn whitespace_between_attrs() {
        let e = parse("<a  k=\"1\"   j=\"2\" />").unwrap();
        assert_eq!(e.get_attr("k"), Some("1"));
        assert_eq!(e.get_attr("j"), Some("2"));
    }

    #[test]
    fn error_offsets_reported() {
        let err = parse("<a><b></c></a>").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.message.contains("mismatched"));
    }

    mod robustness {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser must never panic, whatever bytes arrive off the
            /// network — errors, yes; panics, never.
            #[test]
            fn prop_never_panics_on_arbitrary_input(s in ".{0,200}") {
                let _ = parse(&s);
            }

            /// Same for inputs that look structurally XML-ish.
            #[test]
            fn prop_never_panics_on_xmlish_input(
                s in "[<>/a-z\\\"= &;#x0-9]{0,120}"
            ) {
                let _ = parse(&s);
            }

            /// Truncating a valid document at any byte never panics and
            /// (except at full length) never parses successfully with a
            /// different canonical form.
            #[test]
            fn prop_truncation_is_safe(cut in 0usize..200) {
                let doc = "<a x=\"1\"><b>text &amp; more</b><c/></a>";
                let cut = cut.min(doc.len());
                let prefix = &doc[..cut];
                if let Ok(parsed) = parse(prefix) {
                    // only the full document round-trips to itself
                    prop_assert_eq!(prefix, doc);
                    prop_assert_eq!(parsed.name, "a");
                }
            }
        }
    }
}
