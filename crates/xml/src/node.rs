//! The XML element tree.

use std::sync::{Arc, OnceLock};

/// A node in an element's child list: a nested element or a text run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A text run (unescaped form).
    Text(String),
}

/// An XML element: name, attributes (in insertion order) and children.
///
/// Each element memoizes its canonical serialization (see
/// [`crate::canon`]) the first time it is computed, so repeated
/// canonicalization of the same subtree — the dominant cost of cascade
/// signature verification — is a cheap `Arc` clone instead of a tree walk.
/// Every `&mut` accessor on this type drops the memo; code that mutates
/// `attrs`/`children` through the public fields directly must call
/// [`Element::invalidate_canon`] afterwards (all in-tree callers either do
/// so or reach the fields through an invalidating accessor).
#[derive(Clone, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in insertion order. Canonicalization sorts them.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
    /// Memoized canonical bytes of this subtree.
    canon: OnceLock<Arc<Vec<u8>>>,
}

impl PartialEq for Element {
    fn eq(&self, other: &Element) -> bool {
        // The canon memo is derived state and must not affect equality.
        self.name == other.name && self.attrs == other.attrs && self.children == other.children
    }
}

impl Eq for Element {}

impl std::fmt::Debug for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Element")
            .field("name", &self.name)
            .field("attrs", &self.attrs)
            .field("children", &self.children)
            .finish()
    }
}

impl Element {
    /// Create an empty element.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            canon: OnceLock::new(),
        }
    }

    /// Drop this element's memoized canonical bytes. Required after
    /// mutating `attrs` or `children` directly through the public fields;
    /// the invalidating accessors below call it automatically.
    pub fn invalidate_canon(&mut self) {
        self.canon.take();
    }

    /// The memoized canonical bytes, if previously computed.
    pub(crate) fn canon_cached(&self) -> Option<&Arc<Vec<u8>>> {
        self.canon.get()
    }

    /// Memoize canonical bytes (first writer wins; later calls are no-ops).
    pub(crate) fn canon_store(&self, bytes: Arc<Vec<u8>>) {
        let _ = self.canon.set(bytes);
    }

    /// Builder: add or replace an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.set_attr(key, value);
        self
    }

    /// Builder: append a child element.
    pub fn child(mut self, el: Element) -> Element {
        self.children.push(Node::Element(el));
        self
    }

    /// Builder: append a text node.
    pub fn text(mut self, s: impl Into<String>) -> Element {
        self.children.push(Node::Text(s.into()));
        self
    }

    /// Set or replace an attribute in place.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.invalidate_canon();
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Append a child element in place.
    pub fn push_child(&mut self, el: Element) {
        self.invalidate_canon();
        self.children.push(Node::Element(el));
    }

    /// Get an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Mutable variant of [`Element::find_child`]. Conservatively drops the
    /// canon memo of both this element and the found child, since the
    /// caller may mutate either through the returned reference.
    pub fn find_child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.invalidate_canon();
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.name == name => {
                e.invalidate_canon();
                Some(e)
            }
            _ => None,
        })
    }

    /// All child elements with the given name.
    pub fn find_children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// All child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Walk a path of child element names.
    pub fn find_path(&self, path: &[&str]) -> Option<&Element> {
        let mut cur = self;
        for name in path {
            cur = cur.find_child(name)?;
        }
        Some(cur)
    }

    /// Concatenated text content of direct text children.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Number of descendant elements (including self); used by size metrics.
    pub fn element_count(&self) -> usize {
        1 + self.child_elements().map(Element::element_count).sum::<usize>()
    }

    /// Remove all children with the given element name; returns how many were
    /// removed.
    pub fn remove_children(&mut self, name: &str) -> usize {
        self.invalidate_canon();
        let before = self.children.len();
        self.children.retain(|n| !matches!(n, Node::Element(e) if e.name == name));
        before - self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("root")
            .attr("id", "r1")
            .child(Element::new("a").text("alpha"))
            .child(Element::new("b").attr("k", "v"))
            .child(Element::new("a").text("beta"))
            .text("tail")
    }

    #[test]
    fn attrs() {
        let mut e = sample();
        assert_eq!(e.get_attr("id"), Some("r1"));
        assert_eq!(e.get_attr("missing"), None);
        e.set_attr("id", "r2");
        assert_eq!(e.get_attr("id"), Some("r2"));
        assert_eq!(e.attrs.len(), 1, "replace, not duplicate");
    }

    #[test]
    fn find_children() {
        let e = sample();
        assert_eq!(e.find_child("a").unwrap().text_content(), "alpha");
        assert_eq!(e.find_children("a").count(), 2);
        assert!(e.find_child("zzz").is_none());
    }

    #[test]
    fn find_path() {
        let e = Element::new("x").child(Element::new("y").child(Element::new("z").text("deep")));
        assert_eq!(e.find_path(&["y", "z"]).unwrap().text_content(), "deep");
        assert!(e.find_path(&["y", "w"]).is_none());
    }

    #[test]
    fn element_count() {
        assert_eq!(sample().element_count(), 4);
        assert_eq!(Element::new("leaf").element_count(), 1);
    }

    #[test]
    fn remove_children() {
        let mut e = sample();
        assert_eq!(e.remove_children("a"), 2);
        assert_eq!(e.find_children("a").count(), 0);
        assert!(e.find_child("b").is_some(), "others untouched");
    }

    #[test]
    fn text_content_skips_elements() {
        assert_eq!(sample().text_content(), "tail");
    }
}
