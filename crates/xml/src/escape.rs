//! XML text and attribute escaping.

/// Escape text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape attribute values (double-quote delimited): text escapes plus `"`,
/// and control characters as numeric references so round-trips are exact.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape entity and numeric character references. Returns `None` on a
/// malformed or unknown reference.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let semi = rest.find(';')?;
        let entity = &rest[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
        // skip the consumed entity body and ';'
        for _ in 0..=semi {
            chars.next();
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape("a&lt;b &amp; c&gt;d").unwrap(), "a<b & c>d");
        assert_eq!(unescape("&quot;&apos;").unwrap(), "\"'");
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape("&unknown;").is_none());
        assert!(unescape("&amp").is_none(), "missing semicolon");
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none(), "out of char range");
    }

    #[test]
    fn roundtrip_text() {
        for s in ["", "x", "<<<&&&>>>", "mixed <a> & \"b\" 'c'", "unicode: π ≤ ∞"] {
            assert_eq!(unescape(&escape_text(s)).unwrap(), s);
            assert_eq!(unescape(&escape_attr(s)).unwrap(), s);
        }
    }
}
