//! XML text and attribute escaping.

/// Escape text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    escape_text_into(s, &mut out);
    String::from_utf8(out).expect("escaping preserves UTF-8")
}

/// [`escape_text`] writing straight into `out` — the allocation-free path
/// used by canonicalization. Clean spans between escapes are copied with a
/// single `extend_from_slice` instead of per-character pushes.
pub fn escape_text_into(s: &str, out: &mut Vec<u8>) {
    escape_into(s, out, false);
}

/// [`escape_attr`] writing straight into `out` (see [`escape_text_into`]).
pub fn escape_attr_into(s: &str, out: &mut Vec<u8>) {
    escape_into(s, out, true);
}

fn escape_into(s: &str, out: &mut Vec<u8>, attr: bool) {
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep: &[u8] = match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            b'"' if attr => b"&quot;",
            b'\n' if attr => b"&#10;",
            b'\r' if attr => b"&#13;",
            b'\t' if attr => b"&#9;",
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        out.extend_from_slice(rep);
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
}

/// Escape attribute values (double-quote delimited): text escapes plus `"`,
/// and control characters as numeric references so round-trips are exact.
pub fn escape_attr(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    String::from_utf8(out).expect("escaping preserves UTF-8")
}

/// Unescape entity and numeric character references. Returns `None` on a
/// malformed or unknown reference.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let semi = rest.find(';')?;
        let entity = &rest[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
        // skip the consumed entity body and ';'
        for _ in 0..=semi {
            chars.next();
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape("a&lt;b &amp; c&gt;d").unwrap(), "a<b & c>d");
        assert_eq!(unescape("&quot;&apos;").unwrap(), "\"'");
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape("&unknown;").is_none());
        assert!(unescape("&amp").is_none(), "missing semicolon");
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none(), "out of char range");
    }

    #[test]
    fn roundtrip_text() {
        for s in ["", "x", "<<<&&&>>>", "mixed <a> & \"b\" 'c'", "unicode: π ≤ ∞"] {
            assert_eq!(unescape(&escape_text(s)).unwrap(), s);
            assert_eq!(unescape(&escape_attr(s)).unwrap(), s);
        }
    }
}
