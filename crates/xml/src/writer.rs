//! Serialization of element trees: compact (wire format) and pretty
//! (debugging / examples).

use crate::escape::{escape_attr, escape_text};
use crate::node::{Element, Node};

/// Serialize compactly with no added whitespace. This is the wire format in
/// which DRA4WfMS documents are routed, and the format whose byte length the
/// paper's Σ column measures.
pub fn to_string(el: &Element) -> String {
    let mut out = String::new();
    write_el(el, &mut out);
    out
}

/// Serialize with an XML declaration prepended (for files on disk).
pub fn to_document_string(el: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    write_el(el, &mut out);
    out
}

fn write_el(el: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in &el.children {
        match child {
            Node::Element(e) => write_el(e, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

/// Pretty-print with 2-space indentation. Text-bearing elements are kept on
/// one line so content round-trips visually.
pub fn to_pretty_string(el: &Element) -> String {
    let mut out = String::new();
    write_pretty(el, 0, &mut out);
    out
}

fn write_pretty(el: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    let only_text = el.children.iter().all(|n| matches!(n, Node::Text(_)));
    if only_text {
        out.push('>');
        for n in &el.children {
            if let Node::Text(t) = n {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        out.push_str(&el.name);
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for child in &el.children {
        match child {
            Node::Element(e) => write_pretty(e, depth + 1, out),
            Node::Text(t) => {
                if !t.trim().is_empty() {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&escape_text(t));
                    out.push('\n');
                }
            }
        }
    }
    out.push_str(&pad);
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_element() {
        assert_eq!(to_string(&Element::new("a")), "<a/>");
    }

    #[test]
    fn attributes_and_text() {
        let e = Element::new("a").attr("k", "v<>").text("x & y");
        assert_eq!(to_string(&e), "<a k=\"v&lt;&gt;\">x &amp; y</a>");
    }

    #[test]
    fn nesting() {
        let e = Element::new("r").child(Element::new("c").text("t"));
        assert_eq!(to_string(&e), "<r><c>t</c></r>");
    }

    #[test]
    fn document_string_has_declaration() {
        let s = to_document_string(&Element::new("doc"));
        assert!(s.starts_with("<?xml"));
        assert!(s.ends_with("<doc/>"));
    }

    #[test]
    fn pretty_print_shape() {
        let e = Element::new("r").child(Element::new("a").text("x")).child(Element::new("b"));
        let p = to_pretty_string(&e);
        assert_eq!(p, "<r>\n  <a>x</a>\n  <b/>\n</r>\n");
    }
}
