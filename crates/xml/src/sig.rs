//! Detached element signatures in the XML-DSig style.
//!
//! A `<Signature>` element binds a signer's Ed25519 public key to the
//! canonical bytes of whatever content the caller designates:
//!
//! ```xml
//! <Signature signer="d75a98…" covers="CER(A1),CER(A2)">e55643…</Signature>
//! ```
//!
//! `covers` labels the covered content; cryptographic verification is always
//! against the canonical bytes recomputed by the verifier, exactly as XML
//! Signature verifies against re-canonicalized references. Because the label
//! itself sits outside the signed bytes, document-level verifiers must pin
//! it to the content they recomputed (`dra4wfms-core` checks it against the
//! CER key) — otherwise the attribute is malleable in stored documents. The
//! cascade construction of the paper (each signature signs the predecessor
//! signatures) is built on top of this in `dra4wfms-core`.

use crate::node::Element;
use dra_crypto::ed25519::{Keypair, PublicKey, Signature};
use dra_crypto::hex;

/// Element name of signature blocks.
pub const SIGNATURE: &str = "Signature";

/// A parsed signature block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureBlock {
    /// The signer's public key.
    pub signer: PublicKey,
    /// The detached signature value.
    pub signature: Signature,
    /// Informational description of the covered content.
    pub covers: String,
}

/// Errors from reading or verifying a signature block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigError {
    /// Not a `<Signature>` element or fields missing/malformed.
    Malformed(String),
    /// Signature did not verify over the provided bytes.
    Invalid,
    /// The signer differs from the expected key.
    WrongSigner,
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::Malformed(m) => write!(f, "malformed Signature: {m}"),
            SigError::Invalid => write!(f, "signature verification failed"),
            SigError::WrongSigner => write!(f, "unexpected signer"),
        }
    }
}

impl std::error::Error for SigError {}

/// Sign `bytes` with `keypair`, producing a `<Signature>` element.
pub fn sign_detached(keypair: &Keypair, bytes: &[u8], covers: &str) -> Element {
    let sig = keypair.sign(bytes);
    Element::new(SIGNATURE)
        .attr("signer", hex::encode(&keypair.public.0))
        .attr("covers", covers)
        .text(hex::encode(&sig.0))
}

/// Parse a `<Signature>` element into a [`SignatureBlock`].
pub fn parse_signature(el: &Element) -> Result<SignatureBlock, SigError> {
    if el.name != SIGNATURE {
        return Err(SigError::Malformed(format!("expected <{SIGNATURE}>, found <{}>", el.name)));
    }
    let signer_hex =
        el.get_attr("signer").ok_or_else(|| SigError::Malformed("missing signer".into()))?;
    let signer_bytes = hex::decode_array::<32>(signer_hex)
        .ok_or_else(|| SigError::Malformed("bad signer hex".into()))?;
    let sig_bytes = hex::decode(&el.text_content())
        .ok_or_else(|| SigError::Malformed("bad signature hex".into()))?;
    let signature = Signature::from_bytes(&sig_bytes)
        .ok_or_else(|| SigError::Malformed("bad length".into()))?;
    Ok(SignatureBlock {
        signer: PublicKey(signer_bytes),
        signature,
        covers: el.get_attr("covers").unwrap_or_default().to_string(),
    })
}

/// Verify a `<Signature>` element over `bytes`. Returns the signer on
/// success; if `expected_signer` is given, also enforces key identity.
pub fn verify_detached(
    el: &Element,
    bytes: &[u8],
    expected_signer: Option<&PublicKey>,
) -> Result<PublicKey, SigError> {
    let block = parse_signature(el)?;
    if let Some(expected) = expected_signer {
        if *expected != block.signer {
            return Err(SigError::WrongSigner);
        }
    }
    if !block.signer.verify(bytes, &block.signature) {
        return Err(SigError::Invalid);
    }
    Ok(block.signer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::writer::to_string;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed([seed; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = kp(1);
        let el = sign_detached(&k, b"canonical bytes", "Def");
        let signer = verify_detached(&el, b"canonical bytes", None).unwrap();
        assert_eq!(signer, k.public);
    }

    #[test]
    fn expected_signer_enforced() {
        let k = kp(1);
        let other = kp(2);
        let el = sign_detached(&k, b"data", "x");
        assert_eq!(verify_detached(&el, b"data", Some(&other.public)), Err(SigError::WrongSigner));
        assert!(verify_detached(&el, b"data", Some(&k.public)).is_ok());
    }

    #[test]
    fn wrong_bytes_rejected() {
        let k = kp(1);
        let el = sign_detached(&k, b"data", "x");
        assert_eq!(verify_detached(&el, b"DATA", None), Err(SigError::Invalid));
    }

    #[test]
    fn survives_wire_roundtrip() {
        let k = kp(3);
        let el = sign_detached(&k, b"payload", "CER(A1)");
        let reparsed = parse(&to_string(&el)).unwrap();
        assert!(verify_detached(&reparsed, b"payload", Some(&k.public)).is_ok());
        let block = parse_signature(&reparsed).unwrap();
        assert_eq!(block.covers, "CER(A1)");
    }

    #[test]
    fn malformed_rejected() {
        assert!(matches!(
            verify_detached(&Element::new("NotSig"), b"", None),
            Err(SigError::Malformed(_))
        ));
        let no_signer = Element::new(SIGNATURE).text("00");
        assert!(matches!(verify_detached(&no_signer, b"", None), Err(SigError::Malformed(_))));
        let bad_len = Element::new(SIGNATURE).attr("signer", "0".repeat(64)).text("beef");
        assert!(matches!(verify_detached(&bad_len, b"", None), Err(SigError::Malformed(_))));
    }

    #[test]
    fn tampered_signature_text_rejected() {
        let k = kp(4);
        let mut el = sign_detached(&k, b"data", "x");
        let text = el.text_content();
        let flipped = if text.as_bytes()[0] == b'0' { "1" } else { "0" };
        let mut new_text = text.clone();
        new_text.replace_range(0..1, flipped);
        el.children.clear();
        el.children.push(crate::node::Node::Text(new_text));
        assert_eq!(verify_detached(&el, b"data", None), Err(SigError::Invalid));
    }
}
