//! # dra-xml — secure XML document layer for DRA4WfMS
//!
//! The paper represents workflow documents as XML and secures them with W3C
//! XML Encryption (element-wise encryption) and XML Signature, via the Java
//! XML DSig API and Apache Santuario. Mature equivalents do not exist in the
//! Rust ecosystem, so this crate implements the needed subset from scratch:
//!
//! * [`node`] — an XML element tree with attributes and text
//! * [`escape`] — XML escaping/unescaping
//! * [`writer`] — compact and pretty serialization
//! * [`parser`] — a parser for the subset this system emits
//! * [`canon`] — canonical serialization (deterministic bytes to sign)
//! * [`enc`] — element-wise encryption with multi-recipient key wrapping
//! * [`sig`] — detached element signatures in the XML-DSig style
//!
//! Canonicalization here plays the role of W3C C14N: both the signer and the
//! verifier serialize the covered elements to an identical byte stream, so a
//! signature survives parsing/re-serialization round trips.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod enc;
pub mod escape;
pub mod node;
pub mod parser;
pub mod sig;
pub mod writer;

pub use canon::{canon_alloc_bytes, canon_alloc_reset, CanonArena};
pub use enc::{decrypt_element, encrypt_element, EncryptError, Recipient};
pub use node::{Element, Node};
pub use parser::{parse, ParseError};
pub use sig::{sign_detached, verify_detached, SignatureBlock};
