//! Canonical serialization — the role W3C C14N plays for XML Signature.
//!
//! Both signer and verifier must obtain identical bytes for the covered
//! elements, even after the document has been parsed and re-serialized by a
//! different implementation. The canonical form:
//!
//! * attributes sorted lexicographically by name,
//! * no self-closing tags (`<a></a>`, never `<a/>`),
//! * text and attribute values escaped exactly as in [`crate::escape`],
//! * no insignificant whitespace added.
//!
//! Since our writer never emits insignificant whitespace and the parser
//! preserves text verbatim, canonical bytes are stable across round trips.

use crate::escape::{escape_attr, escape_text};
use crate::node::{Element, Node};
use std::sync::Arc;

/// Canonical byte serialization of one element subtree.
pub fn canonicalize(el: &Element) -> Vec<u8> {
    canonicalize_shared(el).as_ref().clone()
}

/// Canonical bytes of one subtree, memoized on the element. The first call
/// walks the tree; later calls on the unmutated element return the shared
/// buffer in O(1). Mutating the element through any `&mut` accessor drops
/// the memo (see [`Element::invalidate_canon`]).
pub fn canonicalize_shared(el: &Element) -> Arc<Vec<u8>> {
    if let Some(cached) = el.canon_cached() {
        return Arc::clone(cached);
    }
    let mut out = Vec::new();
    write_canon(el, &mut out);
    let bytes = Arc::new(out);
    el.canon_store(Arc::clone(&bytes));
    bytes
}

/// Canonical bytes of a sequence of subtrees, length-prefix framed so that
/// the concatenation is injective (no boundary ambiguity between parts).
/// Each part comes from the per-element memo when available.
pub fn canonicalize_all<'a>(els: impl IntoIterator<Item = &'a Element>) -> Vec<u8> {
    let mut out = Vec::new();
    for el in els {
        let part = canonicalize_shared(el);
        out.extend_from_slice(&(part.len() as u64).to_be_bytes());
        out.extend_from_slice(&part);
    }
    out
}

fn write_canon(el: &Element, out: &mut Vec<u8>) {
    // A child whose canonical form is already memoized contributes a
    // memcpy instead of a recursive walk.
    if let Some(cached) = el.canon_cached() {
        out.extend_from_slice(cached);
        return;
    }
    out.push(b'<');
    out.extend_from_slice(el.name.as_bytes());
    let mut attrs: Vec<&(String, String)> = el.attrs.iter().collect();
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    for (k, v) in attrs {
        out.push(b' ');
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b"=\"");
        out.extend_from_slice(escape_attr(v).as_bytes());
        out.push(b'"');
    }
    out.push(b'>');
    for child in &el.children {
        match child {
            Node::Element(e) => write_canon(e, out),
            Node::Text(t) => out.extend_from_slice(escape_text(t).as_bytes()),
        }
    }
    out.extend_from_slice(b"</");
    out.extend_from_slice(el.name.as_bytes());
    out.push(b'>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::writer::to_string;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn attribute_order_is_normalized() {
        let a = Element::new("e").attr("b", "2").attr("a", "1");
        let b = Element::new("e").attr("a", "1").attr("b", "2");
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn no_self_closing() {
        assert_eq!(canonicalize(&Element::new("a")), b"<a></a>");
    }

    #[test]
    fn differs_on_content_change() {
        let a = Element::new("e").text("x");
        let b = Element::new("e").text("y");
        assert_ne!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn stable_across_parse_roundtrip() {
        let e = Element::new("doc")
            .attr("z", "last")
            .attr("a", "first")
            .child(Element::new("c").text("body & <text>"))
            .text("tail\"quote");
        let reparsed = parse(&to_string(&e)).unwrap();
        assert_eq!(canonicalize(&e), canonicalize(&reparsed));
    }

    #[test]
    fn framed_concatenation_is_injective() {
        // <a>bc</a> vs <a>b</a><c/> style boundary confusion must not collide.
        let one = [Element::new("a").text("bc")];
        let two = [Element::new("a").text("b"), Element::new("c")];
        assert_ne!(canonicalize_all(one.iter()), canonicalize_all(two.iter()));
    }

    #[test]
    fn empty_sequence() {
        assert!(canonicalize_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn memo_is_reused_until_mutation() {
        let mut e = Element::new("e").attr("a", "1").child(Element::new("c").text("x"));
        let first = canonicalize_shared(&e);
        let second = canonicalize_shared(&e);
        assert!(Arc::ptr_eq(&first, &second), "second call must reuse the memo");

        e.set_attr("a", "2");
        let third = canonicalize_shared(&e);
        assert!(!Arc::ptr_eq(&first, &third), "mutation must drop the memo");
        assert_ne!(*first, *third);
        assert_eq!(
            *third,
            canonicalize(&Element::new("e").attr("a", "2").child(Element::new("c").text("x")))
        );
    }

    #[test]
    fn memo_invalidated_by_every_mut_accessor() {
        let build = || Element::new("e").attr("a", "1").child(Element::new("c").text("x"));

        // set_attr
        let mut e = build();
        let before = canonicalize(&e);
        e.set_attr("b", "2");
        assert_ne!(before, canonicalize(&e));

        // push_child
        let mut e = build();
        let before = canonicalize(&e);
        e.push_child(Element::new("d"));
        assert_ne!(before, canonicalize(&e));

        // remove_children
        let mut e = build();
        let before = canonicalize(&e);
        e.remove_children("c");
        assert_ne!(before, canonicalize(&e));

        // find_child_mut, then mutate the child through the reference
        let mut e = build();
        let before = canonicalize(&e);
        e.find_child_mut("c").unwrap().set_attr("k", "v");
        assert_ne!(before, canonicalize(&e));

        // direct field mutation + explicit invalidate_canon
        let mut e = build();
        let before = canonicalize(&e);
        e.children.clear();
        e.invalidate_canon();
        assert_ne!(before, canonicalize(&e));
    }

    #[test]
    fn clone_keeps_memo_but_diverges_safely() {
        let original = Element::new("e").text("shared");
        let first = canonicalize_shared(&original);
        let mut copy = original.clone();
        assert!(Arc::ptr_eq(&first, &canonicalize_shared(&copy)));
        copy.set_attr("changed", "yes");
        assert_ne!(canonicalize(&copy), canonicalize(&original));
        // the original's memo is untouched by the clone's mutation
        assert!(Arc::ptr_eq(&first, &canonicalize_shared(&original)));
    }

    #[test]
    fn cached_child_contributes_to_fresh_parent() {
        let mut child = Element::new("c").text("deep & dark");
        let direct = canonicalize(&child);
        let _ = canonicalize_shared(&child); // memoize the child
        child.invalidate_canon();
        let _ = canonicalize_shared(&child); // re-memoize
        let parent = Element::new("p").child(child.clone());
        let via_parent = canonicalize(&parent);
        let mut expect = Vec::new();
        expect.extend_from_slice(b"<p>");
        expect.extend_from_slice(&direct);
        expect.extend_from_slice(b"</p>");
        assert_eq!(via_parent, expect);
    }

    // Strategy for random small element trees.
    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,6}"
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // printable-ish text including XML specials
        proptest::collection::vec(
            prop_oneof![
                any::<char>().prop_filter("no ctrl", |c| !c.is_control()),
                Just('<'),
                Just('&'),
                Just('"'),
            ],
            0..12,
        )
        .prop_map(|v| v.into_iter().collect())
    }

    fn arb_element() -> impl Strategy<Value = Element> {
        let leaf = (arb_name(), arb_text()).prop_map(|(n, t)| {
            if t.is_empty() {
                Element::new(n)
            } else {
                Element::new(n).text(t)
            }
        });
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                arb_name(),
                proptest::collection::vec((arb_name(), arb_text()), 0..3),
                proptest::collection::vec(inner, 0..4),
            )
                .prop_map(|(name, attrs, children)| {
                    let mut e = Element::new(name);
                    for (k, v) in attrs {
                        e.set_attr(k, v);
                    }
                    for c in children {
                        e.push_child(c);
                    }
                    e
                })
        })
    }

    proptest! {
        /// The fundamental signature-stability property: canonical bytes are
        /// invariant under serialize→parse round trips.
        #[test]
        fn prop_canon_stable_roundtrip(e in arb_element()) {
            let wire = to_string(&e);
            let reparsed = parse(&wire).unwrap();
            prop_assert_eq!(canonicalize(&e), canonicalize(&reparsed));
        }

        /// Parsing the wire format reproduces an equivalent tree (text node
        /// merging aside, which canonical bytes capture).
        #[test]
        fn prop_wire_roundtrip_canonical(e in arb_element()) {
            let once = parse(&to_string(&e)).unwrap();
            let twice = parse(&to_string(&once)).unwrap();
            prop_assert_eq!(once, twice);
        }
    }
}
